"""Checkpoint/resume for FlashWalker campaigns.

A checkpoint is a *quiescent-state* snapshot: the engine drains its
pipelines (no walk mid-flight through a chip, channel, or the board
pipe) and everything that determines the rest of the run is copied out —
walk buffers, RNG stream states, hardware occupancy horizons, metric
accumulators.  Resuming restores that state into a fresh event queue and
drives the simulation to completion; because every source of
nondeterminism is part of the snapshot, the merged result is *exactly*
the uninterrupted run's.

The FTL's logical-to-physical map is not copied wholesale — that would
dwarf the rest of the checkpoint.  Instead the snapshot records the
FTL's append-only *remap log* (the sequence of ``retire_active_block``
calls), and restore rebuilds a pristine FTL and replays the log: victim
selection is deterministic given the call sequence, so the rebuilt map
routes pages exactly as the captured one did.  This matters once the
durability layer's parity-group quarantine retires blocks mid-run —
post-recovery page routing must match the crashed timeline's.
Pre-durability snapshots (no log recorded) restore as before, skipping
the FTL entirely.

Core modules are imported lazily inside the capture/restore functions:
``repro.core.flashwalker`` imports this package, so module-level imports
the other way would be circular.
"""

from __future__ import annotations

import copy
import heapq
from collections import OrderedDict
from dataclasses import dataclass, field


from ..walks.state import WalkSet

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "capture_checkpoint",
    "restore_checkpoint",
]


@dataclass
class Checkpoint:
    """One quiescent snapshot of a running campaign."""

    time: float
    data: dict = field(repr=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Checkpoint(t={self.time:.6f}, "
            f"completed={self.data.get('completed_walks')})"
        )


class CheckpointManager:
    """Holds the snapshots of one campaign, newest last.

    ``keep_last`` caps retention: saving beyond the cap evicts the
    oldest snapshots, so long journaled campaigns don't grow memory
    linearly with checkpoint count.  0 (the default) keeps every
    snapshot — the pre-durability behavior.  Recovery only ever needs
    the latest snapshot, so any cap >= 1 is safe for resume.
    """

    def __init__(self, keep_last: int = 0):
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        self.keep_last = int(keep_last)
        self.evicted = 0
        self._checkpoints: list[Checkpoint] = []

    @property
    def latest(self) -> Checkpoint | None:
        return self._checkpoints[-1] if self._checkpoints else None

    def save(self, ckpt: Checkpoint) -> None:
        self._checkpoints.append(ckpt)
        if self.keep_last and len(self._checkpoints) > self.keep_last:
            drop = len(self._checkpoints) - self.keep_last
            del self._checkpoints[:drop]
            self.evicted += drop

    def all(self) -> list[Checkpoint]:
        return list(self._checkpoints)

    def clear(self) -> None:
        self._checkpoints = []

    def __len__(self) -> int:
        return len(self._checkpoints)


# --------------------------------------------------------------- pack helpers


def _pack_walks(ws: WalkSet) -> tuple:
    return (ws.src.copy(), ws.cur.copy(), ws.hop.copy())


def _unpack_walks(data: tuple) -> WalkSet:
    src, cur, hop = data
    return WalkSet(src.copy(), cur.copy(), hop.copy())


def _pack_batch(batch) -> tuple:
    pre = None if batch.pre_edge is None else batch.pre_edge.copy()
    return (_pack_walks(batch.walks), pre)


def _unpack_batch(data):
    from ..core.buffers import WalkBatch

    walks_data, pre = data
    return WalkBatch(
        _unpack_walks(walks_data), None if pre is None else pre.copy()
    )


def _link_state(link) -> tuple:
    return (link._busy_until, link.bytes_moved, link.busy_time, link.transfers)


def _set_link(link, s: tuple) -> None:
    link._busy_until, link.bytes_moved, link.busy_time, link.transfers = s


def _fcfs_state(res) -> tuple:
    return (list(res._free_at), res.busy_time, res.requests, res.queued_time)


def _set_fcfs(res, s: tuple) -> None:
    free_at, busy, requests, queued = s
    res._free_at = list(free_at)
    heapq.heapify(res._free_at)
    res.busy_time = busy
    res.requests = requests
    res.queued_time = queued


def _chip_hw_state(chip) -> dict:
    return {
        "ops": _fcfs_state(chip._op_slots),
        "reads": chip.reads,
        "programs": chip.programs,
        "erases": chip.erases,
        "bytes_read": chip.bytes_read,
        "bytes_programmed": chip.bytes_programmed,
        "prog_cursor": chip._prog_cursor,
        "planes": [
            (
                pl.busy_until,
                pl.reads,
                pl.programs,
                pl.erases,
                pl.bytes_read,
                pl.bytes_programmed,
                pl.busy_time,
            )
            for die in chip.dies
            for pl in die.planes
        ],
    }


def _set_chip_hw(chip, s: dict) -> None:
    _set_fcfs(chip._op_slots, s["ops"])
    chip.reads = s["reads"]
    chip.programs = s["programs"]
    chip.erases = s["erases"]
    chip.bytes_read = s["bytes_read"]
    chip.bytes_programmed = s["bytes_programmed"]
    chip._prog_cursor = s["prog_cursor"]
    planes = [pl for die in chip.dies for pl in die.planes]
    for pl, ps in zip(planes, s["planes"]):
        (
            pl.busy_until,
            pl.reads,
            pl.programs,
            pl.erases,
            pl.bytes_read,
            pl.bytes_programmed,
            pl.busy_time,
        ) = ps


def _metrics_state(metrics) -> dict:
    return {
        "counters": {
            name: (c.total, c.events)
            for name, c in metrics.stats.counters.items()
        },
        "series": {
            name: (s.bucket, dict(s._sums), s.total, s.events, s.last_time)
            for name, s in metrics.stats.series.items()
        },
    }


def _set_metrics(metrics, state: dict) -> None:
    for name, (total, events) in state["counters"].items():
        c = metrics.stats.counter(name)
        c.total = total
        c.events = events
    for name, (bucket, sums, total, events, last_time) in state["series"].items():
        s = metrics.stats.timeseries(name, bucket)
        s._sums = dict(sums)
        s.total = total
        s.events = events
        s.last_time = last_time


# ------------------------------------------------------------------- capture


def capture_checkpoint(fw, t: float) -> Checkpoint:
    """Snapshot a quiescent :class:`~repro.core.flashwalker.FlashWalker`."""
    from ..obs.report import config_fingerprint

    fm = fw.fault_model
    data = {
        # provenance: restore refuses a snapshot from a different config
        "config_fingerprint": config_fingerprint(fw.cfg),
        # walk accounting
        "spec": fw.spec,
        "total_walks": fw.total_walks,
        "completed_walks": fw.completed_walks,
        "current_partition": fw.current_partition,
        "entry_capacity": fw.entry_capacity,
        "dense_entry_capacity": fw.dense_entry_capacity,
        "flush_cursor": fw._flush_cursor,
        "next_checkpoint": fw._next_checkpoint,
        "block_chip": fw.block_chip.copy(),
        "rebuilding_blocks": set(fw._rebuilding_blocks),
        "finals": (
            None
            if fw._finals is None
            else [_pack_walks(w) for w in fw._finals]
        ),
        # stochastic state
        "rng": {
            name: copy.deepcopy(gen.bit_generator.state)
            for name, gen in fw.rngs._streams.items()
        },
        # metrics
        "metrics": _metrics_state(fw.metrics),
        # scheduler scoreboard
        "scheduler": None,
        # partition walk buffer
        "pwb_entries": None,
        "pwb_spills": None,
        # foreigner pools
        "foreign": {
            int(pid): [_pack_walks(w) for w in pool]
            for pid, pool in enumerate(fw.foreign._pools)
            if pool
        },
        # board accelerator
        "board": {
            "completed_pending_bytes": fw.board.completed_pending_bytes,
            "foreigner_pending_bytes": fw.board.foreigner_pending_bytes,
            "batches": fw.board.batches,
            "hops": fw.board.hops,
            "directed_walks": fw.board.directed_walks,
            "completed_flushes": fw.board.completed_flushes,
            "foreigner_flushes": fw.board.foreigner_flushes,
            "caches": (
                None
                if fw.board.caches is None
                else [
                    (list(c._lru.keys()), c.hits, c.misses)
                    for c in fw.board.caches.caches
                ]
            ),
        },
        "dense": (
            fw.dense_table.bloom_queries,
            fw.dense_table.bloom_positives,
            fw.dense_table.false_positives,
            fw.dense_table.hash_probes,
        ),
        # accelerators
        "chips": [
            {
                "loaded": list(c.loaded),
                "failed": c.failed,
                "pending_completed": c.pending_completed,
                "batches": c.batches,
                "hops": c.hops,
                "loads": c.loads,
                "reload_hits": c.reload_hits,
            }
            for c in fw.chips
        ],
        "channel_accels": [
            (ch.batches, ch.hops, ch.range_queries) for ch in fw.channels
        ],
        # hardware occupancy + byte counters
        "chip_hw": [
            _chip_hw_state(fw.ssd.chip_flat(i))
            for i in range(fw.cfg.ssd.total_chips)
        ],
        "channel_buses": [_link_state(ch.bus) for ch in fw.ssd.channels],
        "dram_bus": _link_state(fw.ssd.dram.bus),
        "board_pipe": _fcfs_state(fw._board_pipe),
        # FTL remap history (replayed against a pristine FTL on restore)
        "ftl_remap_log": list(fw.ssd.ftl.remap_log),
        # DFTL-enabled runs: background GC makes the FTL's state
        # time-dependent (no longer derivable by replaying placement +
        # remap log), so the full mapping/allocation state — and the
        # CMT/translation counters — are snapshotted explicitly.
        "ftl_state": None if fw.ssd.dftl is None else fw.ssd.ftl.state(),
        "dftl_state": None if fw.ssd.dftl is None else fw.ssd.dftl.state(),
        "next_ftl_gc": fw._next_ftl_gc,
        "ftlgc_armed": "ftlgc" in fw._dur_events,
        # durability layer: journal/integrity state + the recurring
        # events' next absolute fire times (the negative durability
        # event priorities guarantee these are strictly > ckpt.time)
        "durability": (
            None
            if not fw.cfg.durability.enabled
            else {
                "next_journal_flush": fw._next_journal_flush,
                "next_scrub": fw._next_scrub,
                "next_corruption": fw._next_corruption,
                # Which recurring events were actually armed at capture:
                # a drained engine (cluster epoch boundary) has none, and
                # the resumed run must re-arm lazily at its next
                # injection — exactly as the uninterrupted run does — or
                # the journal-flush phase diverges.
                "armed": sorted(
                    k for k in fw._dur_events if not k.startswith("powerloss")
                ),
                "journal": (
                    None if fw.journal is None else fw.journal.state()
                ),
                "integrity": (
                    None if fw.integrity is None else fw.integrity.state()
                ),
            }
        ),
        # opaque extra state from layers above the engine (query service)
        "extra": (
            fw._checkpoint_extra() if fw._checkpoint_extra is not None else None
        ),
        # fault model
        "faults": (
            None
            if fm is None
            else {
                "failed_chips": set(fm.failed_chips),
                "read_faults": fm.read_faults,
                "read_retries": fm.read_retries,
                "reads_exhausted": fm.reads_exhausted,
                "bad_block_remaps": fm.bad_block_remaps,
                "crc_errors": fm.crc_errors,
                "crc_retries": fm.crc_retries,
                "crc_resets": fm.crc_resets,
                "chip_failures": fm.chip_failures,
            }
        ),
        # slow-fault model: windows are a pure function of (seed, config)
        # so only the counters need carrying across a restore.
        "slow_faults": (
            None if fw.slow_model is None else fw.slow_model.snapshot()
        ),
    }
    if fw.scheduler is not None:
        sc = fw.scheduler
        data["scheduler"] = {
            "pwb": sc.pwb.copy(),
            "fl": sc.fl.copy(),
            "inserts": sc._inserts_since_update.copy(),
            "block_chip": sc.block_chip.copy(),
            "top": {c: list(v) for c, v in sc._top.items()},
            "dirty": set(sc._dirty),
            "refreshes": sc.topn_refreshes,
            "deferred": sc.topn_updates_deferred,
            "score_hits": sc.score_cache_hits,
            # Cache warmth matters for replay parity: a restored-cold
            # cache would miss where the original timeline hit.
            "scores_warm": sc._scores_cache is not None,
            "counts_warm": sc._counts_cache is not None,
        }
    if fw.pwb is not None:
        data["pwb_entries"] = {
            int(block): (
                [_pack_batch(b) for b in e.buffered],
                [_pack_batch(b) for b in e.spilled],
            )
            for block, e in fw.pwb._entries.items()
        }
        data["pwb_spills"] = (fw.pwb.spill_events, fw.pwb.walks_spilled)
    return Checkpoint(time=t, data=data)


# ------------------------------------------------------------------- restore


def restore_checkpoint(fw, ckpt: Checkpoint) -> None:
    """Rebuild ``fw``'s run state from ``ckpt``; the caller re-arms the
    event loop (kick chips + barrier check) and calls ``sim.run()``."""
    from ..core.advance import AdvanceContext
    from ..core.buffers import BlockEntry, PartitionWalkBuffer
    from ..core.mapping import RangeTable, SubgraphMappingTable
    from ..core.scheduler import SubgraphScheduler
    from ..obs.report import config_fingerprint
    from ..walks.sampling import make_sampler

    d = ckpt.data
    # A snapshot only replays correctly into the exact configuration
    # that produced it (capacities, timings, fault schedule are all
    # baked into the captured state).  Pre-fingerprint checkpoints
    # (no field recorded) restore as before.
    recorded = d.get("config_fingerprint")
    if recorded is not None:
        own = config_fingerprint(fw.cfg)
        if recorded != own:
            from ..common.errors import ConfigError

            raise ConfigError(
                "checkpoint does not match this engine's configuration: "
                f"checkpoint {recorded}, engine {own}"
            )
    fw.spec = d["spec"]
    fw._reset_run_state()
    # RNG streams become exactly the snapshot's set: streams first created
    # after the checkpoint in the crashed run must not leak advanced state
    # into the resumed run.
    fw.rngs._streams = {}
    for name, state in d["rng"].items():
        fw.rngs.stream(name).bit_generator.state = copy.deepcopy(state)
    if fw.fault_model is not None:
        fw.fault_model.rng = fw.rngs.stream("faults")
        fs = d["faults"]
        fm = fw.fault_model
        fm.failed_chips = set(fs["failed_chips"])
        fm.read_faults = fs["read_faults"]
        fm.read_retries = fs["read_retries"]
        fm.reads_exhausted = fs["reads_exhausted"]
        fm.bad_block_remaps = fs["bad_block_remaps"]
        fm.crc_errors = fs["crc_errors"]
        fm.crc_retries = fs["crc_retries"]
        fm.crc_resets = fs["crc_resets"]
        fm.chip_failures = fs["chip_failures"]
    if fw.slow_model is not None and d.get("slow_faults") is not None:
        fw.slow_model.restore(d["slow_faults"])
    # clock + walk accounting (quiescent: nothing in transit)
    fw.sim.now = ckpt.time
    fw.total_walks = d["total_walks"]
    fw.completed_walks = d["completed_walks"]
    fw.in_transit = 0
    fw.entry_capacity = d["entry_capacity"]
    fw.dense_entry_capacity = d["dense_entry_capacity"]
    fw._flush_cursor = d["flush_cursor"]
    fw._next_checkpoint = d["next_checkpoint"]
    fw.block_chip[:] = d["block_chip"]
    fw._rebuilding_blocks = set(d["rebuilding_blocks"])
    fw._finals = (
        None
        if d["finals"] is None
        else [_unpack_walks(w) for w in d["finals"]]
    )
    # advance context (deterministic rebuild from graph + spec)
    sampler = make_sampler(fw.graph)
    fw.ctx = AdvanceContext.build(fw.graph, fw.part, fw.spec, sampler)
    # metrics
    _set_metrics(fw.metrics, d["metrics"])
    # partition structures — rebuilt without re-charging the DRAM mapping
    # stream (that traffic is already inside the restored metrics)
    pid = d["current_partition"]
    fw.current_partition = pid
    first, last = fw.part.partition_block_range(
        pid, fw.cfg.partition_subgraphs
    )
    fw.mapping = SubgraphMappingTable(fw.part, first, last)
    fw.board.set_mapping(fw.mapping)
    if fw.cfg.opt_walk_query:
        table = RangeTable(fw.part, first, last, fw.cfg.range_subgraphs)
        for ch in fw.channels:
            ch.set_range_table(table)
    else:
        for ch in fw.channels:
            ch.set_range_table(None)
    sd = d["scheduler"]
    if sd is not None:
        fw.scheduler = SubgraphScheduler(
            block_chip=fw.block_chip,
            is_dense_block=fw.part.is_dense_block,
            first_block=first,
            last_block=last,
            n_chips=len(fw.chips),
            alpha=fw.cfg.alpha,
            beta=fw.cfg.beta,
            top_n=fw.cfg.top_n,
            update_period_m=fw.cfg.score_update_period_m,
            use_scores=fw.cfg.opt_subgraph_scheduling,
        )
        fw.scheduler.tracer = fw.tracer
        sc = fw.scheduler
        sc.pwb[:] = sd["pwb"]
        sc.fl[:] = sd["fl"]
        sc._inserts_since_update[:] = sd["inserts"]
        sc.block_chip[:] = sd["block_chip"]
        sc._top = {c: list(v) for c, v in sd["top"].items()}
        sc._dirty = set(sd["dirty"])
        sc.topn_refreshes = sd["refreshes"]
        sc.topn_updates_deferred = sd["deferred"]
        sc.score_cache_hits = sd.get("score_hits", 0)
        # Re-warm the derived-array caches the snapshot saw as warm
        # (recomputed from the restored scoreboard, not stored): the
        # first post-restore scores()/walk_counts() call then hits or
        # misses exactly as the original timeline did.
        if sd.get("scores_warm"):
            sc.scores()
        if sd.get("counts_warm"):
            sc.walk_counts()
    if d["pwb_entries"] is not None:
        fw.pwb = PartitionWalkBuffer(
            first,
            last,
            fw.entry_capacity,
            fw.dense_entry_capacity,
            fw.part.is_dense_block,
        )
        for block, (buffered, spilled) in d["pwb_entries"].items():
            e = BlockEntry()
            for b in buffered:
                batch = _unpack_batch(b)
                e.buffered.append(batch)
                e.buffered_count += len(batch)
            for b in spilled:
                batch = _unpack_batch(b)
                e.spilled.append(batch)
                e.spilled_count += len(batch)
            fw.pwb._entries[int(block)] = e
        fw.pwb.spill_events, fw.pwb.walks_spilled = d["pwb_spills"]
    # foreigner pools
    for pid_i, pool in d["foreign"].items():
        ws_list = [_unpack_walks(w) for w in pool]
        fw.foreign._pools[int(pid_i)] = ws_list
        fw.foreign._counts[int(pid_i)] = sum(len(w) for w in ws_list)
    # board accelerator (set_mapping above invalidated the caches; refill)
    b = d["board"]
    fw.board.completed_pending_bytes = b["completed_pending_bytes"]
    fw.board.foreigner_pending_bytes = b["foreigner_pending_bytes"]
    fw.board.batches = b["batches"]
    fw.board.hops = b["hops"]
    fw.board.directed_walks = b["directed_walks"]
    fw.board.completed_flushes = b["completed_flushes"]
    fw.board.foreigner_flushes = b["foreigner_flushes"]
    if fw.board.caches is not None and b["caches"] is not None:
        for cache, (keys, hits, misses) in zip(
            fw.board.caches.caches, b["caches"]
        ):
            cache._lru = OrderedDict((k, None) for k in keys)
            cache.hits = hits
            cache.misses = misses
    (
        fw.dense_table.bloom_queries,
        fw.dense_table.bloom_positives,
        fw.dense_table.false_positives,
        fw.dense_table.hash_probes,
    ) = d["dense"]
    # accelerators
    for chip, cs in zip(fw.chips, d["chips"]):
        chip.loaded = list(cs["loaded"])
        chip.failed = cs["failed"]
        chip.busy = False
        chip.pending_rove = []
        chip.pending_rove_count = 0
        chip.pending_completed = cs["pending_completed"]
        chip.batches = cs["batches"]
        chip.hops = cs["hops"]
        chip.loads = cs["loads"]
        chip.reload_hits = cs["reload_hits"]
    for ch, (batches, hops, range_queries) in zip(
        fw.channels, d["channel_accels"]
    ):
        ch.batches = batches
        ch.hops = hops
        ch.range_queries = range_queries
        ch.collect_scheduled = False
    # hardware occupancy horizons + byte counters
    for i, hw in enumerate(d["chip_hw"]):
        _set_chip_hw(fw.ssd.chip_flat(i), hw)
    for ch_hw, bus_state in zip(fw.ssd.channels, d["channel_buses"]):
        _set_link(ch_hw.bus, bus_state)
    _set_link(fw.ssd.dram.bus, d["dram_bus"])
    _set_fcfs(fw._board_pipe, d["board_pipe"])
    # FTL: rebuild pristine placement and replay the remap log so
    # post-recovery page routing matches the crashed timeline's.
    # DFTL-enabled snapshots carry the full FTL state instead (replay
    # can't reproduce background GC's block shuffling); legacy
    # snapshots (no log recorded) skip the FTL as before.
    ftl_state = d.get("ftl_state")
    remap = d.get("ftl_remap_log")
    if ftl_state is not None:
        from ..flash.ftl import FTL

        ftl = FTL(fw.cfg.ssd)
        ftl.restore_state(ftl_state)
        fw.ssd.ftl = ftl
        if fw.ssd.dftl is not None and d.get("dftl_state") is not None:
            fw.ssd.dftl.restore_state(d["dftl_state"])
    elif remap is not None:
        from ..flash.ftl import FTL

        ftl = FTL(fw.cfg.ssd)
        ftl.place_striped(fw.part.num_blocks, fw.cfg.subgraph_pages())
        for flat in remap:
            ftl.retire_active_block(int(flat))
        fw.ssd.ftl = ftl
    fw._next_ftl_gc = d.get("next_ftl_gc")
    fw._restored_ftlgc_armed = d.get("ftlgc_armed")
    # Durability layer: journal/integrity contents + next fire times
    # (the caller's _arm_durability re-schedules from these).
    dur = d.get("durability")
    if dur is not None:
        fw._next_journal_flush = dur["next_journal_flush"]
        fw._next_scrub = dur["next_scrub"]
        fw._next_corruption = dur["next_corruption"]
        # Legacy snapshots (no "armed" recorded) arm everything, the
        # pre-cluster behavior; restore_for_resume consumes this.
        fw._restored_dur_armed = (
            None if "armed" not in dur else set(dur["armed"])
        )
        if fw.journal is not None and dur["journal"] is not None:
            fw.journal.restore(dur["journal"])
        if fw.integrity is not None and dur["integrity"] is not None:
            fw.integrity.restore(dur["integrity"])
    fw._restored_extra = d.get("extra")
