"""Deterministic fault injection and resilience (opt-in).

:class:`FaultModel` draws NAND read failures, channel CRC errors and
whole-chip failures from a dedicated :class:`~repro.common.rng.RngRegistry`
stream so fault runs are bit-reproducible; :mod:`repro.faults.checkpoint`
snapshots a running campaign so it can resume to an identical
:class:`~repro.core.metrics.RunResult`.
"""

from .checkpoint import Checkpoint, CheckpointManager
from .model import FaultModel
from .slow import SlowFaultModel

__all__ = ["Checkpoint", "CheckpointManager", "FaultModel", "SlowFaultModel"]
