"""Seeded fault model: every injected error is a named-RNG draw.

The model is a pure decision oracle: it answers "did this page read
fail, and how many retry rungs did it climb?" — the *latency* of those
decisions is charged by the component that asked (plane occupancy in
:mod:`repro.flash.nand`, bus time in :mod:`repro.flash.channel`), so all
fault overhead flows through the normal timing model and shows up in the
same counters the paper's figures are built from.

Draw order equals simulation event order, which the event engine makes
deterministic, so a (seed, FaultConfig) pair fully determines a run.
"""

from __future__ import annotations

import numpy as np

from ..common.config import FaultConfig
from ..obs.tracer import PID_FAULTS as _PID_FAULTS

__all__ = ["FaultModel"]


class FaultModel:
    """Decision oracle + counters for injected hardware faults."""

    def __init__(self, cfg: FaultConfig, rng: np.random.Generator):
        self.cfg = cfg
        self.rng = rng
        #: Flat chip ids (channel * chips_per_channel + chip) declared dead.
        self.failed_chips: set[int] = set()
        #: Optional :class:`~repro.obs.Tracer` (with a bound clock — the
        #: oracle itself is timeless); None = no recording.
        self.tracer = None
        #: Optional :class:`~repro.obs.MetricsRegistry` (clock-bound,
        #: same as the tracer); records the retry-ladder depth histogram
        #: and exhaustion counters for faulted reads.
        self.telemetry = None
        # -- counters (merged into RunResult.counters as "fault_*") --
        self.read_faults = 0
        self.read_retries = 0
        self.reads_exhausted = 0
        self.bad_block_remaps = 0
        self.crc_errors = 0
        self.crc_retries = 0
        self.crc_resets = 0
        self.chip_failures = 0

    # -- NAND page reads -----------------------------------------------------

    def draw_read(self) -> int:
        """Outcome of one page read's ECC + read-retry ladder.

        Returns 0 if the first sense was clean, ``k > 0`` if the k-th
        escalating retry recovered the page, or -1 if all
        ``max_read_retries`` rungs failed (retries exhausted).
        """
        if self.rng.random() >= self.cfg.page_error_rate:
            return 0
        self.read_faults += 1
        outcome = -1
        for attempt in range(1, self.cfg.max_read_retries + 1):
            self.read_retries += 1
            if self.rng.random() < self.cfg.retry_success_prob:
                outcome = attempt
                break
        if outcome < 0:
            self.reads_exhausted += 1
        mx = self.telemetry
        if mx is not None:
            # Depth climbed on this faulted read (exhausted reads climbed
            # the full ladder); clean first senses are not observed.
            depth = outcome if outcome > 0 else self.cfg.max_read_retries
            mx.histogram(
                "fault_read_retry_depth",
                tuple(range(1, self.cfg.max_read_retries + 1)),
            ).observe(depth)
            if outcome < 0:
                mx.counter("fault_reads_exhausted").inc(1.0)
        return outcome

    def read_retry_latency(self, base: float, attempts: int) -> float:
        """Array time of ``attempts`` escalating re-senses.

        Rung ``k`` re-senses with a shifted/finer reference voltage at
        ``base * retry_backoff**k``.
        """
        b = self.cfg.retry_backoff
        return base * sum(b**k for k in range(1, attempts + 1))

    def note_remap(self) -> None:
        self.bad_block_remaps += 1

    # -- channel CRC ---------------------------------------------------------

    def draw_transfer(self) -> int:
        """Outcome of one bus data transfer's CRC check + retransmits.

        Same convention as :meth:`draw_read`: 0 clean, ``k > 0`` if the
        k-th retransmission arrived intact, -1 if ``max_crc_retries``
        retransmissions all failed.
        """
        if self.rng.random() >= self.cfg.crc_error_rate:
            return 0
        self.crc_errors += 1
        for attempt in range(1, self.cfg.max_crc_retries + 1):
            self.crc_retries += 1
            if self.rng.random() < self.cfg.crc_retry_success_prob:
                return attempt
        return -1

    def crc_delay(self, attempt: int) -> float:
        """Backoff pause before retransmission ``attempt`` (1-based)."""
        return self.cfg.crc_retry_delay * self.cfg.crc_backoff ** (attempt - 1)

    def note_crc_reset(self) -> None:
        self.crc_resets += 1

    # -- chip failures -------------------------------------------------------

    def fail_chip(self, chip_flat: int) -> bool:
        """Declare a chip dead; returns False if it already was."""
        if chip_flat in self.failed_chips:
            return False
        self.failed_chips.add(chip_flat)
        self.chip_failures += 1
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "fault", _PID_FAULTS, chip_flat, "chip_failure",
                args={"chip": int(chip_flat), "total_failed": len(self.failed_chips)},
            )
        return True

    def is_failed(self, chip_flat: int) -> bool:
        return chip_flat in self.failed_chips

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "fault_read_faults": self.read_faults,
            "fault_read_retries": self.read_retries,
            "fault_reads_exhausted": self.reads_exhausted,
            "fault_bad_block_remaps": self.bad_block_remaps,
            "fault_crc_errors": self.crc_errors,
            "fault_crc_retries": self.crc_retries,
            "fault_crc_resets": self.crc_resets,
            "fault_chip_failures": self.chip_failures,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultModel(read_faults={self.read_faults}, "
            f"crc_errors={self.crc_errors}, failed_chips={sorted(self.failed_chips)})"
        )
