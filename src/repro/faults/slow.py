"""Gray-failure (slow-fault) injection: latency inflation on a fixed grid.

A gray failure is slow-but-not-dead: a chip stuck in read-retry storms,
a GC-saturated die, a degraded ONFI bus.  Nothing errors, no breaker
sees a fault counter move — operations just take longer, silently
dragging tail latency.  :class:`SlowFaultModel` reproduces that
pathology deterministically: every slow window ``(kind, unit, t_start,
t_end, factor)`` is fixed on the absolute simulated-time grid at
construction — either passed explicitly or generated once from the run
seed — so factor lookups draw **no RNG** at query time and same-seed
runs stay byte-identical.

The model plugs into the flash layer the same way ``FaultModel`` does:
``SSD.attach_slow_model`` sets ``chip.slow_model`` / ``channel.slow_model``
(both default ``None``, so a disabled run keeps the exact pre-subsystem
code path).  Chips charge ``read_extra`` / ``program_extra`` on array
ops; channels charge ``bus_extra`` on bus transfers.
"""

from __future__ import annotations

import numpy as np

from ..common.config import SLOW_FAULT_KINDS, SlowFaultConfig
from ..common.rng import derive_seed

__all__ = ["SlowFaultModel"]


class SlowFaultModel:
    """Seeded latency-inflation windows over chips and channel buses.

    Parameters
    ----------
    cfg:
        Validated :class:`~repro.common.config.SlowFaultConfig`.
    seed:
        Root seed; window generation derives its own stream
        (``derive_seed(seed, "slow-faults")``) so enabling the model
        never perturbs any other subsystem's RNG.
    n_chips / n_channels:
        Unit-id ranges the seeded generator may target.
    """

    def __init__(self, cfg: SlowFaultConfig, seed: int, *, n_chips: int, n_channels: int):
        self.cfg = cfg
        self.n_chips = int(n_chips)
        self.n_channels = int(n_channels)
        # Per-unit window lists: unit id -> [(t_start, t_end, factor), ...]
        self._chip_read: dict[int, list[tuple[float, float, float]]] = {}
        self._chip_program: dict[int, list[tuple[float, float, float]]] = {}
        self._chan_bus: dict[int, list[tuple[float, float, float]]] = {}
        self.windows: list[tuple[str, int, float, float, float]] = []
        for kind, unit, t0, t1, factor in cfg.windows:
            self._add(kind, int(unit), float(t0), float(t1), float(factor))
        if cfg.n_random:
            self._generate(seed)
        for table in (self._chip_read, self._chip_program, self._chan_bus):
            for spans in table.values():
                spans.sort()
        self.windows.sort()
        # Counters (merged into RunResult.counters when the model is on).
        self.slow_read_ops = 0
        self.slow_program_ops = 0
        self.slow_bus_ops = 0
        self.slow_time_added = 0.0

    def _add(self, kind: str, unit: int, t0: float, t1: float, factor: float) -> None:
        table = {
            "chip-read": self._chip_read,
            "chip-program": self._chip_program,
            "channel-bus": self._chan_bus,
        }[kind]
        table.setdefault(unit, []).append((t0, t1, factor))
        self.windows.append((kind, unit, t0, t1, factor))

    def _generate(self, seed: int) -> None:
        """Draw ``n_random`` windows once, at construction, from the seed."""
        cfg = self.cfg
        rng = np.random.default_rng(derive_seed(seed, "slow-faults"))
        kinds = tuple(k for k in SLOW_FAULT_KINDS if k in cfg.random_kinds)
        for _ in range(cfg.n_random):
            kind = kinds[int(rng.integers(len(kinds)))]
            n_units = self.n_channels if kind == "channel-bus" else self.n_chips
            unit = int(rng.integers(max(1, n_units)))
            t0 = float(rng.uniform(0.0, cfg.horizon))
            dur = float(rng.uniform(cfg.duration_min, cfg.duration_max))
            factor = float(rng.uniform(cfg.factor_min, cfg.factor_max))
            self._add(kind, unit, t0, t0 + dur, factor)

    # -- factor lookups (pure functions of time; no RNG) --------------------

    @staticmethod
    def _factor(table, unit: int, t: float) -> float:
        spans = table.get(unit)
        if not spans:
            return 1.0
        factor = 1.0
        for t0, t1, f in spans:
            if t0 <= t < t1:
                factor *= f  # overlapping windows compound
            elif t0 > t:
                break
        return factor

    def _extra(self, table, unit: int, t: float, base: float) -> float:
        f = self._factor(table, unit, t)
        if f <= 1.0:
            return 0.0
        extra = base * (f - 1.0)
        self.slow_time_added += extra
        return extra

    def read_extra(self, chip: int, t: float, base: float) -> float:
        """Extra seconds a page sense starting at ``t`` on ``chip`` costs."""
        extra = self._extra(self._chip_read, chip, t, base)
        if extra > 0.0:
            self.slow_read_ops += 1
        return extra

    def program_extra(self, chip: int, t: float, base: float) -> float:
        """Extra seconds a page program starting at ``t`` on ``chip`` costs."""
        extra = self._extra(self._chip_program, chip, t, base)
        if extra > 0.0:
            self.slow_program_ops += 1
        return extra

    def bus_extra(self, channel: int, t: float, base: float) -> float:
        """Extra seconds a bus transfer starting at ``t`` is stretched by."""
        extra = self._extra(self._chan_bus, channel, t, base)
        if extra > 0.0:
            self.slow_bus_ops += 1
        return extra

    # -- snapshot/restore (quiescent checkpoints) ---------------------------

    def snapshot(self) -> dict:
        return {
            "slow_read_ops": self.slow_read_ops,
            "slow_program_ops": self.slow_program_ops,
            "slow_bus_ops": self.slow_bus_ops,
            "slow_time_added": self.slow_time_added,
        }

    def restore(self, state: dict) -> None:
        self.slow_read_ops = int(state["slow_read_ops"])
        self.slow_program_ops = int(state["slow_program_ops"])
        self.slow_bus_ops = int(state["slow_bus_ops"])
        self.slow_time_added = float(state["slow_time_added"])

    def stats(self) -> dict:
        return {
            "slow_windows": len(self.windows),
            "slow_read_ops": self.slow_read_ops,
            "slow_program_ops": self.slow_program_ops,
            "slow_bus_ops": self.slow_bus_ops,
            "slow_time_added": self.slow_time_added,
        }
