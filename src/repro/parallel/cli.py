"""Campaign CLI: run a figure sweep across worker processes.

::

    python -m repro.parallel --experiment fig5 --jobs 4
    python -m repro.parallel --experiment fig9 --datasets TT FS \
        --size-factor 0.1 --walk-factor 0.02 --jobs 2 --report-dir reports/

Per-point run reports written with ``--report-dir`` are
:mod:`repro.obs.report`-schema JSON; the serial/parallel equivalence
gate diffs them with ``python -m repro.obs.cli diff --fail-on-change``.
"""

from __future__ import annotations

import argparse
import sys

from .campaign import multi_seed_points, run_campaign

__all__ = ["main"]

#: Experiments that expose point enumerators (module.points(ctx, datasets)).
PARALLEL_EXPERIMENTS = ("fig5", "fig7", "fig9", "service_slo",
                        "cluster_failover", "cluster_resize")


def _points_for(experiment: str, ctx, datasets):
    if experiment == "service_slo":
        from ..service import campaign as service_campaign

        return service_campaign.points(ctx, datasets)
    if experiment == "cluster_failover":
        from ..cluster import campaign as cluster_campaign

        return cluster_campaign.points(ctx, datasets)
    if experiment == "cluster_resize":
        from ..cluster import campaign as cluster_campaign

        return cluster_campaign.resize_points(ctx, datasets)
    from ..experiments import fig5, fig7, fig9

    mod = {"fig5": fig5, "fig7": fig7, "fig9": fig9}[experiment]
    return mod.points(ctx, datasets)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--experiment", choices=PARALLEL_EXPERIMENTS, default="fig5",
        help="which sweep to run (default: fig5)",
    )
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="dataset subset (default: all)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1 = serial)")
    parser.add_argument("--seed", type=int, default=3, help="root seed")
    parser.add_argument("--size-factor", type=float, default=1.0,
                        help="graph size factor (see experiments.harness)")
    parser.add_argument("--walk-factor", type=float, default=1.0,
                        help="walk count factor")
    parser.add_argument("--multi-seed", type=int, default=0, metavar="N",
                        help="expand each point into N replicas with "
                             "derive_seed()-derived seed offsets")
    parser.add_argument("--report-dir", default=None,
                        help="write one run-report JSON per point here")
    args = parser.parse_args(argv)

    from ..experiments.harness import ExperimentContext, format_table

    kwargs = {}
    if args.datasets:
        kwargs["datasets"] = list(args.datasets)
    ctx = ExperimentContext(
        seed=args.seed,
        size_factor=args.size_factor,
        walk_factor=args.walk_factor,
        **kwargs,
    )
    pts = _points_for(args.experiment, ctx, args.datasets)
    if args.multi_seed > 0:
        pts = multi_seed_points(pts, args.multi_seed, args.seed)
    res = run_campaign(
        pts, context=ctx, jobs=args.jobs, report_dir=args.report_dir
    )
    print(format_table(res.rows))
    print(
        f"\n{len(res.points)} points in {res.wall_seconds:.2f}s wall "
        f"({res.points_wall_seconds:.2f}s aggregate point compute, "
        f"effective parallelism {res.effective_parallelism:.2f}x, "
        f"jobs={res.jobs}"
        + (f", start={res.start_method}" if res.start_method else "")
        + ")"
    )
    if res.report_paths:
        print(f"wrote {len(res.report_paths)} run reports to {args.report_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
