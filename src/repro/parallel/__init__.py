"""Parallel campaign-execution layer (process-pool experiment sweeps)."""

from .campaign import (
    CampaignPoint,
    CampaignResult,
    derive_seed,
    diff_campaign_reports,
    multi_seed_points,
    point_runner,
    report_filename,
    resolve_runner,
    run_campaign,
)

__all__ = [
    "CampaignPoint",
    "CampaignResult",
    "derive_seed",
    "diff_campaign_reports",
    "multi_seed_points",
    "point_runner",
    "report_filename",
    "resolve_runner",
    "run_campaign",
]
