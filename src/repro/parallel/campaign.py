"""Parallel campaign execution.

The paper's headline results are sweeps — datasets x walk counts x DRAM
sizes x optimization flags x seeds — whose points are *independent*
simulations.  This module fans those points across a process pool:

* **Points are pure.**  A :class:`CampaignPoint` names an experiment, a
  dataset and its cell parameters; a registered *point runner* executes
  it against an :class:`~repro.experiments.harness.ExperimentContext`
  and returns a result row plus an optional
  :mod:`repro.obs.report`-schema run report.  Point execution never
  depends on shared mutable state, so serial and parallel campaigns
  are bit-identical per point (the equivalence the CI gate checks with
  ``repro.obs.cli diff --fail-on-change``).
* **Seeds derive deterministically.**  :func:`derive_seed` hashes the
  root seed with the point key, so every point's seed is a pure
  function of ``(root_seed, key)`` — independent of worker assignment,
  completion order, or how many jobs ran the campaign.
* **Graphs build once per worker.**  Each worker memoizes its
  ``ExperimentContext`` (whose graph cache is build-once per dataset);
  with the default ``fork`` start method workers additionally inherit
  the parent context's already-built graphs copy-on-write.
* **Results collect in point order.**  ``Pool.map`` preserves input
  order, so campaign rows are identical to a serial loop's.

``jobs <= 1`` short-circuits to an in-process loop over the *same*
point-runner code path — the serial and parallel campaigns differ only
in where the work runs.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..common.errors import ReproError

__all__ = [
    "CampaignPoint",
    "CampaignResult",
    "derive_seed",
    "diff_campaign_reports",
    "multi_seed_points",
    "point_runner",
    "report_filename",
    "resolve_runner",
    "run_campaign",
]


# -- points -----------------------------------------------------------------


@dataclass(frozen=True)
class CampaignPoint:
    """One independent cell of an experiment sweep.

    ``params`` is a sorted tuple of (name, value) pairs so points are
    hashable, picklable, and have a stable :attr:`key` regardless of
    keyword order at construction.
    """

    experiment: str
    dataset: str
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, experiment: str, dataset: str, **params) -> "CampaignPoint":
        return cls(experiment, dataset, tuple(sorted(params.items())))

    def param(self, name: str, default=None):
        for k, v in self.params:
            if k == name:
                return v
        return default

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``fig5/TT/frac=0.25``."""
        parts = [self.experiment, self.dataset]
        parts.extend(f"{k}={v}" for k, v in self.params)
        return "/".join(parts)


def derive_seed(root_seed: int, key: str) -> int:
    """Deterministic per-point seed from the campaign's root seed.

    A SHA-256 of ``"{root_seed}:{key}"`` truncated to 63 bits: stable
    across processes and Python versions (no ``hash()``), independent of
    point enumeration order, and collision-free for practical sweeps.
    """
    digest = hashlib.sha256(f"{root_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def multi_seed_points(
    points: list[CampaignPoint], n_seeds: int, root_seed: int
) -> list[CampaignPoint]:
    """Expand each point into ``n_seeds`` independently-seeded replicas.

    Each replica carries a ``seed_offset`` param derived from the root
    seed and the replica key, so multi-seed means are reproducible no
    matter how the campaign is partitioned across workers.
    """
    if n_seeds < 1:
        raise ReproError(f"need n_seeds >= 1, got {n_seeds}")
    out = []
    for p in points:
        for s in range(n_seeds):
            offset = derive_seed(root_seed, f"{p.key}#rep={s}") % (1 << 20)
            out.append(
                CampaignPoint(
                    p.experiment,
                    p.dataset,
                    tuple(sorted((*p.params, ("rep", s), ("seed_offset", offset)))),
                )
            )
    return out


# -- point-runner registry --------------------------------------------------

#: experiment name -> fn(ctx, point) -> (row dict, report dict | None)
_POINT_RUNNERS: dict[str, Callable] = {}


def point_runner(name: str):
    """Register a point-execution function for ``name`` (decorator)."""

    def deco(fn):
        _POINT_RUNNERS[name] = fn
        return fn

    return deco


def resolve_runner(name: str) -> Callable:
    """Look up a registered point runner, importing the experiment
    drivers on first use (they self-register at import)."""
    if name not in _POINT_RUNNERS:
        from ..experiments import runner  # noqa: F401 — registers fig runners
    if name not in _POINT_RUNNERS:
        from ..service import campaign  # noqa: F401 — registers service_slo
    if name not in _POINT_RUNNERS:
        from ..cluster import campaign as _cc  # noqa: F401 — cluster_failover
    try:
        return _POINT_RUNNERS[name]
    except KeyError:
        raise ReproError(
            f"no point runner registered for experiment {name!r} "
            f"(have: {sorted(_POINT_RUNNERS)})"
        ) from None


# -- results ----------------------------------------------------------------


@dataclass
class CampaignResult:
    """Ordered outcome of one campaign execution."""

    points: list[CampaignPoint]
    rows: list[dict]
    #: point key -> run report (reports the runners chose to emit).
    reports: dict[str, dict]
    #: point key -> in-worker wall seconds for that point.
    point_walls: dict[str, float]
    #: Campaign wall-clock seconds (including pool setup).
    wall_seconds: float
    #: Worker processes used (1 = in-process serial).
    jobs: int
    start_method: str | None = None
    report_paths: list[str] = field(default_factory=list)

    @property
    def points_wall_seconds(self) -> float:
        """Aggregate in-worker compute time across all points."""
        return sum(self.point_walls.values())

    @property
    def effective_parallelism(self) -> float:
        """Aggregate point compute time over campaign wall time."""
        return (
            self.points_wall_seconds / self.wall_seconds
            if self.wall_seconds > 0
            else 0.0
        )


def report_filename(key: str) -> str:
    """Filesystem-safe artifact name for a point key."""
    return re.sub(r"[^A-Za-z0-9._=-]+", "__", key) + ".json"


def diff_campaign_reports(
    a: CampaignResult | dict, b: CampaignResult | dict, rel_tol: float = 0.0
) -> dict[str, dict]:
    """Per-point :func:`~repro.obs.report.diff_reports` between two
    campaigns; returns only the points that differ (empty == identical).

    Accepts :class:`CampaignResult` objects or plain ``key -> report``
    mappings.  A point present in only one campaign diffs against ``{}``.
    """
    from ..obs.report import diff_reports

    ra = a.reports if isinstance(a, CampaignResult) else a
    rb = b.reports if isinstance(b, CampaignResult) else b
    out: dict[str, dict] = {}
    for key in sorted(set(ra) | set(rb)):
        changes = diff_reports(ra.get(key, {}), rb.get(key, {}), rel_tol=rel_tol)
        if changes:
            out[key] = changes
    return out


# -- worker side ------------------------------------------------------------

#: Per-worker memoized context (built once per worker process).
_WORKER_CTX = None
#: Parent-side context template; visible to fork-children copy-on-write.
_FORK_TEMPLATE = None


def _init_worker(ctx_params: tuple) -> None:
    global _WORKER_CTX
    tmpl = _FORK_TEMPLATE
    if tmpl is not None and tmpl.campaign_params() == ctx_params:
        # fork start method: reuse the parent's context — its graph
        # cache arrives pre-built, shared copy-on-write.
        _WORKER_CTX = tmpl
    else:
        from ..experiments.harness import ExperimentContext

        _WORKER_CTX = ExperimentContext.from_params(ctx_params)


def _run_point(point: CampaignPoint) -> tuple[dict, dict | None, float]:
    t0 = time.perf_counter()
    row, report = resolve_runner(point.experiment)(_WORKER_CTX, point)
    return row, report, time.perf_counter() - t0


def _default_start_method() -> str:
    env = os.environ.get("REPRO_MP_START", "")
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# -- campaign driver --------------------------------------------------------


def run_campaign(
    points,
    context=None,
    *,
    jobs: int = 1,
    report_dir: str | os.PathLike | None = None,
    start_method: str | None = None,
) -> CampaignResult:
    """Execute campaign ``points``, serially or across a process pool.

    Parameters
    ----------
    points:
        iterable of :class:`CampaignPoint`; results keep this order.
    context:
        the campaign's :class:`~repro.experiments.harness.ExperimentContext`
        (default: a fresh full-scale context).  With ``jobs > 1`` only
        its parameters travel to workers; each worker memoizes its own
        context (fork-children inherit this one's graph cache).
    jobs:
        worker processes.  ``<= 1`` runs in-process through the same
        point-runner code path — results are bit-identical either way.
    report_dir:
        when given, every point's run report is written there as
        pretty-printed JSON named by :func:`report_filename`.
    start_method:
        multiprocessing start method override (default: ``fork`` where
        available, else ``spawn``; env ``REPRO_MP_START`` also applies).
    """
    global _FORK_TEMPLATE
    points = list(points)
    if context is None:
        from ..experiments.harness import ExperimentContext

        context = ExperimentContext()
    t0 = time.perf_counter()
    n_workers = max(1, min(int(jobs), len(points) or 1))
    method = None
    if n_workers <= 1:
        results = []
        for p in points:
            t1 = time.perf_counter()
            row, report = resolve_runner(p.experiment)(context, p)
            results.append((row, report, time.perf_counter() - t1))
    else:
        method = start_method or _default_start_method()
        mpc = multiprocessing.get_context(method)
        _FORK_TEMPLATE = context if method == "fork" else None
        try:
            with mpc.Pool(
                n_workers,
                initializer=_init_worker,
                initargs=(context.campaign_params(),),
            ) as pool:
                results = pool.map(_run_point, points)
        finally:
            _FORK_TEMPLATE = None
    wall = time.perf_counter() - t0

    rows = [r[0] for r in results]
    reports = {p.key: r[1] for p, r in zip(points, results) if r[1] is not None}
    point_walls = {p.key: r[2] for p, r in zip(points, results)}
    out = CampaignResult(
        points=points,
        rows=rows,
        reports=reports,
        point_walls=point_walls,
        wall_seconds=wall,
        jobs=n_workers,
        start_method=method,
    )
    if report_dir is not None and reports:
        out.report_paths = _write_reports(reports, Path(report_dir))
    return out


def _write_reports(reports: dict[str, dict], out_dir: Path) -> list[str]:
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for key in sorted(reports):
        path = out_dir / report_filename(key)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(reports[key], f, indent=2, sort_keys=True)
            f.write("\n")
        paths.append(str(path))
    return paths
