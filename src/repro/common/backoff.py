"""Deterministic exponential backoff / retry policy.

One policy object serves every retry loop in the repository — the
service circuit breaker's reopen-retry event and the cluster's
migration-RPC retransmits — so their delay schedules are tested once
and identical across serial, parallel, and resumed executions.

Delays are a pure function of ``(seed, salt, attempt)``: jitter is
drawn from a SHA-256 hash rather than a live RNG stream, so computing
a delay never perturbs any seeded generator and a replayed timeline
recomputes the exact same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigError
from .rng import derive_seed

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded, deterministic jitter.

    ``delay(0)`` is always ``0.0`` (first attempt is immediate);
    ``delay(k)`` for ``k >= 1`` is ``min(cap, base * factor**(k-1))``
    stretched by up to ``jitter_frac`` of itself.  ``max_attempts``
    bounds the retry loop: :meth:`exhausted` reports when a caller
    should stop retrying and escalate.
    """

    base_delay: float = 0.0
    factor: float = 2.0
    max_delay: float = float("inf")
    max_attempts: int = 8
    jitter_frac: float = 0.0
    seed: int = 0
    salt: str = ""

    def validate(self) -> "RetryPolicy":
        if self.base_delay < 0:
            raise ConfigError(f"negative base_delay {self.base_delay}")
        if self.factor < 1.0:
            raise ConfigError(f"factor must be >= 1, got {self.factor}")
        if self.max_delay < 0:
            raise ConfigError(f"negative max_delay {self.max_delay}")
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ConfigError(
                f"jitter_frac must be in [0, 1], got {self.jitter_frac}"
            )
        return self

    def _jitter(self, attempt: int) -> float:
        """Uniform [0, 1) drawn from a hash of (seed, salt, attempt)."""
        if self.jitter_frac <= 0.0:
            return 0.0
        u = derive_seed(self.seed, f"backoff:{self.salt}:{attempt}") / float(1 << 63)
        return self.jitter_frac * u

    def delay(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (0-based).

        Attempt 0 is the initial try — no delay.  Later attempts grow
        geometrically up to ``max_delay``, plus deterministic jitter.
        """
        if attempt <= 0:
            return 0.0
        raw = min(self.max_delay, self.base_delay * self.factor ** (attempt - 1))
        return raw * (1.0 + self._jitter(attempt))

    def exhausted(self, attempt: int) -> bool:
        """True once ``attempt`` tries have been made and failed."""
        return attempt >= self.max_attempts

    def total_delay(self) -> float:
        """Sum of all delays a fully-exhausted retry loop would wait."""
        return sum(self.delay(k) for k in range(self.max_attempts))
