"""Deterministic random-number streams.

Every stochastic component of the simulator (graph generation, walk
sampling, scheduling tie-breaks...) draws from a *named stream* derived
from a single root seed.  Two runs with the same root seed therefore
produce bit-identical results regardless of the order in which components
are constructed, and changing one component's draws does not perturb the
others — essential for A/B-comparing optimizations (Fig. 9) where the walk
trajectories must be held fixed while the architecture changes.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so that similar names map to unrelated seeds.
    """
    h = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(h[:8], "little") & (2**63 - 1)


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("walks")
    >>> b = rngs.stream("walks")   # same object, continues the stream
    >>> a is b
    True
    """

    def __init__(self, root_seed: int = 0):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, resetting any prior stream."""
        gen = np.random.default_rng(derive_seed(self.root_seed, name))
        self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.root_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={sorted(self._streams)})"
