"""Physical units and conversion helpers.

All simulator times are in **seconds** (floats) and all capacities in
**bytes** (ints).  This module centralises the constants so that configs
and models never hard-code magic numbers, and provides small formatting
helpers for human-readable output in the experiment harness.
"""

from __future__ import annotations

# --- capacity ---------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# Decimal variants used by bus/bandwidth specs (e.g. "333 MB/s" in ONFI
# NV-DDR2 is a decimal megabyte rate).
KB_D = 1000
MB_D = 1000 * KB_D
GB_D = 1000 * MB_D

# --- time -------------------------------------------------------------------

SEC = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9


def mhz_to_cycle(freq_mhz: float) -> float:
    """Cycle time in seconds for a clock frequency given in MHz."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return 1.0 / (freq_mhz * 1e6)


def bandwidth_time(nbytes: int | float, bytes_per_sec: float) -> float:
    """Time in seconds to move ``nbytes`` at ``bytes_per_sec``."""
    if bytes_per_sec <= 0:
        raise ValueError(f"bandwidth must be positive, got {bytes_per_sec}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return float(nbytes) / float(bytes_per_sec)


# --- formatting -------------------------------------------------------------


def fmt_bytes(n: int | float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``5.8GB``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= unit:
            return f"{sign}{n / unit:.2f}{name}"
    return f"{sign}{n:.0f}B"


def fmt_time(t: float) -> str:
    """Render a duration with an appropriate unit, e.g. ``35.0us``."""
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t >= 1.0:
        return f"{sign}{t:.3f}s"
    if t >= MS:
        return f"{sign}{t / MS:.3f}ms"
    if t >= US:
        return f"{sign}{t / US:.3f}us"
    return f"{sign}{t / NS:.1f}ns"


def fmt_bandwidth(bytes_per_sec: float) -> str:
    """Render a bandwidth, e.g. ``10.4GB/s``."""
    return fmt_bytes(bytes_per_sec) + "/s"


def fmt_count(n: int | float) -> str:
    """Render a large count with K/M/B suffix, e.g. ``1.46B``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, name in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if n >= unit:
            return f"{sign}{n / unit:.2f}{name}"
    return f"{sign}{n:.0f}"
