"""Configuration dataclasses mirroring the paper's Tables I-III.

Three groups:

* :class:`SSDConfig` / :class:`DRAMConfig` — Table I/III hardware
  parameters of the simulated SSD and its on-board DRAM.
* :class:`AcceleratorConfig` / :class:`AcceleratorLevels` — Table II
  parameters of the chip-, channel- and board-level accelerators.
* :class:`FlashWalkerConfig` — everything above plus the design
  parameters from Section III (subgraph size, range size, Eq. 1's alpha /
  beta, topN/M, optimization toggles) and the scaling knobs documented in
  DESIGN.md Section 4.

All capacities are bytes, all times seconds, all rates bytes/second.
``validate()`` methods raise :class:`~repro.common.errors.ConfigError`
on inconsistent values; ``derived`` helpers compute the aggregate
bandwidth figures the paper quotes (Section II-C and Fig. 8).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError
from .units import GB, GB_D, KB, MB, MB_D, MS, NS, US

__all__ = [
    "SSDConfig",
    "DRAMConfig",
    "AcceleratorConfig",
    "AcceleratorLevels",
    "FTLConfig",
    "FaultConfig",
    "SlowFaultConfig",
    "SLOW_FAULT_KINDS",
    "DurabilityConfig",
    "GraphWalkerConfig",
    "FlashWalkerConfig",
    "PAPER_SCALE",
]

#: Uniform scale divisor between the paper's testbed and our laptop-scale
#: runs (DESIGN.md Section 4): graph |V|/|E|, walk counts, DRAM capacity
#: and GraphWalker block size all shrink by this factor; flash latencies,
#: accelerator cycle times and buffer *slot counts* stay at paper values.
PAPER_SCALE = 2048


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def _non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value!r}")


# ---------------------------------------------------------------------------
# Table I / III: SSD
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FTLConfig:
    """DFTL translation layer + device housekeeping (strictly opt-in).

    With ``enabled=False`` (the default) the mapping cache is never
    constructed, no background GC events are scheduled, and every flash
    operation takes the exact pre-DFTL code path, so default runs stay
    bit-identical to a build without this subsystem (test-guarded).

    Enabled, the device pays for its own translation layer: a Cached
    Mapping Table (:mod:`repro.flash.cmt`) holds ``cmt_entries`` mapping
    entries in controller DRAM; a miss reads the owning chip's
    translation page across the channel bus, and a dirty eviction writes
    it back.  Background GC runs as deterministically scheduled engine
    events whose valid-page migrations and erases occupy the same
    channel/chip resources walks and the durability journal/scrub use.
    """

    enabled: bool = False

    # -- cached mapping table ------------------------------------------------
    #: Mapping entries resident in controller DRAM (LRU-evicted).
    cmt_entries: int = 1024
    #: Bytes of one mapping entry as stored in a translation page; a
    #: 4 KB translation page then holds ``page_bytes // this`` entries.
    translation_entry_bytes: int = 8

    # -- write stream / over-provisioning -------------------------------------
    #: Pages of the circular log region engine write-back streams (walk
    #: spills, journal commits, completed-walk flushes) rotate through.
    #: Rewrites invalidate prior copies, which is what generates GC work.
    log_region_pages: int = 4096
    #: Fraction of capacity reserved as spare: shrinks the exported
    #: logical page span and raises the per-plane free-block watermark
    #: below which background GC engages.
    over_provisioning: float = 0.07

    # -- background garbage collection ----------------------------------------
    #: Simulated seconds between background GC passes; 0 keeps GC purely
    #: synchronous (the allocator's emergency path) even when enabled.
    gc_interval: float = 500e-6
    #: A plane is a GC candidate when its free blocks drop to or below
    #: ``max(this, over_provisioning * blocks_per_plane)``.
    gc_low_water_blocks: int = 2
    #: Planes collected per background pass (bounds per-event work).
    gc_planes_per_pass: int = 2

    # -- wear leveling ---------------------------------------------------------
    #: Pick the least-erased free block on allocation instead of FIFO.
    wear_leveling: bool = True

    def validate(self) -> "FTLConfig":
        if self.cmt_entries < 1:
            raise ConfigError(
                f"cmt_entries must be >= 1, got {self.cmt_entries!r}"
            )
        _positive("translation_entry_bytes", self.translation_entry_bytes)
        _positive("log_region_pages", self.log_region_pages)
        if not 0.0 <= self.over_provisioning < 0.5:
            raise ConfigError(
                "over_provisioning must be in [0, 0.5), "
                f"got {self.over_provisioning!r}"
            )
        _non_negative("gc_interval", self.gc_interval)
        if self.gc_low_water_blocks < 1:
            raise ConfigError(
                f"gc_low_water_blocks must be >= 1, "
                f"got {self.gc_low_water_blocks!r}"
            )
        if self.gc_planes_per_pass < 1:
            raise ConfigError(
                f"gc_planes_per_pass must be >= 1, "
                f"got {self.gc_planes_per_pass!r}"
            )
        return self


@dataclass
class SSDConfig:
    """SSD architectural characteristics (paper Tables I and III)."""

    channels: int = 32
    chips_per_channel: int = 4
    dies_per_chip: int = 2
    planes_per_die: int = 4
    blocks_per_plane: int = 2048
    pages_per_block: int = 64
    page_bytes: int = 4 * KB

    #: ONFI 3.1 NV-DDR2, 8-bit bus at 333 MT/s => 333 decimal MB/s.
    channel_bytes_per_sec: float = 333 * MB_D

    read_latency: float = 35 * US
    program_latency: float = 350 * US
    erase_latency: float = 2 * MS

    #: PCIe 3.0 x4: four lanes at 1 GB/s each.
    pcie_lanes: int = 4
    pcie_lane_bytes_per_sec: float = 1 * GB_D

    #: How many plane operations a chip can service concurrently.  The
    #: paper's quoted 55.8 GB/s aggregate read throughput corresponds to
    #: 4 concurrent plane reads per chip (128 chips x 4 x 4 KB / 35 us).
    max_concurrent_plane_ops_per_chip: int = 4

    #: DFTL translation layer + background GC/wear leveling (opt-in;
    #: disabled keeps the free in-memory mapping and synchronous GC).
    ftl: FTLConfig = field(default_factory=FTLConfig)

    # -- derived ------------------------------------------------------------

    @property
    def total_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def total_dies(self) -> int:
        return self.total_chips * self.dies_per_chip

    @property
    def total_planes(self) -> int:
        return self.total_dies * self.planes_per_die

    @property
    def planes_per_chip(self) -> int:
        return self.dies_per_chip * self.planes_per_die

    @property
    def chip_capacity_bytes(self) -> int:
        return (
            self.planes_per_chip
            * self.blocks_per_plane
            * self.pages_per_block
            * self.page_bytes
        )

    @property
    def total_capacity_bytes(self) -> int:
        return self.total_chips * self.chip_capacity_bytes

    @property
    def pcie_bytes_per_sec(self) -> float:
        return self.pcie_lanes * self.pcie_lane_bytes_per_sec

    @property
    def aggregate_channel_bytes_per_sec(self) -> float:
        """Max aggregated channel-bus bandwidth (paper: ~10.4 GB/s)."""
        return self.channels * self.channel_bytes_per_sec

    @property
    def plane_read_bytes_per_sec(self) -> float:
        """Sustained read rate of one plane (page / read latency)."""
        return self.page_bytes / self.read_latency

    @property
    def aggregate_flash_read_bytes_per_sec(self) -> float:
        """Max aggregated chip read throughput (paper: ~55.8 GB/s).

        Limited by per-chip plane-op concurrency, not the raw plane count.
        """
        return (
            self.total_chips
            * self.max_concurrent_plane_ops_per_chip
            * self.plane_read_bytes_per_sec
        )

    def validate(self) -> "SSDConfig":
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_bytes",
            "channel_bytes_per_sec",
            "read_latency",
            "program_latency",
            "erase_latency",
            "pcie_lanes",
            "pcie_lane_bytes_per_sec",
            "max_concurrent_plane_ops_per_chip",
        ):
            _positive(name, getattr(self, name))
        if self.max_concurrent_plane_ops_per_chip > self.planes_per_chip:
            raise ConfigError(
                "max_concurrent_plane_ops_per_chip "
                f"({self.max_concurrent_plane_ops_per_chip}) exceeds planes per "
                f"chip ({self.planes_per_chip})"
            )
        self.ftl.validate()
        if self.ftl.enabled and self.ftl.translation_entry_bytes > self.page_bytes:
            raise ConfigError(
                f"translation_entry_bytes ({self.ftl.translation_entry_bytes}) "
                f"exceeds page_bytes ({self.page_bytes})"
            )
        return self


@dataclass
class DRAMConfig:
    """On-board DRAM (paper Table III, right column).

    We model DRAM as a shared bandwidth resource with a fixed access
    latency rather than cycle-level DDR4 timing; the timing parameters
    from the paper are kept to *derive* that bandwidth/latency so that
    the config remains recognisably Table III.
    """

    capacity_bytes: int = 4 * GB
    frequency_mhz: float = 1600.0
    bus_width_bits: int = 64
    burst_length: int = 8
    tCL: int = 22
    tRCD: int = 22
    tRP: int = 22
    tRAS: int = 52

    @property
    def peak_bytes_per_sec(self) -> float:
        """Peak transfer rate: DDR moves data on both clock edges."""
        return self.frequency_mhz * 1e6 * 2 * (self.bus_width_bits // 8)

    @property
    def access_latency(self) -> float:
        """Closed-page random access latency (tRP + tRCD + tCL cycles)."""
        cycle = 1.0 / (self.frequency_mhz * 1e6)
        return (self.tRP + self.tRCD + self.tCL) * cycle

    @property
    def row_cycle_time(self) -> float:
        """tRC = tRAS + tRP in seconds."""
        cycle = 1.0 / (self.frequency_mhz * 1e6)
        return (self.tRAS + self.tRP) * cycle

    def validate(self) -> "DRAMConfig":
        for name in (
            "capacity_bytes",
            "frequency_mhz",
            "bus_width_bits",
            "burst_length",
            "tCL",
            "tRCD",
            "tRP",
            "tRAS",
        ):
            _positive(name, getattr(self, name))
        if self.bus_width_bits % 8:
            raise ConfigError("bus_width_bits must be a multiple of 8")
        return self


# ---------------------------------------------------------------------------
# Table II: accelerators
# ---------------------------------------------------------------------------


@dataclass
class AcceleratorConfig:
    """One accelerator level's parameters (one column of Table II)."""

    name: str
    frequency_mhz: float
    n_updaters: int
    updater_cycle: float
    n_guiders: int
    guider_cycle: float
    subgraph_buffer_bytes: int
    walk_queues_bytes: int
    guide_buffer_bytes: int = 0
    roving_buffer_bytes: int = 0
    area_mm2: float = 0.0

    #: "The walk updater performs 5 operations to process a walk if not
    #: stalled" (Section IV-A) — cost of one unbiased hop in updater cycles.
    updater_ops_per_hop: int = 5

    def subgraph_slots(self, subgraph_bytes: int) -> int:
        """How many subgraphs this level's buffer holds at once."""
        _positive("subgraph_bytes", subgraph_bytes)
        return max(1, self.subgraph_buffer_bytes // subgraph_bytes)

    def walk_queue_capacity(self, walk_bytes: int) -> int:
        """Total walks the walk queues hold across all entries."""
        _positive("walk_bytes", walk_bytes)
        return max(1, self.walk_queues_bytes // walk_bytes)

    def hop_time(self) -> float:
        """Wall time for one updater to advance a walk by one hop."""
        return self.updater_ops_per_hop * self.updater_cycle

    def validate(self) -> "AcceleratorConfig":
        for name in (
            "frequency_mhz",
            "n_updaters",
            "updater_cycle",
            "n_guiders",
            "guider_cycle",
            "subgraph_buffer_bytes",
            "walk_queues_bytes",
            "updater_ops_per_hop",
        ):
            _positive(name, getattr(self, name))
        for name in ("guide_buffer_bytes", "roving_buffer_bytes", "area_mm2"):
            _non_negative(name, getattr(self, name))
        return self


def _chip_level() -> AcceleratorConfig:
    return AcceleratorConfig(
        name="chip",
        frequency_mhz=500.0,
        n_updaters=1,
        updater_cycle=16 * NS,
        n_guiders=1,
        guider_cycle=16 * NS,
        subgraph_buffer_bytes=1 * MB,
        walk_queues_bytes=64 * KB,
        guide_buffer_bytes=0,
        roving_buffer_bytes=32 * KB,
        area_mm2=1.30,
    )


def _channel_level() -> AcceleratorConfig:
    return AcceleratorConfig(
        name="channel",
        frequency_mhz=500.0,
        n_updaters=1,
        updater_cycle=8 * NS,
        n_guiders=4,
        guider_cycle=8 * NS,
        subgraph_buffer_bytes=2 * MB,
        walk_queues_bytes=128 * KB,
        guide_buffer_bytes=16 * KB,
        roving_buffer_bytes=8 * KB,
        area_mm2=1.84,
    )


def _board_level() -> AcceleratorConfig:
    return AcceleratorConfig(
        name="board",
        frequency_mhz=1000.0,
        n_updaters=4,
        updater_cycle=4 * NS,
        n_guiders=128,
        guider_cycle=4 * NS,
        subgraph_buffer_bytes=16 * MB,
        walk_queues_bytes=1 * MB,
        guide_buffer_bytes=128 * KB,
        roving_buffer_bytes=0,
        area_mm2=14.31,
    )


@dataclass
class AcceleratorLevels:
    """The three accelerator levels of Table II."""

    chip: AcceleratorConfig = field(default_factory=_chip_level)
    channel: AcceleratorConfig = field(default_factory=_channel_level)
    board: AcceleratorConfig = field(default_factory=_board_level)

    def validate(self) -> "AcceleratorLevels":
        self.chip.validate()
        self.channel.validate()
        self.board.validate()
        return self


# ---------------------------------------------------------------------------
# Baseline: GraphWalker
# ---------------------------------------------------------------------------


@dataclass
class GraphWalkerConfig:
    """Behavioral model of GraphWalker (ATC'20) on the paper's testbed.

    The paper runs GraphWalker on a Ryzen 7 3700X with a 970 EVO Plus
    (PCIe 3.0 x4) and artificially caps its memory at 8 GB by default
    (Section IV-A); Fig. 7 sweeps 4/8/16 GB.  Capacities here are the
    *scaled* defaults (paper value / PAPER_SCALE).
    """

    #: Memory available for caching graph blocks (scaled: 8 GB / 2048).
    memory_bytes: int = 8 * GB // PAPER_SCALE
    #: GraphWalker's coarse block size (paper quotes 1 GB blocks on CW).
    block_bytes: int = 1 * GB // PAPER_SCALE
    #: Sustained host-visible read bandwidth of the 970 EVO Plus.
    disk_read_bytes_per_sec: float = 3.0 * GB_D
    #: Fixed per-I/O software+device overhead (syscall, NVMe round trip).
    io_request_overhead: float = 80 * US
    #: Aggregate CPU walk-update rate: 8 cores doing random-access
    #: neighbor sampling (~12 M hops/s/core, typical of GraphWalker-class engines).
    cpu_hops_per_sec: float = 100e6
    #: Walks flushed to disk when a block's in-memory walk pool exceeds
    #: this many walks (GraphWalker's walk pool spill; scaled).
    walk_pool_spill: int = (1 << 20) // PAPER_SCALE * 8

    def validate(self) -> "GraphWalkerConfig":
        for name in (
            "memory_bytes",
            "block_bytes",
            "disk_read_bytes_per_sec",
            "cpu_hops_per_sec",
            "walk_pool_spill",
        ):
            _positive(name, getattr(self, name))
        _non_negative("io_request_overhead", self.io_request_overhead)
        if self.block_bytes > self.memory_bytes:
            raise ConfigError(
                f"block_bytes ({self.block_bytes}) exceeds memory_bytes "
                f"({self.memory_bytes}); GraphWalker must hold >= 1 block"
            )
        return self


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


#: Window kinds the slow-fault model understands.  ``chip-read`` and
#: ``chip-program`` inflate NAND array-op latencies on one flat chip id;
#: ``channel-bus`` degrades one channel's shared ONFI bus bandwidth.
SLOW_FAULT_KINDS = ("chip-read", "chip-program", "channel-bus")


@dataclass(frozen=True)
class SlowFaultConfig:
    """Gray-failure (latency-inflation) fault windows (strictly opt-in).

    Unlike :class:`FaultConfig`'s fail-stop faults, slow faults never
    error: operations inside an active window simply take ``factor``
    times their nominal latency — a chip in a read-retry storm, a
    GC-saturated die, a degraded bus.  Windows are fixed on the absolute
    simulated-time grid at construction (explicitly, or generated once
    from the seed), so no per-event RNG is drawn and same-seed runs stay
    byte-identical.  With ``enabled=False`` (the default) the model is
    never constructed and ``config_fingerprint`` is unchanged from a
    build without this subsystem.
    """

    enabled: bool = False

    #: Explicit windows: ``(kind, unit_id, t_start, t_end, factor)``
    #: where ``kind`` is one of :data:`SLOW_FAULT_KINDS`, ``unit_id``
    #: the flat chip id (chip kinds) or channel id (bus kind), and
    #: ``factor >= 1`` the latency multiplier while active.
    windows: tuple[tuple[str, int, float, float, float], ...] = ()

    # -- seeded window generation -------------------------------------------
    #: Number of additional windows drawn at construction from the run
    #: seed (kind, unit, start, duration, severity all seeded).
    n_random: int = 0
    #: Kinds the seeded generator may draw.
    random_kinds: tuple[str, ...] = ("chip-read", "channel-bus")
    #: Seeded window start times are uniform in ``[0, horizon)``.
    horizon: float = 400 * US
    #: Seeded window durations are uniform in ``[duration_min, duration_max]``.
    duration_min: float = 50 * US
    duration_max: float = 150 * US
    #: Seeded latency multipliers are uniform in ``[factor_min, factor_max]``.
    factor_min: float = 2.0
    factor_max: float = 8.0

    def validate(self) -> "SlowFaultConfig":
        for w in self.windows:
            if len(w) != 5:
                raise ConfigError(
                    f"slow window entries are (kind, unit, t_start, t_end, factor): {w!r}"
                )
            kind, unit, t_start, t_end, factor = w
            if kind not in SLOW_FAULT_KINDS:
                raise ConfigError(f"unknown slow-fault kind {kind!r}")
            if int(unit) != unit or unit < 0:
                raise ConfigError(f"slow window unit must be an int >= 0: {unit!r}")
            _non_negative("slow window t_start", t_start)
            if t_end <= t_start:
                raise ConfigError(f"slow window must have t_end > t_start: {w!r}")
            if factor < 1.0:
                raise ConfigError(f"slow window factor must be >= 1, got {factor!r}")
        if self.n_random < 0:
            raise ConfigError(f"n_random must be >= 0, got {self.n_random!r}")
        for kind in self.random_kinds:
            if kind not in SLOW_FAULT_KINDS:
                raise ConfigError(f"unknown slow-fault kind {kind!r}")
        if self.n_random and not self.random_kinds:
            raise ConfigError("n_random > 0 requires at least one random kind")
        _positive("horizon", self.horizon)
        _positive("duration_min", self.duration_min)
        if self.duration_max < self.duration_min:
            raise ConfigError("duration_max must be >= duration_min")
        if self.factor_min < 1.0:
            raise ConfigError(f"factor_min must be >= 1, got {self.factor_min!r}")
        if self.factor_max < self.factor_min:
            raise ConfigError("factor_max must be >= factor_min")
        return self


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault-injection parameters (strictly opt-in).

    With ``enabled=False`` (the default) the fault layer is never
    constructed: no RNG stream is registered and every flash operation
    takes the exact same code path as before this subsystem existed, so
    results are bit-identical to a fault-free build.

    All probabilities are per *operation* (one page read, one bus data
    transfer), not per bit; pick rates high enough to matter at
    laptop-scale page counts (e.g. 1e-3..1e-1).  Latencies are seconds.
    """

    enabled: bool = False

    # -- NAND page read failures + read-retry ladder -------------------------
    #: Probability that a page read's first sense fails ECC.
    page_error_rate: float = 0.0
    #: Probability each escalating read-retry attempt (shifted Vref)
    #: succeeds; attempts are i.i.d. draws against this.
    retry_success_prob: float = 0.75
    #: Retry attempts before the read is declared exhausted.
    max_read_retries: int = 5
    #: Attempt ``k`` (1-based) costs ``read_latency * retry_backoff**k``:
    #: deeper retries use finer, slower sensing.
    retry_backoff: float = 1.5

    # -- bad-block management ------------------------------------------------
    #: When a read exhausts its retries with recovery enabled, the FTL
    #: remaps the victim block (one clean re-read + one program charge)
    #: and retires a block from the plane's free pool.
    remap_on_exhaustion: bool = True

    # -- channel CRC errors --------------------------------------------------
    #: Probability one ONFI data transfer is received corrupted.
    crc_error_rate: float = 0.0
    #: Probability each retransmission arrives clean.
    crc_retry_success_prob: float = 0.9
    #: Retransmissions before the transfer is declared exhausted.
    max_crc_retries: int = 3
    #: Pause before retransmission ``k`` (1-based) is
    #: ``crc_retry_delay * crc_backoff**(k-1)``; the data then recrosses
    #: the shared bus at full cost.
    crc_retry_delay: float = 1 * US
    crc_backoff: float = 2.0
    #: Latency of a full link reset when retransmissions run dry (the
    #: recovery path of last resort before the final clean transfer).
    crc_reset_latency: float = 100 * US

    # -- whole-chip (plane/die escalation) failures --------------------------
    #: Explicit ``(time_seconds, flat_chip_id)`` failure events, where
    #: ``flat_chip_id = channel * chips_per_channel + chip``.  Explicit
    #: scheduling (rather than a failure rate) keeps degraded-mode runs
    #: exactly reproducible and lets tests target specific chips.
    chip_failures: tuple[tuple[float, int], ...] = ()
    #: Delay before a failed chip's in-flight walks re-enter the board
    #: pipeline (failure detection + firmware failover).
    failover_latency: float = 1 * MS
    #: First load of a subgraph relocated off a failed chip costs
    #: ``rebuild_read_factor``x the normal flash read time (RAID-style
    #: reconstruction from redundancy, modeled analytically).
    rebuild_read_factor: float = 4.0

    # -- checkpoint/resume ---------------------------------------------------
    #: Simulated seconds between checkpoints; 0 disables checkpointing.
    checkpoint_interval: float = 0.0

    # -- gray failures -------------------------------------------------------
    #: Latency-inflation (slow-fault) windows; independent of ``enabled``
    #: above, so a run can be slow-but-healthy with no fail-stop faults.
    slow: SlowFaultConfig = field(default_factory=SlowFaultConfig)

    def validate(self) -> "FaultConfig":
        self.slow.validate()
        for name in ("page_error_rate", "crc_error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value!r}")
        for name in ("retry_success_prob", "crc_retry_success_prob"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {value!r}")
        for name in ("max_read_retries", "max_crc_retries"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        _positive("retry_backoff", self.retry_backoff)
        _positive("crc_backoff", self.crc_backoff)
        _non_negative("crc_retry_delay", self.crc_retry_delay)
        _non_negative("crc_reset_latency", self.crc_reset_latency)
        _non_negative("failover_latency", self.failover_latency)
        if self.rebuild_read_factor < 1.0:
            raise ConfigError(
                f"rebuild_read_factor must be >= 1, got {self.rebuild_read_factor!r}"
            )
        _non_negative("checkpoint_interval", self.checkpoint_interval)
        for event in self.chip_failures:
            if len(event) != 2:
                raise ConfigError(f"chip_failures entries are (time, chip): {event!r}")
            t_fail, chip = event
            _non_negative("chip_failures time", t_fail)
            if int(chip) != chip or chip < 0:
                raise ConfigError(f"chip_failures chip id must be an int >= 0: {chip!r}")
        return self


# ---------------------------------------------------------------------------
# Durability: power loss, walk journal, end-to-end integrity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DurabilityConfig:
    """Crash-consistency and data-integrity parameters (strictly opt-in).

    With ``enabled=False`` (the default) the durability layer is never
    constructed: no RNG stream is registered, no journal or scrub events
    are scheduled, and runs stay bit-identical to a build without this
    subsystem.  See DESIGN.md Section 10 for the durability model.

    Power loss is *scheduled* at runtime via
    ``FlashWalker.schedule_power_loss`` (an engine attribute, kept out of
    this config so the ``config_fingerprint`` of a crashed-and-recovered
    run matches its uninterrupted baseline); torn pages and silent
    corruption are drawn from seeded RNG streams.  All times are
    simulated seconds.
    """

    enabled: bool = False

    # -- write-ahead walk journal --------------------------------------------
    #: Simulated seconds between journal group-commit flushes; 0 disables
    #: the journal (recovery then replays from the bare checkpoint).
    journal_interval: float = 0.0
    #: Bytes of one journal record as written to flash (walk-progress
    #: delta + sequence number + CRC).  Flush cost is charged against the
    #: normal channel/NAND path so the journal competes for bandwidth.
    journal_record_bytes: int = 32

    # -- power-loss injection ------------------------------------------------
    #: Probability that a plane with an in-flight program at the moment
    #: of power loss holds a *torn* (partially programmed) page.  Torn
    #: pages are repaired from the RAIN parity group during recovery.
    torn_page_prob: float = 0.5

    # -- silent corruption + RAIN parity -------------------------------------
    #: Poisson rate (events per simulated second) at which a random plane
    #: develops silent corruption that passes ECC; 0 disables corruption.
    #: Detected on the next read via the end-to-end page checksum.
    silent_corruption_rate: float = 0.0
    #: Hard cap on injected corruption events per run (keeps chaotic
    #: configs bounded); 0 = unlimited.
    max_corruption_events: int = 8
    #: A plane whose repair count reaches this threshold has its active
    #: block quarantined (retired via the FTL, caches invalidated).
    quarantine_threshold: int = 2

    # -- background scrubbing ------------------------------------------------
    #: Simulated seconds between scrub passes; 0 disables scrubbing.
    #: Each pass reads ``scrub_planes_per_pass`` planes through the
    #: normal chip/channel path, so scrubbing competes for bandwidth.
    scrub_interval: float = 0.0
    #: Planes verified per scrub pass (round-robin cursor over the SSD).
    scrub_planes_per_pass: int = 4

    # -- checkpoint retention ------------------------------------------------
    #: Snapshots kept by the CheckpointManager; 0 = unbounded (the
    #: pre-durability behavior).  Journaled recovery only ever needs the
    #: latest snapshot, so long campaigns should cap this.
    checkpoint_keep_last: int = 0

    def validate(self) -> "DurabilityConfig":
        _non_negative("journal_interval", self.journal_interval)
        _positive("journal_record_bytes", self.journal_record_bytes)
        if not 0.0 <= self.torn_page_prob <= 1.0:
            raise ConfigError(
                f"torn_page_prob must be in [0, 1], got {self.torn_page_prob!r}"
            )
        _non_negative("silent_corruption_rate", self.silent_corruption_rate)
        _non_negative("max_corruption_events", self.max_corruption_events)
        if self.quarantine_threshold < 1:
            raise ConfigError(
                f"quarantine_threshold must be >= 1, got {self.quarantine_threshold!r}"
            )
        _non_negative("scrub_interval", self.scrub_interval)
        _positive("scrub_planes_per_pass", self.scrub_planes_per_pass)
        _non_negative("checkpoint_keep_last", self.checkpoint_keep_last)
        return self


# ---------------------------------------------------------------------------
# FlashWalker top-level
# ---------------------------------------------------------------------------


@dataclass
class FlashWalkerConfig:
    """Everything needed to instantiate a FlashWalker system.

    Design parameters are from Section III/IV of the paper; see DESIGN.md
    Section 4 for which values are scaled and why.
    """

    ssd: SSDConfig = field(default_factory=SSDConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    levels: AcceleratorLevels = field(default_factory=AcceleratorLevels)
    faults: FaultConfig = field(default_factory=FaultConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)

    #: Graph-block (= subgraph) size.  Paper: 256 KB (512 KB for ClueWeb);
    #: scaled to one flash page so scaled graphs still span thousands of
    #: subgraphs (DESIGN.md Section 4).
    subgraph_bytes: int = 4 * KB

    #: Bytes per vertex ID (4; the paper uses 8 for ClueWeb).
    vid_bytes: int = 4

    #: Bytes of one walk record (src + cur + hop, padded).
    walk_bytes: int = 12

    #: Subgraphs per subgraph *range* for the approximate walk search
    #: (Section III-C: "If a subgraph range has 256 subgraphs, the table
    #: can be reduced by 256x").
    range_subgraphs: int = 256

    #: Subgraphs per graph partition (Section III-D, partition walk buffer).
    partition_subgraphs: int = 2048

    #: Hot subgraphs kept resident: top-K by in-degree per channel-level
    #: accelerator and in the board-level accelerator (Section III-C/D).
    #: Scaled so hot blocks stay a small fraction of the scaled block
    #: counts, as in the paper (DESIGN.md Section 4).
    channel_hot_subgraphs: int = 2
    board_hot_subgraphs: int = 16
    #: Hot *dense vertices* whose full block list stays resident in the
    #: board subgraph buffer, so their pre-walked hops resolve at the
    #: board instead of round-tripping to a chip (hub vertices are the
    #: most "popular subgraphs" of Section III-C on skewed graphs).
    board_hot_dense_vertices: int = 2

    #: Partition-walk-buffer entry capacity in walks; 0 = auto-size from
    #: the workload (a few times the mean walks per subgraph), which
    #: preserves the paper's regime where only hot entries overflow.
    pwb_entry_walks: int = 0

    #: Eq. 1 parameters (Section III-D / IV-E).
    alpha: float = 1.2
    beta: float = 1.5

    #: topN list length per chip and access period M (Section III-D).
    top_n: int = 8
    score_update_period_m: int = 16

    #: Walk query caches: 32 total, shared 1-per-4 board guiders (Section
    #: IV-A).  The paper uses 4 KB caches against a 2 MB table; the byte
    #: size here is scaled to keep the cache:table entry ratio (~6%)
    #: against the scaled block counts.
    n_query_caches: int = 32
    query_cache_bytes: int = 128
    #: Bytes of one subgraph-mapping entry (2 end vIDs + flash addr + sum
    #: out-degree).
    mapping_entry_bytes: int = 16

    #: Concurrent binary searches the subgraph mapping table sustains
    #: (SRAM ports).  Contention among guiders on this table is what the
    #: walk query cache relieves (Section III-D).
    table_ports: int = 8

    #: Mapping-table capacities (Section IV-A).
    subgraph_table_bytes: int = 2 * MB
    walk_blocks_table_bytes: int = 128 * KB
    dense_table_bytes: int = 128 * KB

    #: Completed-walk and foreigner buffer capacities (board level).
    completed_buffer_bytes: int = 64 * KB
    foreigner_buffer_bytes: int = 64 * KB

    #: Interval at which channel-level accelerators collect roving walks
    #: from their chips ("in a fixed time interval", Section III-B).
    roving_collect_interval: float = 20 * US

    #: Optimization toggles (Fig. 9): approximate walk search + query
    #: cache (WQ), hot subgraphs (HS), subgraph scheduling by Eq. 1 (SS).
    opt_walk_query: bool = True
    opt_hot_subgraphs: bool = True
    opt_subgraph_scheduling: bool = True

    # -- derived ------------------------------------------------------------

    @property
    def edges_per_subgraph(self) -> int:
        """Upper bound on edges a graph block holds (rest is offsets)."""
        # Half the block budget is reserved for the offsets array in the
        # worst (degree-1) case; typical blocks store far more edges.
        return max(1, self.subgraph_bytes // (2 * self.vid_bytes))

    @property
    def query_cache_entries(self) -> int:
        return max(1, self.query_cache_bytes // self.mapping_entry_bytes)

    @property
    def subgraph_table_entries(self) -> int:
        return max(1, self.subgraph_table_bytes // self.mapping_entry_bytes)

    def chip_subgraph_slots(self) -> int:
        """Subgraph slots per chip accelerator.

        The paper's ratio is 1 MB buffer / 256 KB subgraphs = 4 slots; we
        preserve the *slot count* under scaling by deriving it from the
        paper byte values, not the scaled subgraph size.
        """
        return max(1, self.levels.chip.subgraph_buffer_bytes // (256 * KB))

    def channel_subgraph_slots(self) -> int:
        return max(1, self.levels.channel.subgraph_buffer_bytes // (256 * KB))

    def board_subgraph_slots(self) -> int:
        return max(1, self.levels.board.subgraph_buffer_bytes // (256 * KB))

    def subgraph_pages(self) -> int:
        """Flash pages occupied by one subgraph."""
        pages = -(-self.subgraph_bytes // self.ssd.page_bytes)
        return max(1, pages)

    def validate(self) -> "FlashWalkerConfig":
        self.ssd.validate()
        self.dram.validate()
        self.levels.validate()
        self.faults.validate()
        self.durability.validate()
        for name in (
            "subgraph_bytes",
            "vid_bytes",
            "walk_bytes",
            "range_subgraphs",
            "partition_subgraphs",
            "alpha",
            "beta",
            "top_n",
            "score_update_period_m",
            "table_ports",
            "n_query_caches",
            "query_cache_bytes",
            "mapping_entry_bytes",
            "subgraph_table_bytes",
            "walk_blocks_table_bytes",
            "dense_table_bytes",
            "completed_buffer_bytes",
            "foreigner_buffer_bytes",
            "roving_collect_interval",
        ):
            _positive(name, getattr(self, name))
        _non_negative("channel_hot_subgraphs", self.channel_hot_subgraphs)
        _non_negative("board_hot_subgraphs", self.board_hot_subgraphs)
        _non_negative("board_hot_dense_vertices", self.board_hot_dense_vertices)
        _non_negative("pwb_entry_walks", self.pwb_entry_walks)
        if self.walk_bytes < 2 * self.vid_bytes + 1:
            raise ConfigError(
                f"walk_bytes ({self.walk_bytes}) cannot hold src+cur+hop with "
                f"vid_bytes={self.vid_bytes}"
            )
        for _t, chip in self.faults.chip_failures:
            if chip >= self.ssd.total_chips:
                raise ConfigError(
                    f"chip_failures targets chip {chip} but the SSD only has "
                    f"{self.ssd.total_chips} chips"
                )
        return self

    def replace(self, **kwargs) -> "FlashWalkerConfig":
        """Return a copy with some top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def with_optimizations(
        self, wq: bool, hs: bool, ss: bool
    ) -> "FlashWalkerConfig":
        """Copy with the Fig. 9 optimization toggles set."""
        return self.replace(
            opt_walk_query=wq, opt_hot_subgraphs=hs, opt_subgraph_scheduling=ss
        )
