"""Exception hierarchy for the FlashWalker reproduction.

Every error raised deliberately by the library derives from
:class:`ReproError` so applications can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class GraphError(ReproError):
    """A graph is malformed or an operation on it is invalid."""


class PartitionError(GraphError):
    """Graph partitioning failed or produced inconsistent blocks."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class FlashError(ReproError):
    """An SSD-model operation was invalid (bad address, bad state...)."""


class FlashAddressError(FlashError):
    """A physical or logical flash address is out of range."""


class FaultError(FlashError):
    """An injected hardware fault could not be handled."""


class FaultExhaustedError(FaultError):
    """A bounded retry loop ran dry without the operation succeeding.

    Raised by the NAND read-retry ladder and the channel CRC retransmit
    loop when ``recover=False``; with recovery enabled the SSD model
    escalates instead (bad-block remap / link reset) so campaigns keep
    every walk.  ``at`` carries the simulation time when the final
    attempt failed, so callers can keep charging the wasted latency.
    The location fields (``channel``/``chip``/``die``/``plane``/
    ``block``) name the hardware unit that exhausted its retries, so
    service-layer circuit breakers and error logs can act on *where* a
    fault cluster sits; fields not applicable to the raising component
    stay None.  ``str(exc)`` keeps its original message prefix.
    """

    def __init__(
        self,
        message: str,
        at: float = 0.0,
        *,
        channel: int | None = None,
        chip: int | None = None,
        die: int | None = None,
        plane: int | None = None,
        block: int | None = None,
    ):
        super().__init__(message)
        self.at = at
        self.channel = channel
        self.chip = chip
        self.die = die
        self.plane = plane
        self.block = block

    def location(self) -> dict:
        """Non-None location/time context as a plain dict (for logs)."""
        out = {"at": self.at}
        for name in ("channel", "chip", "die", "plane", "block"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


class PowerLossError(SimulationError):
    """The simulated device lost power mid-run (durability layer).

    Raised out of ``Simulator.run()`` by an injected power-loss event
    (``FlashWalker.schedule_power_loss``).
    Unlike the recoverable fault classes, power loss destroys volatile
    state: in-flight walks, unflushed journal records, and any page
    program caught mid-flight (``torn_pages``).  ``recover()`` on the
    engine restores the latest quiescent checkpoint and replays forward.
    """

    def __init__(
        self,
        message: str,
        *,
        at: float = 0.0,
        events_executed: int = 0,
        completed_walks: int = 0,
        torn_pages: tuple = (),
    ):
        super().__init__(message)
        self.at = at
        self.events_executed = events_executed
        self.completed_walks = completed_walks
        #: ``(flat_chip, die, plane)`` triples of programs torn by the cut.
        self.torn_pages = tuple(torn_pages)


class DataIntegrityError(FlashError):
    """Silent data corruption was detected and could not be repaired.

    Raised by the end-to-end integrity layer when a page fails its
    checksum and RAIN parity reconstruction is impossible (e.g. every
    sibling chip in the parity group has failed).  ``location`` fields
    follow :class:`FaultExhaustedError`'s convention.
    """

    def __init__(
        self,
        message: str,
        *,
        at: float = 0.0,
        chip: int | None = None,
        die: int | None = None,
        plane: int | None = None,
    ):
        super().__init__(message)
        self.at = at
        self.chip = chip
        self.die = die
        self.plane = plane


class BufferOverflowError(ReproError):
    """A hardware buffer exceeded capacity where overflow is not allowed.

    Note most FlashWalker buffers handle overflow by *flushing to flash*
    (modeled explicitly); this error only fires when a model invariant is
    violated, i.e. a bug, not a workload condition.  ``block``,
    ``capacity``, ``occupancy`` and ``at`` localize the offending entry
    when the raiser knows them; ``str(exc)`` keeps its message prefix.
    """

    def __init__(
        self,
        message: str,
        *,
        block: int | None = None,
        capacity: int | None = None,
        occupancy: int | None = None,
        at: float | None = None,
    ):
        super().__init__(message)
        self.block = block
        self.capacity = capacity
        self.occupancy = occupancy
        self.at = at


class InvariantViolation(SimulationError):
    """The online auditor found engine state violating an invariant.

    Carries the failed checks plus a state dump captured at detection
    time so the offending condition is debuggable post-mortem (the
    simulation stops at the raise).  ``context`` names the component
    that detected the violation (e.g. ``"service"`` or
    ``"cluster/shard:2"``) so multi-shard audit failures are
    attributable in CI logs.

    State dumps are *bounded*: long sequences (walk tables, per-shard
    listings) are truncated to :data:`MAX_STATE_ITEMS` entries and long
    strings to :data:`MAX_STATE_CHARS` characters, each with an
    explicit ``"... (<n> total, truncated)"`` marker, so a
    cluster-scale failure stays readable instead of dumping thousands
    of walk records.
    """

    #: Longest sequence kept verbatim in a state dump.
    MAX_STATE_ITEMS = 32
    #: Longest string kept verbatim in a state dump.
    MAX_STATE_CHARS = 512
    #: Recursion guard for nested state dumps.
    MAX_STATE_DEPTH = 4

    def __init__(self, message: str, *, violations: list[str] | None = None,
                 state: dict | None = None, at: float = 0.0,
                 context: str | None = None):
        super().__init__(message)
        self.violations = list(violations or [])
        self.state = self._bound(dict(state or {}), self.MAX_STATE_DEPTH)
        self.at = at
        self.context = context

    @classmethod
    def _bound(cls, value, depth: int):
        """Truncate oversized containers/strings, keeping dumps readable."""
        if depth <= 0:
            return "... (max depth, truncated)"
        if isinstance(value, dict):
            out = {}
            for i, (k, v) in enumerate(value.items()):
                if i >= cls.MAX_STATE_ITEMS:
                    out["..."] = f"({len(value)} total, truncated)"
                    break
                out[k] = cls._bound(v, depth - 1)
            return out
        if isinstance(value, (list, tuple)):
            seq = [cls._bound(v, depth - 1) for v in value[: cls.MAX_STATE_ITEMS]]
            if len(value) > cls.MAX_STATE_ITEMS:
                seq.append(f"... ({len(value)} total, truncated)")
            return tuple(seq) if isinstance(value, tuple) else seq
        if isinstance(value, str) and len(value) > cls.MAX_STATE_CHARS:
            return value[: cls.MAX_STATE_CHARS] + (
                f"... ({len(value)} chars, truncated)"
            )
        return value


class WalkError(ReproError):
    """A walk record or walk specification is invalid."""


class SchedulingError(ReproError):
    """The subgraph scheduler reached an inconsistent state."""
