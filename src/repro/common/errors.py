"""Exception hierarchy for the FlashWalker reproduction.

Every error raised deliberately by the library derives from
:class:`ReproError` so applications can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class GraphError(ReproError):
    """A graph is malformed or an operation on it is invalid."""


class PartitionError(GraphError):
    """Graph partitioning failed or produced inconsistent blocks."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class FlashError(ReproError):
    """An SSD-model operation was invalid (bad address, bad state...)."""


class FlashAddressError(FlashError):
    """A physical or logical flash address is out of range."""


class FaultError(FlashError):
    """An injected hardware fault could not be handled."""


class FaultExhaustedError(FaultError):
    """A bounded retry loop ran dry without the operation succeeding.

    Raised by the NAND read-retry ladder and the channel CRC retransmit
    loop when ``recover=False``; with recovery enabled the SSD model
    escalates instead (bad-block remap / link reset) so campaigns keep
    every walk.  ``at`` carries the simulation time when the final
    attempt failed, so callers can keep charging the wasted latency.
    """

    def __init__(self, message: str, at: float = 0.0):
        super().__init__(message)
        self.at = at


class BufferOverflowError(ReproError):
    """A hardware buffer exceeded capacity where overflow is not allowed.

    Note most FlashWalker buffers handle overflow by *flushing to flash*
    (modeled explicitly); this error only fires when a model invariant is
    violated, i.e. a bug, not a workload condition.
    """


class WalkError(ReproError):
    """A walk record or walk specification is invalid."""


class SchedulingError(ReproError):
    """The subgraph scheduler reached an inconsistent state."""
