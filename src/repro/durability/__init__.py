"""Crash consistency and data integrity for FlashWalker campaigns.

Three cooperating mechanisms, all strictly opt-in via
:class:`~repro.common.config.DurabilityConfig`:

* **Write-ahead walk journal** (:mod:`.journal`) — append-only records
  of walk-progress deltas between quiescent checkpoints, group-committed
  to flash on a fixed cadence.  Recovery replays from the latest
  checkpoint; the journal bounds the measured RPO (walks whose
  completion records were not yet durable) and its replay cost feeds the
  RTO estimate.
* **End-to-end integrity** (:mod:`.integrity`) — per-page checksums
  catch silent corruption that passes the ECC path; detected pages are
  reconstructed from the channel-level RAIN parity group (surviving
  sibling chips), repeat offenders are quarantined through the FTL's
  bad-block machinery, and a background scrub pass patrols planes using
  the same chip/channel bandwidth as foreground work.
* **Kill-and-restart harness** (:mod:`.harness`) — crashes the engine at
  seeded points via ``FlashWalker.schedule_power_loss`` and asserts the
  recovered run's report matches the uninterrupted baseline outside the
  documented ``durability`` section.

``python -m repro.durability`` runs the harness from the command line
(the CI crash-loop soak job).  :mod:`.harness` and :mod:`.cli` import
the core engine, so they are *not* imported here — the core engine
imports this package's leaf modules without cycles.
"""

from .integrity import IntegrityTracker
from .journal import JournalRecord, WalkJournal

__all__ = ["IntegrityTracker", "JournalRecord", "WalkJournal"]
