"""End-to-end data integrity: silent corruption, RAIN repair, scrubbing.

The NAND fault model (PR 1) covers errors the ECC path *sees*; this
module covers the ones it doesn't.  A seeded Poisson process marks
random planes as silently corrupted — their pages decode cleanly but
fail the end-to-end per-page checksum.  The check rides every
:meth:`~repro.flash.nand.FlashChip.read_page`: when a read lands on a
latent plane the corruption is detected and repaired in-line by RAIN
parity reconstruction — the same ``(die, plane)`` page is read from
every surviving sibling chip in the channel's parity group, the XOR
streams over the channel bus, and the reconstructed page is programmed
back in place.  All of that is charged to the normal chip/channel
timing paths, so repairs contend with foreground traffic exactly like
the paper's own write-back machinery.

A plane whose repair count reaches ``quarantine_threshold`` has its
active block retired through the FTL (and the board's query caches
invalidated for the chip's blocks) via the engine's quarantine hook.
Background scrubbing walks a round-robin plane cursor on a fixed
cadence, reading pages through the same bandwidth-contended path so
latent corruption is found before foreground reads trip over it.
"""

from __future__ import annotations

from ..common.errors import DataIntegrityError

__all__ = ["IntegrityTracker"]

#: Name of the RNG stream corruption arrivals draw from (registered in
#: the engine's registry so checkpoints capture and restore it).
RNG_STREAM = "durability"


class IntegrityTracker:
    """Per-run integrity state: latent corruption, repairs, scrub cursor."""

    def __init__(self, cfg, ssd, metrics, rngs):
        self.cfg = cfg
        self.ssd = ssd
        self.metrics = metrics
        self._rngs = rngs
        #: Planes carrying undetected corruption, keyed (flat_chip, die, plane).
        self.latent: set[tuple[int, int, int]] = set()
        self.injected = 0
        self.detected = 0
        self.repaired = 0
        self.unrepairable = 0
        self.scrub_detected = 0
        self.quarantined = 0
        self.repairs_by_plane: dict[tuple[int, int, int], int] = {}
        self.scrub_cursor = 0
        self.scrub_passes = 0
        self.scrub_pages_read = 0
        self._in_repair = False
        self._in_scrub = False
        #: Engine hook: ``on_quarantine(flat_chip, die, plane)``.
        self.on_quarantine = None
        #: Optional :class:`~repro.obs.MetricsRegistry`; detection and
        #: repair events record into it (None = no telemetry).
        self.telemetry = None

    @property
    def rng(self):
        """Corruption-arrival stream, fetched lazily from the registry.

        The registry rebuilds its generators on checkpoint restore, so
        holding a direct reference would go stale; ``None`` when the
        corruption process is disabled (no stream registered, no draws).
        """
        if self.cfg.silent_corruption_rate <= 0:
            return None
        return self._rngs.stream(RNG_STREAM)

    # -- geometry -------------------------------------------------------------

    def _decode_plane(self, idx: int) -> tuple[int, int, int]:
        c = self.ssd.cfg
        per_chip = c.dies_per_chip * c.planes_per_die
        rem = idx % per_chip
        return (idx // per_chip, rem // c.planes_per_die, rem % c.planes_per_die)

    def _total_planes(self) -> int:
        c = self.ssd.cfg
        return c.total_chips * c.dies_per_chip * c.planes_per_die

    # -- corruption injection -------------------------------------------------

    def inject(self, t: float) -> tuple[int, int, int] | None:
        """Silently corrupt a uniformly random plane (Poisson arrival)."""
        rng = self.rng
        if rng is None:
            return None
        key = self._decode_plane(int(rng.integers(self._total_planes())))
        self.latent.add(key)
        self.injected += 1
        return key

    # -- detection + RAIN repair ----------------------------------------------

    def on_read(self, chip, die: int, plane: int, end: float) -> float:
        """End-to-end checksum check after a page read; repairs in-line.

        Called by :meth:`FlashChip.read_page` with the read's completion
        time; returns the (possibly later) time the verified page is
        available.  Reads issued by a repair itself skip the check —
        the reconstruction path verifies by construction.
        """
        if self._in_repair:
            return end
        key = (chip.chip_id, die, plane)
        if key not in self.latent:
            return end
        self.latent.discard(key)
        if self._in_scrub:
            self.scrub_detected += 1
        else:
            self.detected += 1
        mx = self.telemetry
        if mx is not None:
            mx.counter(
                "durability_corruption_detected",
                path="scrub" if self._in_scrub else "read",
            ).inc(1.0, end)
        return self._repair(chip, die, plane, end)

    def _repair(self, chip, die: int, plane: int, t: float) -> float:
        """Reconstruct one page from the channel's RAIN parity group."""
        ssd = self.ssd
        cpc = ssd.cfg.chips_per_channel
        ch = ssd.channel(chip.chip_id // cpc)
        fm = ssd.fault_model
        page_bytes = ssd.cfg.page_bytes
        survivors = 0
        end = t
        self._in_repair = True
        try:
            for sib in ch.chips:
                if sib is chip:
                    continue
                if fm is not None and fm.is_failed(sib.chip_id):
                    continue
                end = max(end, sib.read_page(t, die, plane))
                survivors += 1
            if survivors == 0:
                self.unrepairable += 1
                raise DataIntegrityError(
                    f"chip {chip.chip_id} die {die} plane {plane}: silent "
                    "corruption detected but no surviving parity-group "
                    "sibling to reconstruct from",
                    at=t, chip=chip.chip_id, die=die, plane=plane,
                )
            # XOR streams over the channel bus, then the reconstructed
            # page is programmed back in place.
            end = ch.transfer_data(end, survivors * page_bytes)
            end = chip.program_page(end, die, plane)
        finally:
            self._in_repair = False
        m = self.metrics
        if m is not None:
            m.record_flash_read(t, survivors * page_bytes, end)
            m.record_channel(t, survivors * page_bytes, end)
            m.record_flash_write(t, page_bytes, end)
        self.repaired += 1
        mx = self.telemetry
        if mx is not None:
            mx.counter("durability_corruption_repaired").inc(1.0, end)
        key = (chip.chip_id, die, plane)
        n = self.repairs_by_plane.get(key, 0) + 1
        if n >= self.cfg.quarantine_threshold:
            self.repairs_by_plane.pop(key, None)
            self.quarantined += 1
            cb = self.on_quarantine
            if cb is not None:
                cb(chip.chip_id, die, plane)
        else:
            self.repairs_by_plane[key] = n
        return end

    # -- background scrubbing -------------------------------------------------

    def scrub_pass(self, t: float) -> float:
        """Verify the next ``scrub_planes_per_pass`` planes at the cursor.

        Each page read goes through the normal chip dispatcher and
        channel bus, so scrubbing competes with foreground traffic for
        bandwidth; latent corruption found here repairs via the same
        RAIN path as a foreground detection.
        """
        ssd = self.ssd
        c = ssd.cfg
        total = self._total_planes()
        fm = ssd.fault_model
        end = t
        scanned = 0
        attempts = 0
        while scanned < self.cfg.scrub_planes_per_pass and attempts < total:
            idx = self.scrub_cursor % total
            self.scrub_cursor += 1
            attempts += 1
            flat, die, plane = self._decode_plane(idx)
            if fm is not None and fm.is_failed(flat):
                continue
            chip = ssd.chip_flat(flat)
            # The read's integrity hook attributes any hit to
            # ``scrub_detected`` (and repairs it in-line) while this
            # flag is up.
            self._in_scrub = True
            try:
                r_end = chip.read_page(t, die, plane)
            finally:
                self._in_scrub = False
            ch = ssd.channel(flat // c.chips_per_channel)
            r_end = ch.transfer_data(r_end, c.page_bytes)
            dftl = getattr(ssd, "dftl", None)
            if dftl is not None and dftl.log_span > 0:
                # Verifying a scanned page means cross-checking its
                # recorded checksum against the mapping metadata, so a
                # DFTL device pays one translation probe per scanned
                # plane (deterministic lpn choice off the scan index).
                lpn = dftl.log_base + (idx % dftl.log_span)
                r_end = ssd.dftl_probe(r_end, flat, (lpn,))
            m = self.metrics
            if m is not None:
                m.record_flash_read(t, c.page_bytes, r_end)
                m.record_channel(t, c.page_bytes, r_end)
            end = max(end, r_end)
            scanned += 1
            self.scrub_pages_read += 1
        self.scrub_passes += 1
        return end

    # -- checkpoint/restore ---------------------------------------------------

    def state(self) -> dict:
        return {
            "latent": sorted(self.latent),
            "injected": self.injected,
            "detected": self.detected,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
            "scrub_detected": self.scrub_detected,
            "quarantined": self.quarantined,
            "repairs_by_plane": sorted(
                (list(k), v) for k, v in self.repairs_by_plane.items()
            ),
            "scrub_cursor": self.scrub_cursor,
            "scrub_passes": self.scrub_passes,
            "scrub_pages_read": self.scrub_pages_read,
        }

    def restore(self, state: dict) -> None:
        self.latent = {tuple(k) for k in state["latent"]}
        self.injected = state["injected"]
        self.detected = state["detected"]
        self.repaired = state["repaired"]
        self.unrepairable = state["unrepairable"]
        self.scrub_detected = state["scrub_detected"]
        self.quarantined = state["quarantined"]
        self.repairs_by_plane = {
            tuple(k): v for k, v in state["repairs_by_plane"]
        }
        self.scrub_cursor = state["scrub_cursor"]
        self.scrub_passes = state["scrub_passes"]
        self.scrub_pages_read = state["scrub_pages_read"]

    def stats(self) -> dict:
        """Replay-invariant counters for the report's durability section."""
        return {
            "injected": self.injected,
            "detected": self.detected,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
            "scrub_detected": self.scrub_detected,
            "quarantined": self.quarantined,
            "scrub_passes": self.scrub_passes,
            "scrub_pages_read": self.scrub_pages_read,
            "latent_remaining": len(self.latent),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntegrityTracker(latent={len(self.latent)}, "
            f"detected={self.detected}, repaired={self.repaired})"
        )
