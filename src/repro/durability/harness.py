"""Kill-and-restart crash harness.

Runs one workload uninterrupted to get a reference report, then crashes
fresh engines at seeded points spread over the run and recovers each,
asserting the recovered run's report matches the reference *everywhere
outside the documented* ``durability`` *section*.  A crash before the
first checkpoint exercises the cold-restart path (re-run from scratch)
instead.

Not imported by :mod:`repro.durability`'s package ``__init__`` — the
harness pulls in the engine and report machinery, which the journal and
integrity primitives must not depend on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..common.config import DurabilityConfig, FaultConfig, FlashWalkerConfig
from ..common.errors import PowerLossError
from ..common.rng import RngRegistry, derive_seed
from ..obs.report import diff_reports
from ..walks.spec import WalkSpec

__all__ = [
    "CampaignResult",
    "CrashPointOutcome",
    "run_crash_campaign",
    "standard_campaigns",
    "strip_durability",
]


def strip_durability(report: dict) -> dict:
    """The report minus its ``durability`` section — the identity domain."""
    return {k: v for k, v in report.items() if k != "durability"}


def _canonical(report: dict) -> str:
    return json.dumps(strip_durability(report), sort_keys=True)


@dataclass
class CrashPointOutcome:
    """What happened at one scheduled crash point."""

    index: int
    t_crash: float
    #: ``recovered`` (checkpoint + replay), ``cold_restart`` (crash
    #: before the first checkpoint; re-run from scratch), or
    #: ``no_crash`` (the point landed past the end of the run).
    mode: str
    identical: bool
    #: Non-durability report fields that differ from the baseline
    #: (must be empty for the campaign to pass).
    diff: dict = field(default_factory=dict)
    #: The recovery's RPO/RTO accounting (``recovered`` mode only).
    recovery: dict | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "t_crash": self.t_crash,
            "mode": self.mode,
            "identical": self.identical,
            "diff": self.diff,
            "recovery": self.recovery,
        }


@dataclass
class CampaignResult:
    """One configuration's crash campaign: baseline + every crash point."""

    name: str
    baseline_report: dict
    points: list[CrashPointOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.identical for p in self.points)

    def summary(self) -> dict:
        modes: dict[str, int] = {}
        for p in self.points:
            modes[p.mode] = modes.get(p.mode, 0) + 1
        rpo = [p.recovery["rpo_walks"] for p in self.points if p.recovery]
        rto = [p.recovery["rto_time"] for p in self.points if p.recovery]
        return {
            "name": self.name,
            "points": len(self.points),
            "modes": modes,
            "identical": sum(1 for p in self.points if p.identical),
            "ok": self.ok,
            "rpo_walks_max": max(rpo) if rpo else 0,
            "rpo_walks_mean": float(np.mean(rpo)) if rpo else 0.0,
            "rto_time_max": max(rto) if rto else 0.0,
            "rto_time_mean": float(np.mean(rto)) if rto else 0.0,
        }

    def to_dict(self) -> dict:
        return {
            "summary": self.summary(),
            "points": [p.to_dict() for p in self.points],
        }


def run_crash_campaign(
    make_engine,
    run_workload,
    *,
    crash_points: int = 7,
    seed: int = 0,
    name: str = "default",
    frac_lo: float = 0.05,
    frac_hi: float = 0.95,
) -> CampaignResult:
    """Crash ``crash_points`` fresh engines at seeded times and recover each.

    ``make_engine()`` builds a fresh :class:`FlashWalker` (durability
    enabled); ``run_workload(fw)`` drives it to completion and returns
    its :class:`~repro.core.metrics.RunResult`.  Crash times are drawn
    uniformly over ``[frac_lo, frac_hi]`` of the uninterrupted run's
    elapsed time from a generator derived from ``seed`` and ``name``,
    so campaigns are reproducible point-for-point.
    """
    baseline = run_workload(make_engine())
    baseline_report = baseline.to_report()
    canon = _canonical(baseline_report)
    rng = np.random.default_rng(derive_seed(seed, f"crash-campaign:{name}"))
    times = np.sort(
        rng.uniform(frac_lo * baseline.elapsed, frac_hi * baseline.elapsed,
                    size=crash_points)
    )
    out = CampaignResult(name=name, baseline_report=baseline_report)
    for i, t_crash in enumerate(times.tolist()):
        fw = make_engine()
        fw.schedule_power_loss(t_crash)
        try:
            result = run_workload(fw)
            mode, recovery = "no_crash", None
        except PowerLossError:
            if fw.latest_checkpoint is None:
                # Crashed before anything was durable: cold restart.
                result = run_workload(make_engine())
                mode, recovery = "cold_restart", None
            else:
                result = fw.recover()
                mode = "recovered"
                recovery = (result.durability or {}).get("recovery")
        report = result.to_report()
        identical = _canonical(report) == canon
        out.points.append(
            CrashPointOutcome(
                index=i,
                t_crash=float(t_crash),
                mode=mode,
                identical=identical,
                diff={} if identical else diff_reports(
                    strip_durability(baseline_report), strip_durability(report)
                ),
                recovery=recovery,
            )
        )
    return out


# --------------------------------------------------------- standard configs


def _dur(journal: float, corruption: float, scrub: float) -> DurabilityConfig:
    return DurabilityConfig(
        enabled=True,
        journal_interval=journal,
        silent_corruption_rate=corruption,
        scrub_interval=scrub,
        checkpoint_keep_last=3,
    )


def standard_campaigns(*, quick: bool = False) -> list[dict]:
    """The harness's built-in configurations (CLI ``--configs`` pool).

    Each entry carries a ``name``, a ``make_engine`` factory and a
    ``run_workload`` driver.  The pool spans the durability feature
    matrix: journal-only, journal + silent corruption + scrubbing, and
    checkpoint-only recovery (no journal) under read faults.
    """
    from ..core.flashwalker import FlashWalker
    from ..graph.generators import rmat

    scale = 10 if quick else 11
    walks = 600 if quick else 1200

    def make(name: str, dcfg: DurabilityConfig, fcfg: FaultConfig):
        def make_engine():
            g = rmat(scale, 8, RngRegistry(55).fresh("g"))
            cfg = FlashWalkerConfig(
                partition_subgraphs=4,
                board_hot_subgraphs=1,
                channel_hot_subgraphs=0,
                durability=dcfg,
                faults=fcfg,
            )
            return FlashWalker(g, cfg, seed=9)

        def run_workload(fw):
            return fw.run(walks, WalkSpec(length=5))

        return {"name": name, "make_engine": make_engine,
                "run_workload": run_workload}

    ck = FaultConfig(checkpoint_interval=50e-6)
    return [
        make("journal", _dur(25e-6, 0.0, 0.0), ck),
        make("journal+scrub", _dur(25e-6, 1500.0, 100e-6), ck),
        make(
            "checkpoint-only+faults",
            _dur(0.0, 0.0, 0.0),
            FaultConfig(
                enabled=True, page_error_rate=0.05, checkpoint_interval=50e-6
            ),
        ),
    ]
