"""Durability CLI: seeded kill-and-restart crash campaigns.

::

    python -m repro.durability --quick --seed 3 --crash-points 7 --configs 3
    python -m repro.durability --crash-points 10 --out durability_report.json

Runs each selected configuration's workload once uninterrupted, then
crashes it at ``--crash-points`` seeded times and recovers each crash,
checking the recovered run's report is identical to the uninterrupted
baseline outside the documented ``durability`` section.  Exit status:
0 when every point reproduced the baseline, 1 on any identity failure,
2 when recovery itself found corrupted state (journal verification or
auditor violations) — which is what the CI crash-loop soak job gates
on.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.durability",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=3,
                        help="campaign seed (crash-time draws; default: 3)")
    parser.add_argument("--crash-points", type=int, default=7,
                        help="seeded crash points per configuration "
                             "(default: 7)")
    parser.add_argument("--configs", type=int, default=3,
                        help="how many standard configurations to run "
                             "(default: all 3)")
    parser.add_argument("--quick", action="store_true",
                        help="scale the workload down (CI-sized run)")
    parser.add_argument("--out", default=None,
                        help="write the campaign report JSON here")
    args = parser.parse_args(argv)

    # Imports deferred so --help works in stripped environments.
    from ..common.errors import InvariantViolation
    from .harness import run_crash_campaign, standard_campaigns

    pool = standard_campaigns(quick=args.quick)[: max(1, args.configs)]
    campaigns = []
    try:
        for spec in pool:
            campaigns.append(
                run_crash_campaign(
                    spec["make_engine"],
                    spec["run_workload"],
                    crash_points=args.crash_points,
                    seed=args.seed,
                    name=spec["name"],
                )
            )
            s = campaigns[-1].summary()
            print(
                f"{s['name']}: {s['points']} crash points "
                f"({s['modes']}) -> {s['identical']} identical, "
                f"rpo_max={s['rpo_walks_max']} walks, "
                f"rto_max={s['rto_time_max'] * 1e3:.3f}ms "
                f"[{'OK' if s['ok'] else 'FAIL'}]"
            )
    except InvariantViolation as e:
        print(f"recovery found corrupted state: {e}", file=sys.stderr)
        for v in getattr(e, "violations", []) or []:
            print(f"  - {v}", file=sys.stderr)
        return 2

    ok = all(c.ok for c in campaigns)
    if args.out:
        payload = {
            "seed": args.seed,
            "crash_points": args.crash_points,
            "quick": args.quick,
            "ok": ok,
            "campaigns": [c.to_dict() for c in campaigns],
        }
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote report to {args.out}")
    if not ok:
        for c in campaigns:
            for p in c.points:
                if not p.identical:
                    print(
                        f"IDENTITY FAIL {c.name} point {p.index} "
                        f"(t={p.t_crash:.6g}, {p.mode}): {p.diff}",
                        file=sys.stderr,
                    )
        return 1
    total = sum(len(c.points) for c in campaigns)
    print(f"all {total} crash points across {len(campaigns)} "
          f"configuration(s) reproduced their baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
