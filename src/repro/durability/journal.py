"""Write-ahead walk journal: walk-progress deltas between checkpoints.

Quiescent checkpoints (:mod:`repro.faults.checkpoint`) are the recovery
baseline; the journal fills the gap between them.  Every completion
event appends one fixed-size record ``(seq, t, delta, cum, crc)`` to an
in-memory tail, and a group-commit event flushes the tail to flash on a
fixed cadence (``DurabilityConfig.journal_interval``), paying normal
channel/NAND write cost.  On a crash, records that reached flash are
*durable*: the recovery context reports RPO as the completed walks
beyond the last durable record, and charges the durable records' re-read
as journal replay time in the RTO estimate.

Records carry a CRC over their packed fields so recovery can verify the
journal before trusting it — a deliberately dropped or corrupted record
shows up as a sequence gap, a cumulative-count mismatch, or a CRC
failure from :meth:`WalkJournal.verify` (the auditor raises on any).
"""

from __future__ import annotations

import struct
import zlib
from typing import NamedTuple

__all__ = ["JournalRecord", "WalkJournal"]

#: Packed payload layout: sequence number, simulated time, walks
#: completed by this record, cumulative completed walks.
_PAYLOAD = struct.Struct("<qdqq")


def _crc(seq: int, t: float, delta: int, cum: int) -> int:
    return zlib.crc32(_PAYLOAD.pack(seq, t, delta, cum)) & 0xFFFFFFFF


class JournalRecord(NamedTuple):
    """One walk-progress delta, checksummed."""

    seq: int
    t: float
    delta: int
    cum: int
    crc: int

    def intact(self) -> bool:
        return self.crc == _crc(self.seq, self.t, self.delta, self.cum)


class WalkJournal:
    """Append-only journal of walk completions since the last checkpoint.

    Two segments: ``pending`` records sit in controller SRAM awaiting the
    next group commit (lost on power loss), ``durable`` records have been
    flushed to flash (survive).  A checkpoint truncates both — the
    snapshot itself supersedes them — and resets the base cumulative
    count.  All counters advance deterministically with the event
    stream, so a replayed run reproduces them exactly.
    """

    def __init__(self, record_bytes: int = 32):
        self.record_bytes = int(record_bytes)
        self.base_cum = 0
        self._next_seq = 0
        self._pending: list[JournalRecord] = []
        self._durable: list[JournalRecord] = []
        self.appends = 0
        self.flushes = 0
        self.records_flushed = 0
        self.bytes_flushed = 0
        self.pages_flushed = 0
        self.last_flush_at = 0.0

    # -- writing --------------------------------------------------------------

    def append(self, t: float, delta: int, cum: int) -> JournalRecord:
        """Record ``delta`` walks completing at ``t`` (cumulative ``cum``)."""
        rec = JournalRecord(
            self._next_seq, float(t), int(delta), int(cum),
            _crc(self._next_seq, float(t), int(delta), int(cum)),
        )
        self._next_seq += 1
        self._pending.append(rec)
        self.appends += 1
        return rec

    @property
    def pending_records(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return len(self._pending) * self.record_bytes

    def mark_flushed(self, t: float, pages: int = 0) -> int:
        """Group commit: every pending record becomes durable at ``t``.

        ``pages`` is the flash-page count the commit occupied (reported
        by the engine's flush path) — the journal's share of the
        device's write-amplification denominator.
        """
        n = len(self._pending)
        self._durable.extend(self._pending)
        self._pending.clear()
        self.flushes += 1
        self.records_flushed += n
        self.bytes_flushed += n * self.record_bytes
        self.pages_flushed += int(pages)
        self.last_flush_at = float(t)
        return n

    def on_checkpoint(self, cum: int) -> None:
        """Truncate at a quiescent checkpoint (the snapshot supersedes us)."""
        self.base_cum = int(cum)
        self._pending.clear()
        self._durable.clear()

    # -- recovery -------------------------------------------------------------

    def durable_cum(self) -> int:
        """Cumulative completed walks covered by durable state."""
        return self._durable[-1].cum if self._durable else self.base_cum

    def durable_records(self) -> int:
        return len(self._durable)

    def verify(self) -> list[str]:
        """Integrity-check the journal; returns violation strings (empty = ok)."""
        out: list[str] = []
        prev_cum = self.base_cum
        prev_seq: int | None = None
        for rec in (*self._durable, *self._pending):
            if not rec.intact():
                out.append(f"journal record seq={rec.seq}: CRC mismatch")
            if prev_seq is not None and rec.seq != prev_seq + 1:
                out.append(f"journal sequence gap: {prev_seq} -> {rec.seq}")
            prev_seq = rec.seq
            if rec.cum != prev_cum + rec.delta:
                out.append(
                    f"journal record seq={rec.seq}: cumulative count "
                    f"{rec.cum} != {prev_cum} + {rec.delta}"
                )
            prev_cum = rec.cum
        return out

    # -- checkpoint/restore ---------------------------------------------------

    def state(self) -> dict:
        return {
            "record_bytes": self.record_bytes,
            "base_cum": self.base_cum,
            "next_seq": self._next_seq,
            "pending": [tuple(r) for r in self._pending],
            "durable": [tuple(r) for r in self._durable],
            "appends": self.appends,
            "flushes": self.flushes,
            "records_flushed": self.records_flushed,
            "bytes_flushed": self.bytes_flushed,
            "pages_flushed": self.pages_flushed,
            "last_flush_at": self.last_flush_at,
        }

    def restore(self, state: dict) -> None:
        self.record_bytes = state["record_bytes"]
        self.base_cum = state["base_cum"]
        self._next_seq = state["next_seq"]
        self._pending = [JournalRecord(*r) for r in state["pending"]]
        self._durable = [JournalRecord(*r) for r in state["durable"]]
        self.appends = state["appends"]
        self.flushes = state["flushes"]
        self.records_flushed = state["records_flushed"]
        self.bytes_flushed = state["bytes_flushed"]
        self.pages_flushed = int(state.get("pages_flushed", 0))
        self.last_flush_at = state["last_flush_at"]

    def stats(self) -> dict:
        """Replay-invariant counters for the report's durability section."""
        return {
            "record_bytes": self.record_bytes,
            "appends": self.appends,
            "flushes": self.flushes,
            "records_flushed": self.records_flushed,
            "bytes_flushed": self.bytes_flushed,
            "pages_flushed": self.pages_flushed,
            "last_flush_at": self.last_flush_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WalkJournal(base={self.base_cum}, durable={len(self._durable)}, "
            f"pending={len(self._pending)})"
        )
