"""Experiment drivers that regenerate every table and figure of the paper."""

from . import fig1, fig5, fig6, fig7, fig8, fig9, motivation, tables
from .harness import ExperimentContext, format_table, full_scale

__all__ = [
    "fig1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "motivation",
    "tables",
    "ExperimentContext",
    "format_table",
    "full_scale",
]
