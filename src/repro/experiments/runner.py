"""Command-line runner: regenerate any table or figure.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig5 fig9  # selected experiments
    python -m repro.experiments.runner fig5 --jobs 4
    REPRO_FULL=1 python -m repro.experiments.runner fig8

Quick mode (the default when ``REPRO_FULL`` is unset) shrinks graphs and
walk counts; full mode runs the paper-scaled defaults.

``--jobs N`` fans campaign-style experiments (fig5/fig7/fig9) across N
worker processes via :mod:`repro.parallel`; experiments that don't take
a ``jobs`` parameter simply run serially.  ``--report-dir`` writes one
:mod:`repro.obs.report` JSON per campaign point, named after the point
key, which the CI equivalence gate diffs against a serial run.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from . import fig1, fig5, fig6, fig7, fig8, fig9, motivation, tables

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "tables": tables.main,
    "fig1": fig1.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "motivation": motivation.main,
}


def _call(fn, jobs: int, report_dir: str | None):
    """Invoke an experiment main, passing only the kwargs it accepts."""
    params = inspect.signature(fn).parameters
    kwargs = {}
    if "jobs" in params:
        kwargs["jobs"] = jobs
    if "report_dir" in params:
        kwargs["report_dir"] = report_dir
    return fn(**kwargs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the FlashWalker paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, "all"],
        default=["all"],
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for campaign experiments (default: 1 = serial)",
    )
    parser.add_argument(
        "--report-dir",
        default=None,
        help="write per-point run reports here (campaign experiments only)",
    )
    args = parser.parse_args(argv)
    chosen = args.experiments
    if not chosen or "all" in chosen:
        chosen = list(EXPERIMENTS)
    for name in chosen:
        t0 = time.time()
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        print(_call(EXPERIMENTS[name], args.jobs, args.report_dir))
        print(f"\n[{name} finished in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
