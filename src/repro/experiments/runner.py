"""Command-line runner: regenerate any table or figure.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig5 fig9  # selected experiments
    REPRO_FULL=1 python -m repro.experiments.runner fig8

Quick mode (the default when ``REPRO_FULL`` is unset) shrinks graphs and
walk counts; full mode runs the paper-scaled defaults.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import fig1, fig5, fig6, fig7, fig8, fig9, motivation, tables

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "tables": tables.main,
    "fig1": fig1.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "motivation": motivation.main,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the FlashWalker paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, "all"],
        default=["all"],
        help="which experiments to run (default: all)",
    )
    args = parser.parse_args(argv)
    chosen = args.experiments
    if not chosen or "all" in chosen:
        chosen = list(EXPERIMENTS)
    for name in chosen:
        t0 = time.time()
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        print(EXPERIMENTS[name]())
        print(f"\n[{name} finished in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
