"""Figure 5: FlashWalker speedup over GraphWalker vs number of walks.

The paper sweeps walk counts per dataset (default 4x10^8; 10^9 for
ClueWeb) and reports 4.79-660.5x speedup, 51.56x average, with larger
graphs gaining more.  We sweep fractions of the scaled default count.

Expected shapes: speedup > 1 everywhere; speedup grows (or saturates)
with walk count; larger graphs (CW, R8B) sit at or above the smaller
in-memory-friendly ones at the default point.

The sweep is a campaign of independent (dataset, fraction) points, so
``run(..., jobs=N)`` fans it across a process pool (see
:mod:`repro.parallel.campaign`); jobs=1 runs the same points in-process
with bit-identical results.
"""

from __future__ import annotations

import numpy as np

from ..parallel.campaign import CampaignPoint, point_runner, run_campaign
from .harness import ExperimentContext, format_table

__all__ = ["run", "main", "points", "run_point", "DEFAULT_FRACTIONS"]

#: Walk-count sweep as fractions of each dataset's scaled default.
DEFAULT_FRACTIONS = (0.0625, 0.25, 1.0)


def points(
    ctx: ExperimentContext,
    datasets: list[str] | None = None,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
) -> list[CampaignPoint]:
    return [
        CampaignPoint.make("fig5", name, frac=float(frac))
        for name in (datasets or ctx.datasets)
        for frac in fractions
    ]


@point_runner("fig5")
def run_point(ctx: ExperimentContext, point: CampaignPoint):
    name = point.dataset
    frac = point.param("frac")
    seed_offset = int(point.param("seed_offset", 0))
    n = max(256, int(ctx.default_walks(name) * frac))
    fw = ctx.run_flashwalker(name, num_walks=n, seed_offset=seed_offset)
    gw = ctx.run_graphwalker(name, num_walks=n, seed_offset=seed_offset)
    row = {
        "dataset": name,
        "walks": n,
        "fw_ms": fw.elapsed * 1e3,
        "gw_ms": gw.elapsed * 1e3,
        "speedup": gw.elapsed / fw.elapsed,
    }
    report = fw.to_report(
        extra={"point": point.key, "gw_elapsed": gw.elapsed, "walks": n}
    )
    return row, report


def run(
    ctx: ExperimentContext,
    datasets: list[str] | None = None,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    jobs: int = 1,
    report_dir: str | None = None,
) -> list[dict]:
    res = run_campaign(
        points(ctx, datasets, fractions),
        context=ctx,
        jobs=jobs,
        report_dir=report_dir,
    )
    return res.rows


def summary(rows: list[dict]) -> dict:
    sp = np.array([r["speedup"] for r in rows])
    return {
        "min_speedup": float(sp.min()),
        "max_speedup": float(sp.max()),
        "mean_speedup": float(sp.mean()),
        "all_above_one": bool((sp > 1.0).all()),
    }


def main(jobs: int = 1, report_dir: str | None = None) -> str:
    ctx = ExperimentContext()
    rows = run(ctx, jobs=jobs, report_dir=report_dir)
    s = summary(rows)
    return (
        "Figure 5: FlashWalker speedup over GraphWalker vs #walks\n"
        + format_table(rows)
        + f"\n\nspeedup range {s['min_speedup']:.2f}x - {s['max_speedup']:.2f}x, "
        f"mean {s['mean_speedup']:.2f}x "
        "(paper: 4.79x - 660.5x, mean 51.56x at testbed scale)"
    )


if __name__ == "__main__":
    print(main())
