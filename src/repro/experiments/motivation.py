"""Motivation study (Section II-B): iteration-sync vs async vs in-storage.

Not a numbered figure, but the paper's Section II-B argument in data:
DrunkardMob's iteration-wise synchronization wastes I/O, GraphWalker's
asynchronous updating recovers much of it, and FlashWalker removes the
host data path entirely.  Also reports the activity-based energy
estimates (the paper claims low power overhead but does not quantify;
see repro.core.energy).
"""

from __future__ import annotations

from ..core import EnergyModel
from .harness import ExperimentContext, format_table

__all__ = ["run", "main"]


def run(ctx: ExperimentContext, datasets: list[str] | None = None) -> list[dict]:
    rows = []
    model = EnergyModel()
    for name in datasets or ctx.datasets:
        n = max(256, ctx.default_walks(name) // 4)  # DrunkardMob is slow
        dm = ctx.run_drunkardmob(name, num_walks=n)
        gw = ctx.run_graphwalker(name, num_walks=n)
        fw = ctx.run_flashwalker(name, num_walks=n)
        area = 14.31 + 32 * 1.84 + 128 * 1.30  # Table II totals
        e_fw = model.estimate(fw, accel_area_mm2=area)
        e_gw = model.estimate_graphwalker(gw)
        e_dm = model.estimate_graphwalker(dm)
        rows.append(
            {
                "dataset": name,
                "walks": n,
                "drunkardmob_ms": dm.elapsed * 1e3,
                "graphwalker_ms": gw.elapsed * 1e3,
                "flashwalker_ms": fw.elapsed * 1e3,
                "async_speedup": dm.elapsed / gw.elapsed,
                "instorage_speedup": gw.elapsed / fw.elapsed,
                "fw_energy_mJ": e_fw.total * 1e3,
                "gw_energy_mJ": e_gw.total * 1e3,
                "dm_energy_mJ": e_dm.total * 1e3,
            }
        )
    return rows


def main() -> str:
    ctx = ExperimentContext()
    rows = run(ctx)
    out = (
        "Motivation (Section II-B): iteration-sync -> async -> in-storage\n"
        + format_table(rows)
    )
    ok = all(
        r["drunkardmob_ms"] >= r["graphwalker_ms"] >= r["flashwalker_ms"]
        for r in rows
    )
    out += f"\n\nmonotone improvement across all datasets: {ok}"
    return out


if __name__ == "__main__":
    print(main())
