"""Figure 6: flash read-traffic reduction and bandwidth improvement.

The paper reports, averaged over all tasks, 17.21x achieved-flash-
bandwidth improvement and 3.82x read-traffic reduction (1.23x at the
default walk counts), with TT actually reading *more* under FlashWalker
(parallelism overload on a small graph) and CW reading much less
(I/O-efficient fine-grained subgraphs).

Expected shapes: bandwidth improvement >> 1 on every dataset; the
traffic ratio is lowest for TT and improves as walk counts drop
(GraphWalker's coarse blocks amortize worse over few walks).
"""

from __future__ import annotations

import numpy as np

from .harness import ExperimentContext, format_table

__all__ = ["run", "main"]


def run(
    ctx: ExperimentContext,
    datasets: list[str] | None = None,
    walk_fraction: float = 1.0,
) -> list[dict]:
    rows = []
    for name in datasets or ctx.datasets:
        n = max(256, int(ctx.default_walks(name) * walk_fraction))
        fw = ctx.run_flashwalker(name, num_walks=n)
        gw = ctx.run_graphwalker(name, num_walks=n)
        rows.append(
            {
                "dataset": name,
                "walks": n,
                "fw_read_MB": fw.flash_read_bytes / 2**20,
                "gw_read_MB": gw.disk_read_bytes / 2**20,
                "traffic_reduction": gw.disk_read_bytes / max(1, fw.flash_read_bytes),
                "fw_bw_GBps": fw.flash_read_bandwidth / 1e9,
                "gw_bw_GBps": gw.disk_read_bandwidth / 1e9,
                "bw_improvement": fw.flash_read_bandwidth
                / max(1.0, gw.disk_read_bandwidth),
            }
        )
    return rows


def summary(rows: list[dict]) -> dict:
    bw = np.array([r["bw_improvement"] for r in rows])
    tr = np.array([r["traffic_reduction"] for r in rows])
    return {
        "mean_bw_improvement": float(bw.mean()),
        "mean_traffic_reduction": float(tr.mean()),
        "tt_reads_relatively_more": bool(
            rows[0]["traffic_reduction"] <= max(r["traffic_reduction"] for r in rows)
        ),
    }


def main() -> str:
    ctx = ExperimentContext()
    rows = run(ctx)
    s = summary(rows)
    return (
        "Figure 6: flash read traffic reduction and bandwidth improvement\n"
        + format_table(rows)
        + f"\n\nmean bandwidth improvement {s['mean_bw_improvement']:.2f}x "
        "(paper avg: 17.21x); mean traffic reduction "
        f"{s['mean_traffic_reduction']:.2f}x (paper: 1.23x at default counts)"
    )


if __name__ == "__main__":
    print(main())
