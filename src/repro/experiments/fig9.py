"""Figure 9: speedup of the proposed optimizations.

Incremental toggles over the no-optimization FlashWalker baseline:

* **WQ** — approximate walk search at channel level + walk query caches;
* **HS** — hot subgraphs resident in channel/board accelerators;
* **SS** — subgraph scheduling by Eq. 1 (alpha = 0.4 here, per Section
  IV-E's channel-bus observation; beta = 1.5).

Paper values: WQ helps FS/R2B/R8B by 13.8-18.4 % but TT by only 5 %
(TT is walk-update bound); HS helps TT most (20.76 % cumulative); SS
brings the cumulative gain to 18.3-21.5 % on non-CW graphs; CW barely
moves (straggler-bound).

Runs are averaged over ``n_seeds`` because scheduling noise at this
scale is comparable to the smaller increments.
"""

from __future__ import annotations

import numpy as np

from .harness import ExperimentContext, format_table

__all__ = ["run", "main", "STAGES"]

#: (label, (walk query, hot subgraphs, subgraph scheduling))
STAGES = (
    ("none", (False, False, False)),
    ("WQ", (True, False, False)),
    ("WQ+HS", (True, True, False)),
    ("WQ+HS+SS", (True, True, True)),
)


def run(
    ctx: ExperimentContext,
    datasets: list[str] | None = None,
    n_seeds: int = 2,
) -> list[dict]:
    rows = []
    for name in datasets or ctx.datasets:
        base_elapsed = None
        for label, (wq, hs, ss) in STAGES:
            cfg = ctx.flashwalker_config(name, alpha=0.4).with_optimizations(
                wq=wq, hs=hs, ss=ss
            )
            times = [
                ctx.run_flashwalker(name, config=cfg, seed_offset=100 * s).elapsed
                for s in range(n_seeds)
            ]
            elapsed = float(np.mean(times))
            if label == "none":
                base_elapsed = elapsed
            rows.append(
                {
                    "dataset": name,
                    "config": label,
                    "ms": elapsed * 1e3,
                    "speedup_vs_none": base_elapsed / elapsed,
                }
            )
    return rows


def main() -> str:
    ctx = ExperimentContext()
    rows = run(ctx)
    out = "Figure 9: speedup of proposed optimizations (vs no-opt baseline)\n"
    out += format_table(rows)
    out += (
        "\n\npaper: WQ +5.0% (TT) / +18.4% (FS) / +16.7% (R2B) / +13.8% (R8B); "
        "HS lifts TT to +20.8%; SS totals +18.3..21.5%; CW barely moves"
    )
    return out


if __name__ == "__main__":
    print(main())
