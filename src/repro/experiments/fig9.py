"""Figure 9: speedup of the proposed optimizations.

Incremental toggles over the no-optimization FlashWalker baseline:

* **WQ** — approximate walk search at channel level + walk query caches;
* **HS** — hot subgraphs resident in channel/board accelerators;
* **SS** — subgraph scheduling by Eq. 1 (alpha = 0.4 here, per Section
  IV-E's channel-bus observation; beta = 1.5).

Paper values: WQ helps FS/R2B/R8B by 13.8-18.4 % but TT by only 5 %
(TT is walk-update bound); HS helps TT most (20.76 % cumulative); SS
brings the cumulative gain to 18.3-21.5 % on non-CW graphs; CW barely
moves (straggler-bound).

Runs are averaged over ``n_seeds`` because scheduling noise at this
scale is comparable to the smaller increments.  Each (dataset, stage,
seed replica) triple is an independent campaign point; ``run``
aggregates replicas back into per-stage means after the (possibly
parallel) campaign returns, preserving seed order.
"""

from __future__ import annotations

import numpy as np

from ..parallel.campaign import CampaignPoint, point_runner, run_campaign
from .harness import ExperimentContext, format_table

__all__ = ["run", "main", "points", "run_point", "STAGES"]

#: (label, (walk query, hot subgraphs, subgraph scheduling))
STAGES = (
    ("none", (False, False, False)),
    ("WQ", (True, False, False)),
    ("WQ+HS", (True, True, False)),
    ("WQ+HS+SS", (True, True, True)),
)


def points(
    ctx: ExperimentContext,
    datasets: list[str] | None = None,
    n_seeds: int = 2,
) -> list[CampaignPoint]:
    return [
        CampaignPoint.make("fig9", name, stage=label, rep=s)
        for name in (datasets or ctx.datasets)
        for label, _flags in STAGES
        for s in range(n_seeds)
    ]


@point_runner("fig9")
def run_point(ctx: ExperimentContext, point: CampaignPoint):
    name = point.dataset
    label = point.param("stage")
    s = int(point.param("rep"))
    wq, hs, ss = dict(STAGES)[label]
    cfg = ctx.flashwalker_config(name, alpha=0.4).with_optimizations(
        wq=wq, hs=hs, ss=ss
    )
    fw = ctx.run_flashwalker(name, config=cfg, seed_offset=100 * s)
    row = {
        "dataset": name,
        "config": label,
        "rep": s,
        "elapsed": fw.elapsed,
    }
    report = fw.to_report(extra={"point": point.key, "stage": label, "rep": s})
    return row, report


def run(
    ctx: ExperimentContext,
    datasets: list[str] | None = None,
    n_seeds: int = 2,
    jobs: int = 1,
    report_dir: str | None = None,
) -> list[dict]:
    res = run_campaign(
        points(ctx, datasets, n_seeds),
        context=ctx,
        jobs=jobs,
        report_dir=report_dir,
    )
    # aggregate seed replicas -> per-(dataset, stage) mean, in seed order
    times: dict[tuple[str, str], list[float]] = {}
    for raw in res.rows:
        times.setdefault((raw["dataset"], raw["config"]), []).append(
            raw["elapsed"]
        )
    rows = []
    for name in datasets or ctx.datasets:
        base_elapsed = None
        for label, _flags in STAGES:
            elapsed = float(np.mean(times[(name, label)]))
            if label == "none":
                base_elapsed = elapsed
            rows.append(
                {
                    "dataset": name,
                    "config": label,
                    "ms": elapsed * 1e3,
                    "speedup_vs_none": base_elapsed / elapsed,
                }
            )
    return rows


def main(jobs: int = 1, report_dir: str | None = None) -> str:
    ctx = ExperimentContext()
    rows = run(ctx, jobs=jobs, report_dir=report_dir)
    out = "Figure 9: speedup of proposed optimizations (vs no-opt baseline)\n"
    out += format_table(rows)
    out += (
        "\n\npaper: WQ +5.0% (TT) / +18.4% (FS) / +16.7% (R2B) / +13.8% (R8B); "
        "HS lifts TT to +20.8%; SS totals +18.3..21.5%; CW barely moves"
    )
    return out


if __name__ == "__main__":
    print(main())
