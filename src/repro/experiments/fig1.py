"""Figure 1: GraphWalker time-cost breakdown.

The paper shows GraphWalker on ClueWeb spending the large majority of
its time loading graph structure data — the motivating observation.  We
reproduce the breakdown on the CW analog (and report all datasets so the
contrast with in-memory-friendly TT is visible).

Expected shape: ``load_graph`` dominates (>= ~60 %) on CW; on TT the
graph fits in memory and loading is minor.
"""

from __future__ import annotations

from .harness import ExperimentContext, format_table

__all__ = ["run", "main"]


def run(ctx: ExperimentContext, datasets: list[str] | None = None) -> list[dict]:
    """One row per dataset: time fractions + absolute seconds."""
    rows = []
    for name in datasets or ctx.datasets:
        res = ctx.run_graphwalker(name)
        b = res.breakdown
        rows.append(
            {
                "dataset": name,
                "total_ms": res.elapsed * 1e3,
                "load_graph_pct": 100 * b["load_graph"],
                "update_walks_pct": 100 * b["update_walks"],
                "other_pct": 100 * b["other"],
                "block_loads": res.block_loads,
                "read_MB": res.disk_read_bytes / 2**20,
            }
        )
    return rows


def main() -> str:
    ctx = ExperimentContext()
    rows = run(ctx)
    out = "Figure 1: GraphWalker time cost breakdown\n" + format_table(rows)
    cw = next(r for r in rows if r["dataset"] == "CW")
    out += (
        f"\n\npaper shape check: CW load_graph fraction = "
        f"{cw['load_graph_pct']:.0f}% (paper: loading dominates)"
    )
    return out


if __name__ == "__main__":
    print(main())
