"""Shared experiment harness.

Builds dataset graphs once per process, instantiates engines with the
per-dataset configuration (ClueWeb's 2x subgraph size), runs workloads,
and renders rows.  Every experiment driver (fig1...fig9, tables) builds
on this.

Scale control: ``size_factor`` shrinks graphs and ``walk_factor``
shrinks walk counts relative to the paper-scaled defaults, so the same
drivers serve quick benchmarks (CI-friendly) and full runs
(``REPRO_FULL=1`` or explicit factors).  Factors only change magnitude,
never the experimental structure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..baselines import DrunkardMob, GraphWalker, GraphWalkerResult
from ..common.config import FlashWalkerConfig, GraphWalkerConfig
from ..common.rng import RngRegistry
from ..core import FlashWalker, RunResult
from ..graph import CSRGraph, dataset, dataset_names
from ..walks import WalkSpec

__all__ = ["ExperimentContext", "full_scale", "format_table"]

#: Paper-fixed walk length (Section IV-A).
WALK_LENGTH = 6


def full_scale() -> bool:
    """True when the environment asks for full (paper-scaled) runs."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


@dataclass
class ExperimentContext:
    """Graph cache + engine factory for one experiment campaign."""

    seed: int = 3
    size_factor: float = 1.0
    walk_factor: float = 1.0
    datasets: list[str] = field(default_factory=dataset_names)
    _graphs: dict[str, CSRGraph] = field(default_factory=dict, repr=False)

    @classmethod
    def quick(cls, seed: int = 3) -> "ExperimentContext":
        """Benchmark-friendly scale: ~10x faster than the default runs."""
        if full_scale():
            return cls(seed=seed)
        return cls(seed=seed, size_factor=0.5, walk_factor=0.125)

    # -- campaign parameters ---------------------------------------------------

    def campaign_params(self) -> tuple:
        """Picklable parameter tuple a worker can rebuild this context
        from (graphs rebuild deterministically from the seed, so an
        equal-params context produces bit-identical runs)."""
        return (
            self.seed,
            self.size_factor,
            self.walk_factor,
            tuple(self.datasets),
        )

    @classmethod
    def from_params(cls, params: tuple) -> "ExperimentContext":
        seed, size_factor, walk_factor, datasets = params
        return cls(
            seed=seed,
            size_factor=size_factor,
            walk_factor=walk_factor,
            datasets=list(datasets),
        )

    # -- graphs ---------------------------------------------------------------

    def graph(self, name: str) -> CSRGraph:
        g = self._graphs.get(name)
        if g is None:
            g = dataset(name).build(
                RngRegistry(self.seed).fresh(f"dataset:{name}:{self.size_factor}"),
                size_factor=self.size_factor,
            )
            self._graphs[name] = g
        return g

    def default_walks(self, name: str) -> int:
        return max(256, int(dataset(name).default_walks * self.walk_factor))

    # -- engines -------------------------------------------------------------------

    def flashwalker_config(self, name: str, **overrides) -> FlashWalkerConfig:
        spec = dataset(name)
        cfg = FlashWalkerConfig()
        # The dataset's subgraph multiplier (CW: 2x) applies unless the
        # caller overrides the subgraph size explicitly.
        overrides.setdefault(
            "subgraph_bytes", cfg.subgraph_bytes * spec.subgraph_multiplier
        )
        return cfg.replace(**overrides)

    def run_flashwalker(
        self,
        name: str,
        num_walks: int | None = None,
        config: FlashWalkerConfig | None = None,
        spec: WalkSpec | None = None,
        seed_offset: int = 0,
    ) -> RunResult:
        g = self.graph(name)
        cfg = config if config is not None else self.flashwalker_config(name)
        fw = FlashWalker(g, cfg, seed=self.seed + 10 + seed_offset)
        return fw.run(
            num_walks=num_walks if num_walks is not None else self.default_walks(name),
            spec=spec or WalkSpec(length=WALK_LENGTH),
        )

    def run_graphwalker(
        self,
        name: str,
        num_walks: int | None = None,
        config: GraphWalkerConfig | None = None,
        spec: WalkSpec | None = None,
        seed_offset: int = 0,
    ) -> GraphWalkerResult:
        g = self.graph(name)
        cfg = config or GraphWalkerConfig()
        # Shrink GraphWalker's memory/blocks with the graph scale so the
        # graph:memory ratio (the paper's projection variable) holds.
        if self.size_factor != 1.0:
            cfg = GraphWalkerConfig(
                memory_bytes=max(64 * 1024, int(cfg.memory_bytes * self.size_factor)),
                block_bytes=max(32 * 1024, int(cfg.block_bytes * self.size_factor)),
                disk_read_bytes_per_sec=cfg.disk_read_bytes_per_sec,
                io_request_overhead=cfg.io_request_overhead,
                cpu_hops_per_sec=cfg.cpu_hops_per_sec,
                walk_pool_spill=cfg.walk_pool_spill,
            )
        gw = GraphWalker(g, cfg, seed=self.seed + 20 + seed_offset)
        return gw.run(
            num_walks=num_walks if num_walks is not None else self.default_walks(name),
            spec=spec or WalkSpec(length=WALK_LENGTH),
        )

    def run_drunkardmob(
        self,
        name: str,
        num_walks: int | None = None,
        config: GraphWalkerConfig | None = None,
    ) -> GraphWalkerResult:
        g = self.graph(name)
        dm = DrunkardMob(g, config or GraphWalkerConfig(), seed=self.seed + 30)
        return dm.run(
            num_walks=num_walks if num_walks is not None else self.default_walks(name),
            spec=WalkSpec(length=WALK_LENGTH),
        )


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), max(len(line[i]) for line in cells))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(v.ljust(w) for v, w in zip(line, widths)) for line in cells
    )
    return f"{header}\n{sep}\n{body}"


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    if isinstance(v, (np.floating,)):
        return _fmt(float(v))
    return str(v)
