"""Figure 8: resource-consumption behavior over a FlashWalker run.

Timelines of flash read bandwidth, flash write bandwidth, channel-bus
bandwidth and the walk-completion progression, per dataset.

Expected shapes (Section IV-D):

* channel bandwidth saturates for long stretches on skewed graphs while
  flash read bandwidth stays below its ceiling early (roving walks hog
  the buses), rising later as walks thin out;
* flash write bandwidth is near zero throughout;
* CW finishes ~90 % of walks quickly and spends a long tail on
  stragglers bounded by flash read latency.
"""

from __future__ import annotations

import numpy as np

from .harness import ExperimentContext, format_table

__all__ = ["run", "main", "series"]


def series(ctx: ExperimentContext, name: str, rebins: int = 40) -> dict:
    """Raw Fig. 8 curves for one dataset: name -> (times, values)."""
    res = ctx.run_flashwalker(name)
    curves = res.bandwidth_series(rebins=rebins)
    curves["_elapsed"] = res.elapsed
    curves["_result"] = res
    return curves


def run(
    ctx: ExperimentContext, datasets: list[str] | None = None, rebins: int = 40
) -> list[dict]:
    """One summary row per dataset, derived from the timelines."""
    rows = []
    for name in datasets or ctx.datasets:
        curves = series(ctx, name, rebins=rebins)
        res = curves["_result"]
        _, read_bw = curves["flash_read"]
        _, write_bw = curves["flash_write"]
        _, chan_bw = curves["channel"]
        t, frac = curves["progress"]
        cfg = res.metrics  # noqa: F841  (metrics kept alive for curves)
        agg_chan = 32 * 333e6
        agg_read = 128 * 4 * 4096 / 35e-6
        # time to 90% completion vs total (straggler tail measure)
        above = np.flatnonzero(frac >= 0.9)
        t90 = t[above[0]] if above.size else curves["_elapsed"]
        rows.append(
            {
                "dataset": name,
                "elapsed_ms": curves["_elapsed"] * 1e3,
                "peak_read_GBps": read_bw.max() / 1e9,
                "peak_chan_GBps": chan_bw.max() / 1e9,
                "chan_util_peak_pct": 100 * chan_bw.max() / agg_chan,
                "read_util_peak_pct": 100 * read_bw.max() / agg_read,
                "write_share_pct": 100
                * res.flash_write_bytes
                / max(1, res.flash_read_bytes),
                "t90_frac": float(t90 / max(curves["_elapsed"], 1e-12)),
            }
        )
    return rows


def main() -> str:
    ctx = ExperimentContext()
    rows = run(ctx)
    out = "Figure 8: resource consumption behavior\n" + format_table(rows)
    cw = next((r for r in rows if r["dataset"] == "CW"), None)
    if cw:
        out += (
            f"\n\nCW straggler check: 90% of walks done at "
            f"{100 * cw['t90_frac']:.0f}% of the run "
            "(paper: ~90% done in the first quarter, long tail after)"
        )
    return out


if __name__ == "__main__":
    print(main())
