"""Figure 7: speedup projection with varied GraphWalker DRAM capacities.

The paper fixes FlashWalker and gives GraphWalker 4, 8, and 16 GB of
memory; running the same graph against less memory emulates a *larger*
graph, so the 4 GB column projects FlashWalker's advantage upward and
the 16 GB column downward.  Scaled equivalents: 2, 4, 8 MB.

Expected shapes: speedup decreases monotonically (or near-) as
GraphWalker memory grows; the drop is mild for CW (graph still >> any
memory) and for TT (already fits at the default).

Each (dataset, memory) cell is an independent campaign point; the
FlashWalker side re-runs per point, which is deterministic (same seed,
same walks) and therefore produces the same ``fw_ms`` in every cell of
a dataset, exactly as the former shared-run loop did.
"""

from __future__ import annotations

from ..common.config import GraphWalkerConfig, PAPER_SCALE
from ..common.units import GB
from ..parallel.campaign import CampaignPoint, point_runner, run_campaign
from .harness import ExperimentContext, format_table

__all__ = ["run", "main", "points", "run_point", "PAPER_MEMORY_GB"]

#: GraphWalker memory points from the paper, in (unscaled) GB.
PAPER_MEMORY_GB = (4, 8, 16)


def points(
    ctx: ExperimentContext,
    datasets: list[str] | None = None,
    memory_gb: tuple[int, ...] = PAPER_MEMORY_GB,
) -> list[CampaignPoint]:
    return [
        CampaignPoint.make("fig7", name, gw_memory_gb=int(gb))
        for name in (datasets or ctx.datasets)
        for gb in memory_gb
    ]


@point_runner("fig7")
def run_point(ctx: ExperimentContext, point: CampaignPoint):
    name = point.dataset
    gb = point.param("gw_memory_gb")
    seed_offset = int(point.param("seed_offset", 0))
    fw = ctx.run_flashwalker(name, seed_offset=seed_offset)
    scaled = max(128 * 1024, gb * GB // PAPER_SCALE)
    cfg = GraphWalkerConfig(memory_bytes=scaled)
    gw = ctx.run_graphwalker(name, config=cfg, seed_offset=seed_offset)
    row = {
        "dataset": name,
        "gw_memory_GB(paper)": gb,
        "fw_ms": fw.elapsed * 1e3,
        "gw_ms": gw.elapsed * 1e3,
        "speedup": gw.elapsed / fw.elapsed,
    }
    report = fw.to_report(
        extra={"point": point.key, "gw_elapsed": gw.elapsed, "gw_memory_gb": gb}
    )
    return row, report


def run(
    ctx: ExperimentContext,
    datasets: list[str] | None = None,
    memory_gb: tuple[int, ...] = PAPER_MEMORY_GB,
    jobs: int = 1,
    report_dir: str | None = None,
) -> list[dict]:
    res = run_campaign(
        points(ctx, datasets, memory_gb),
        context=ctx,
        jobs=jobs,
        report_dir=report_dir,
    )
    return res.rows


def main(jobs: int = 1, report_dir: str | None = None) -> str:
    ctx = ExperimentContext()
    rows = run(ctx, jobs=jobs, report_dir=report_dir)
    out = (
        "Figure 7: FlashWalker speedup over GraphWalker with varied DRAM\n"
        + format_table(rows)
    )
    # shape check: per dataset, larger memory -> no big speedup increase
    for name in ctx.datasets:
        sub = [r["speedup"] for r in rows if r["dataset"] == name]
        trend = "monotone-down" if all(
            a >= b * 0.9 for a, b in zip(sub, sub[1:])
        ) else "mixed"
        out += f"\n{name}: speedups {['%.2f' % s for s in sub]} ({trend})"
    return out


if __name__ == "__main__":
    print(main())
