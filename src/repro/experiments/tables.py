"""Tables I-IV: configuration printouts with derived-value checks.

Tables I/III (SSD + DRAM) and II (accelerators) are configuration, not
measurements; reproducing them means instantiating the same parameters
and verifying the derived bandwidth figures the paper quotes in its
text (333 MB/s per channel, ~10.4 GB/s aggregate channel, ~55.8 GB/s
aggregate read, 4 GB/s PCIe).  Table IV is the dataset registry with
paper and scaled statistics side by side.
"""

from __future__ import annotations

from ..common.config import FlashWalkerConfig, PAPER_SCALE
from ..common.units import fmt_bandwidth, fmt_bytes, fmt_count, fmt_time
from ..graph import compute_stats, dataset, dataset_names
from .harness import ExperimentContext, format_table

__all__ = ["table_i_iii", "table_ii", "table_iv", "main"]


def table_i_iii() -> list[dict]:
    """SSD + DRAM characteristics and the paper's derived figures."""
    cfg = FlashWalkerConfig().validate()
    ssd, dram = cfg.ssd, cfg.dram
    return [
        {"parameter": "channels", "value": ssd.channels},
        {"parameter": "chips/channel", "value": ssd.chips_per_channel},
        {"parameter": "dies/chip x planes/die", "value": f"{ssd.dies_per_chip} x {ssd.planes_per_die}"},
        {"parameter": "blocks/plane x pages/block", "value": f"{ssd.blocks_per_plane} x {ssd.pages_per_block}"},
        {"parameter": "page size", "value": fmt_bytes(ssd.page_bytes)},
        {"parameter": "channel rate", "value": fmt_bandwidth(ssd.channel_bytes_per_sec)},
        {"parameter": "read / program / erase", "value": f"{fmt_time(ssd.read_latency)} / {fmt_time(ssd.program_latency)} / {fmt_time(ssd.erase_latency)}"},
        {"parameter": "PCIe", "value": f"{ssd.pcie_lanes} x {fmt_bandwidth(ssd.pcie_lane_bytes_per_sec)}"},
        {"parameter": "DRAM", "value": f"DDR4 {dram.frequency_mhz:.0f}MHz {fmt_bytes(dram.capacity_bytes)}"},
        {"parameter": "derived: aggregate channel BW", "value": fmt_bandwidth(ssd.aggregate_channel_bytes_per_sec)},
        {"parameter": "derived: aggregate read BW", "value": fmt_bandwidth(ssd.aggregate_flash_read_bytes_per_sec)},
        {"parameter": "derived: PCIe BW", "value": fmt_bandwidth(ssd.pcie_bytes_per_sec)},
    ]


def table_ii() -> list[dict]:
    """Accelerator configurations (one row per Table II line)."""
    lv = FlashWalkerConfig().levels
    rows = []
    for field, getter in (
        ("frequency (MHz)", lambda a: f"{a.frequency_mhz:.0f}"),
        ("# updaters", lambda a: a.n_updaters),
        ("updater cycle", lambda a: fmt_time(a.updater_cycle)),
        ("# guiders", lambda a: a.n_guiders),
        ("guider cycle", lambda a: fmt_time(a.guider_cycle)),
        ("subgraph buffer", lambda a: fmt_bytes(a.subgraph_buffer_bytes)),
        ("walk queues", lambda a: fmt_bytes(a.walk_queues_bytes)),
        ("guide buffer", lambda a: fmt_bytes(a.guide_buffer_bytes) if a.guide_buffer_bytes else "-"),
        ("roving walk buffer", lambda a: fmt_bytes(a.roving_buffer_bytes) if a.roving_buffer_bytes else "-"),
        ("area (mm^2)", lambda a: a.area_mm2),
    ):
        rows.append(
            {
                "module": field,
                "chip-level": getter(lv.chip),
                "channel-level": getter(lv.channel),
                "board-level": getter(lv.board),
            }
        )
    return rows


def table_iv(ctx: ExperimentContext | None = None) -> list[dict]:
    """Dataset statistics: paper values and the scaled analogs we run."""
    ctx = ctx or ExperimentContext()
    rows = []
    for name in dataset_names():
        spec = dataset(name)
        g = ctx.graph(name)
        st = compute_stats(g)
        rows.append(
            {
                "dataset": name,
                "paper_V": fmt_count(spec.paper_vertices),
                "paper_E": fmt_count(spec.paper_edges),
                "paper_CSR": fmt_bytes(spec.paper_csr_bytes),
                "scaled_V": fmt_count(st.num_vertices),
                "scaled_E": fmt_count(st.num_edges),
                "scaled_CSR": fmt_bytes(st.csr_bytes),
                "max_deg": st.max_out_degree,
                "gini": round(st.degree_gini, 3),
            }
        )
    return rows


def main() -> str:
    ctx = ExperimentContext()
    return (
        "Table I/III: SSD & DRAM configuration\n"
        + format_table(table_i_iii())
        + "\n\nTable II: FlashWalker accelerator configurations\n"
        + format_table(table_ii())
        + f"\n\nTable IV: datasets (scaled 1/{PAPER_SCALE})\n"
        + format_table(table_iv(ctx))
    )


if __name__ == "__main__":
    print(main())
