"""Circuit breaker fed by the fault layer's degraded-mode signals.

The breaker watches the engine's :class:`~repro.faults.model.FaultModel`
counters (and, when the durability layer is on, the
:class:`~repro.durability.IntegrityTracker`'s corruption detections)
between service events.  A *new* chip failure,
``breaker_exhausted_threshold`` newly-exhausted read retries, or
``breaker_corruption_threshold`` newly-detected silent corruptions since
the last check, trips the breaker open for ``breaker_cooldown`` simulated
seconds.  While open, the service either sheds arrivals
(``breaker_policy="shed"``) or holds dispatch and retries once the
cooldown elapses (``"defer"``) — either way the degraded device is not
piled onto.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Open/closed state machine over fault-model degradation counters."""

    def __init__(self, cfg, engine):
        self.cfg = cfg
        # The engine rebuilds its fault model on every session reset, so
        # hold the engine and read ``engine.fault_model`` per poll.
        self.engine = engine
        self.open_until = 0.0
        self.trips = 0
        self._seen_chip_failures = 0
        self._seen_exhausted = 0
        self._seen_corruption = 0
        self.retired = False
        # Last open/closed state recorded into telemetry, so the gauge
        # only gets a point on transitions (polls are frequent).
        self._open_recorded = False

    def retire(self) -> None:
        """Permanently close the breaker (its device left the system).

        A retired breaker never reports open and never trips again —
        the cluster calls this when a shard is removed so the departed
        shard cannot keep rerouting traffic."""
        self.retired = True
        self.open_until = 0.0

    def is_open(self, now: float) -> bool:
        """Poll degradation signals, then report whether the breaker is open."""
        if self.retired:
            return False
        self._update(now)
        open_now = now < self.open_until
        mx = getattr(self.engine, "telemetry", None)
        if mx is not None and open_now != self._open_recorded:
            self._open_recorded = open_now
            mx.gauge("service_breaker_open").set(1.0 if open_now else 0.0, now)
        return open_now

    def _update(self, now: float) -> None:
        if not self.cfg.breaker_enabled:
            return
        tripped = False
        fm = self.engine.fault_model
        if fm is not None:
            if fm.chip_failures > self._seen_chip_failures:
                self._seen_chip_failures = fm.chip_failures
                tripped = True
            new_exhausted = fm.reads_exhausted - self._seen_exhausted
            if new_exhausted >= self.cfg.breaker_exhausted_threshold:
                self._seen_exhausted = fm.reads_exhausted
                tripped = True
        it = getattr(self.engine, "integrity", None)
        if it is not None:
            new_corrupt = it.detected - self._seen_corruption
            if new_corrupt >= self.cfg.breaker_corruption_threshold:
                self._seen_corruption = it.detected
                tripped = True
        if tripped:
            self.open_until = max(self.open_until, now + self.cfg.breaker_cooldown)
            self.trips += 1

    def stats(self) -> dict:
        return {
            "enabled": self.cfg.breaker_enabled,
            "policy": self.cfg.breaker_policy,
            "trips": self.trips,
            "open_until": self.open_until,
            "retired": self.retired,
        }
