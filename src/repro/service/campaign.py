"""Service-SLO campaign points.

One point = one seeded open-loop serving run under a chosen admission
policy (optionally with chaos: NAND faults plus a mid-run chip
failure).  Registered as the ``service_slo`` experiment so
``python -m repro.parallel --experiment service_slo`` sweeps policies
and datasets across workers with the usual per-point determinism
guarantees.
"""

from __future__ import annotations

from ..parallel.campaign import CampaignPoint, point_runner
from .config import ServiceConfig
from .request import open_loop_requests
from .service import WalkQueryService

__all__ = ["POLICIES", "points", "run_point", "build_requests", "chaos_faults"]

#: Policies swept by the default campaign.
POLICIES = ("reject", "shed-oldest", "token-bucket")


def walk_budget(ctx, dataset: str) -> tuple[int, float]:
    """(walks per query, deadline seconds) sized to the context scale."""
    per_query = max(16, ctx.default_walks(dataset) // 32)
    return per_query, 20e-3


def chaos_faults(engine, *, failover_at: float = 400e-6):
    """Fault schedule for a chaos run: background NAND read faults,
    CRC noise, and one chip failure at ``failover_at``."""
    from ..common.config import FaultConfig

    victim = int(engine.block_chip[0])
    return FaultConfig(
        enabled=True,
        page_error_rate=0.05,
        crc_error_rate=0.02,
        chip_failures=((failover_at, victim),),
    ).validate()


def build_requests(
    ctx, dataset: str, *, n_requests: int, rate_qps: float, seed_offset: int = 0
):
    """Seeded open-loop request schedule sized to the context's scale."""
    from ..common.rng import RngRegistry

    walks_per_query, deadline = walk_budget(ctx, dataset)
    rng = RngRegistry(ctx.seed + 10 + seed_offset).fresh("service_arrivals")
    return open_loop_requests(
        n_requests,
        rate_qps,
        rng,
        walks_per_query=walks_per_query,
        deadline=deadline,
    )


def points(
    ctx, datasets: list[str] | None = None, policies=POLICIES
) -> list[CampaignPoint]:
    return [
        CampaignPoint.make("service_slo", name, policy=policy)
        for name in (datasets or ctx.datasets)
        for policy in policies
    ]


@point_runner("service_slo")
def run_point(ctx, point: CampaignPoint):
    from ..core.flashwalker import FlashWalker

    name = point.dataset
    policy = point.param("policy", "reject")
    seed_offset = int(point.param("seed_offset", 0))
    chaos = bool(point.param("chaos", True))

    graph = ctx.graph(name)
    cfg = ctx.flashwalker_config(name)
    if chaos:
        # Probe the block->chip placement to pick a failover victim,
        # then rebuild the config with the fault schedule baked in.
        probe = FlashWalker(graph, cfg, seed=ctx.seed)
        cfg = ctx.flashwalker_config(name, faults=chaos_faults(probe))
    fw = FlashWalker(graph, cfg, seed=ctx.seed + 10 + seed_offset)

    walks_per_query, _ = walk_budget(ctx, name)
    requests = build_requests(
        ctx,
        name,
        n_requests=int(point.param("n_requests", 24)),
        rate_qps=float(point.param("rate_qps", 20e3)),
        seed_offset=seed_offset,
    )
    svc_cfg = ServiceConfig(
        admission_policy=policy,
        rate_limit_qps=30e3 if policy == "token-bucket" else 0.0,
        queue_capacity=8,
        max_inflight_walks=max(64, 4 * walks_per_query),
        breaker_cooldown=150e-6,
    )
    outcome = WalkQueryService(fw, svc_cfg).run(requests)
    svc = outcome.result.service
    row = {
        "dataset": name,
        "policy": policy,
        "arrivals": svc["requests"]["arrivals"],
        "ok": svc["requests"]["ok"],
        "timed_out": svc["requests"]["timed_out"],
        "shed": svc["requests"]["shed"],
        "shed_rate": svc["shed_rate"],
        "p99_ms": svc["latency"]["p99"] * 1e3,
    }
    report = outcome.result.to_report(extra={"point": point.key})
    return row, report
