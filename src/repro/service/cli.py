"""Service CLI: one seeded open-loop serving scenario.

::

    python -m repro.service --dataset TT --requests 24 --rate 20000
    python -m repro.service --chaos --seed 3 --out slo_report.json

``--chaos`` layers fault injection on top of the open-loop load:
background NAND read faults, CRC noise, and one chip failure mid-run.
The online invariant auditor runs throughout; any violation exits
nonzero with the violation list, which is what the CI chaos-soak job
gates on.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--dataset", default="TT", help="dataset name (default: TT)")
    parser.add_argument("--requests", type=int, default=24,
                        help="number of open-loop queries (default: 24)")
    parser.add_argument("--rate", type=float, default=20e3,
                        help="mean arrival rate, queries/sec of simulated "
                             "time (default: 20000)")
    parser.add_argument("--seed", type=int, default=3, help="root seed")
    parser.add_argument("--policy", default="reject",
                        choices=("reject", "shed-oldest", "token-bucket"),
                        help="admission policy (default: reject)")
    parser.add_argument("--quick", action="store_true",
                        help="scale the dataset down (CI-sized run)")
    parser.add_argument("--chaos", action="store_true",
                        help="enable fault injection + one chip failure")
    parser.add_argument("--dftl", action="store_true",
                        help="enable the DFTL translation layer (cached "
                             "mapping table, background GC, wear leveling)")
    parser.add_argument("--out", default=None,
                        help="write the run report JSON here")
    args = parser.parse_args(argv)

    # Imports deferred so --help works in stripped environments.
    import dataclasses

    from ..common.config import FTLConfig
    from ..common.errors import InvariantViolation
    from ..core.flashwalker import FlashWalker
    from ..experiments.harness import ExperimentContext
    from .campaign import build_requests, chaos_faults, walk_budget
    from .config import ServiceConfig
    from .service import WalkQueryService

    ctx = (
        ExperimentContext.quick(seed=args.seed)
        if args.quick
        else ExperimentContext(seed=args.seed)
    )
    graph = ctx.graph(args.dataset)
    cfg = ctx.flashwalker_config(args.dataset)
    if args.chaos:
        probe = FlashWalker(graph, cfg, seed=ctx.seed)
        cfg = ctx.flashwalker_config(args.dataset, faults=chaos_faults(probe))
    if args.dftl:
        cfg = cfg.replace(
            ssd=dataclasses.replace(cfg.ssd, ftl=FTLConfig(enabled=True))
        )
    fw = FlashWalker(graph, cfg, seed=ctx.seed + 10)

    walks_per_query, _ = walk_budget(ctx, args.dataset)
    requests = build_requests(
        ctx, args.dataset, n_requests=args.requests, rate_qps=args.rate
    )
    svc_cfg = ServiceConfig(
        admission_policy=args.policy,
        rate_limit_qps=1.5 * args.rate if args.policy == "token-bucket" else 0.0,
        queue_capacity=8,
        max_inflight_walks=max(64, 4 * walks_per_query),
        breaker_cooldown=150e-6,
    )
    svc = WalkQueryService(fw, svc_cfg)
    try:
        outcome = svc.run(requests)
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION at t={exc.at:.6g}s:", file=sys.stderr)
        for v in exc.violations:
            print(f"  - {v}", file=sys.stderr)
        print(f"state: {json.dumps(exc.state, sort_keys=True)}", file=sys.stderr)
        return 2

    s = outcome.result.service
    req, lat = s["requests"], s["latency"]
    print(
        f"{args.dataset} policy={args.policy}"
        + (" +chaos" if args.chaos else "")
        + f": {req['arrivals']} arrivals -> {req['ok']} ok, "
        f"{req['timed_out']} timed out, {req['shed']} shed"
    )
    print(
        f"latency p50={lat['p50'] * 1e3:.3f}ms p95={lat['p95'] * 1e3:.3f}ms "
        f"p99={lat['p99'] * 1e3:.3f}ms  shed_rate={s['shed_rate']:.3f}  "
        f"deadline_miss_rate={s['deadline_miss_rate']:.3f}"
    )
    print(
        f"audits={s['audit']['audits']} violations={s['audit']['violations']} "
        f"breaker_trips={s['breaker']['trips']} "
        f"zombie_walks={s['walks']['zombie']}"
    )
    if args.out:
        report = outcome.result.to_report()
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote report to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
