"""Bounded admission queue with pluggable overload policy.

The queue is the open-loop load's first backpressure point.  Three
policies (Section: service layer, DESIGN.md §9):

- ``reject``: a full queue refuses the newcomer.
- ``shed-oldest``: a full queue evicts its stalest entry — the one
  most likely to miss its deadline anyway — to make room.
- ``token-bucket``: arrivals are rate-limited to ``rate`` queries/sec
  (burst ``burst``) before the capacity check; over-rate arrivals are
  shed as ``rate-limited`` and the capacity overflow then behaves like
  ``reject``.

All decisions are counted so the run report can quote shed rates per
cause.
"""

from __future__ import annotations

from collections import deque

from .request import QueryRequest

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO of admitted-but-not-yet-dispatched queries."""

    def __init__(
        self,
        capacity: int,
        policy: str = "reject",
        rate: float = 0.0,
        burst: int = 8,
    ):
        self.capacity = capacity
        self.policy = policy
        self.rate = rate
        self.burst = burst
        self._q: deque[QueryRequest] = deque()
        # Token bucket state: lazily refilled at each offer.
        self._tokens = float(burst)
        self._last_refill = 0.0
        #: Degraded-admission multiplier on the refill rate (brownout /
        #: resize ramp).  1.0 — the always-on default — refills at
        #: exactly the legacy rate, bit for bit.
        self.rate_factor = 1.0
        # Counters (surface in the report's service section).
        self.admitted = 0
        self.rejected = 0
        self.shed_oldest = 0
        self.rate_limited = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._q)

    def offer(
        self, req: QueryRequest, now: float
    ) -> tuple[bool, QueryRequest | None, str | None]:
        """Try to admit ``req`` at time ``now``.

        Returns ``(admitted, evicted, refusal)``: ``evicted`` is the
        queue entry shed to make room under ``shed-oldest``; ``refusal``
        names why the newcomer itself was refused (``"queue-full"`` or
        ``"rate-limited"``), None when admitted.
        """
        if self.policy == "token-bucket":
            self._tokens = min(
                float(self.burst),
                self._tokens
                + (now - self._last_refill) * self.rate * self.rate_factor,
            )
            self._last_refill = now
            if self._tokens < 1.0:
                self.rate_limited += 1
                return False, None, "rate-limited"
            self._tokens -= 1.0
        evicted = None
        if len(self._q) >= self.capacity:
            if self.policy == "shed-oldest":
                evicted = self._q.popleft()
                self.shed_oldest += 1
            else:
                self.rejected += 1
                return False, None, "queue-full"
        self._q.append(req)
        self.admitted += 1
        self.peak_depth = max(self.peak_depth, len(self._q))
        return True, evicted, None

    def peek(self) -> QueryRequest | None:
        return self._q[0] if self._q else None

    def pop(self) -> QueryRequest:
        return self._q.popleft()

    def stats(self) -> dict:
        return {
            "policy": self.policy,
            "capacity": self.capacity,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed_oldest": self.shed_oldest,
            "rate_limited": self.rate_limited,
            "peak_depth": self.peak_depth,
        }
