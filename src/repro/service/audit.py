"""Online invariant auditor for service runs.

Every ``audit_interval_events`` simulator events (and once more at the
end of the run), the auditor cross-checks the engine's accounting
against the service's own bookkeeping:

- **Walk conservation** — ``total == completed + in_transit +
  scheduler pending + foreigner store`` at every event boundary, and
  the engine's ``total_walks`` equals what the service injected.
- **Attribution conservation** — walks credited to queries sum to the
  engine's completed count (every walk carries its query id in
  ``src``).
- **Query conservation** — arrivals == responded (ok/timed out/shed)
  + still-pending.
- **Buffer occupancy** — no partition-walk-buffer entry holds more
  buffered walks than its declared capacity, no negative counts.
- **Scoreboard consistency** — the scheduler's per-block (pwb, fl)
  counts mirror the buffer exactly.
- **Monotone simulated time** — ``sim.now`` never moves backwards
  between audits.

Any violation raises :class:`~repro.common.errors.InvariantViolation`
carrying all failed checks plus a state dump for post-mortem.
"""

from __future__ import annotations

from ..common.errors import InvariantViolation

__all__ = ["ServiceAuditor"]


class ServiceAuditor:
    """Periodic cross-layer consistency checker over one service run."""

    def __init__(self, service, interval_events: int):
        self.service = service
        self.interval_events = interval_events
        self._last_audit_events = 0
        self._last_now = 0.0
        self.audits = 0
        self.violations_found = 0

    def maybe_audit(self) -> None:
        """Audit if at least ``interval_events`` events ran since last time."""
        if self.interval_events <= 0:
            return
        fw = self.service.fw
        if fw.sim.events_executed - self._last_audit_events >= self.interval_events:
            self.audit()

    def audit(self, final: bool = False) -> None:
        svc = self.service
        fw = svc.fw
        sim_now = fw.sim.now
        self._last_audit_events = fw.sim.events_executed
        self.audits += 1
        violations: list[str] = []

        if sim_now < self._last_now:
            violations.append(
                f"simulated time moved backwards: {self._last_now} -> {sim_now}"
            )
        self._last_now = max(self._last_now, sim_now)

        # Engine-side walk conservation at the event boundary.
        sched_pending = fw.scheduler.total_pending if fw.scheduler is not None else 0
        foreign = fw.foreign.total
        accounted = fw.completed_walks + fw.in_transit + sched_pending + foreign
        if accounted != fw.total_walks:
            violations.append(
                f"walk conservation: completed {fw.completed_walks} + in_transit "
                f"{fw.in_transit} + scheduled {sched_pending} + foreign {foreign} "
                f"= {accounted} != total {fw.total_walks}"
            )
        for name, value in (
            ("completed_walks", fw.completed_walks),
            ("in_transit", fw.in_transit),
            ("total_walks", fw.total_walks),
        ):
            if value < 0:
                violations.append(f"negative engine count {name} = {value}")

        # Service-side: everything the engine holds, the service injected.
        if fw.total_walks != svc.walks_injected:
            violations.append(
                f"engine holds {fw.total_walks} walks but service injected "
                f"{svc.walks_injected}"
            )
        credited = sum(st.walks_done for st in svc.states.values())
        if credited != fw.completed_walks:
            violations.append(
                f"walks credited to queries ({credited}) != engine completed "
                f"({fw.completed_walks})"
            )

        # Query conservation: every arrival is responded or pending.
        responded = svc.ok_count + svc.timed_out_count + svc.shed_count
        pending = sum(1 for st in svc.states.values() if not st.responded)
        if responded + pending != svc.arrivals:
            violations.append(
                f"query conservation: responded {responded} + pending {pending} "
                f"!= arrivals {svc.arrivals}"
            )

        # Buffer occupancy and scoreboard consistency.
        if fw.pwb is not None:
            violations.extend(fw.pwb.occupancy_errors())
            if fw.scheduler is not None:
                violations.extend(fw.scheduler.consistency_errors(fw.pwb))
                buffered = fw.pwb.total_walks
                if buffered != sched_pending:
                    violations.append(
                        f"partition walk buffer holds {buffered} walks but "
                        f"scheduler tracks {sched_pending}"
                    )

        if violations:
            self.violations_found += len(violations)
            kind = "final audit" if final else "audit"
            raise InvariantViolation(
                f"{kind} at t={sim_now:.6g}s found {len(violations)} "
                f"violation(s): {violations[0]}",
                violations=violations,
                state=self._state_dump(),
                at=sim_now,
                context="service",
            )

    def _state_dump(self) -> dict:
        """Snapshot of the service/engine accounting for post-mortem."""
        svc = self.service
        fw = svc.fw
        return {
            "sim_now": fw.sim.now,
            "events_executed": fw.sim.events_executed,
            "total_walks": fw.total_walks,
            "completed_walks": fw.completed_walks,
            "in_transit": fw.in_transit,
            "scheduler_pending": (
                fw.scheduler.total_pending if fw.scheduler is not None else None
            ),
            "foreign_total": fw.foreign.total,
            "walks_injected": svc.walks_injected,
            "arrivals": svc.arrivals,
            "ok": svc.ok_count,
            "timed_out": svc.timed_out_count,
            "shed": svc.shed_count,
            "queue_depth": len(svc.queue),
            "pending_queries": sorted(
                qid for qid, st in svc.states.items() if not st.responded
            ),
        }

    def stats(self) -> dict:
        return {
            "interval_events": self.interval_events,
            "audits": self.audits,
            "violations": self.violations_found,
        }
