"""Query requests and results.

A :class:`QueryRequest` asks for ``num_walks`` random walks of
``length`` hops, arriving at a given offset from service start and
carrying a completion deadline.  The service answers every admitted
request with exactly one :class:`QueryResult`; a request shed at
admission gets its result immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigError

__all__ = ["QueryRequest", "QueryResult", "open_loop_requests"]


# eq=False: the optional numpy ``starts`` field would break the
# generated __eq__ (ambiguous array truth value); identity is the
# right equality for requests anyway.
@dataclass(frozen=True, eq=False)
class QueryRequest:
    """One walk query presented to the service.

    ``arrival`` is seconds after service start; ``deadline`` is the
    latency budget from arrival (the service answers with whatever
    walks finished once it expires).  ``starts`` optionally pins the
    start vertices; otherwise they are drawn from the service RNG
    stream.
    """

    query_id: int
    arrival: float
    num_walks: int
    length: int
    deadline: float
    starts: np.ndarray | None = None

    def validate(self) -> "QueryRequest":
        if self.query_id < 0:
            raise ConfigError(f"negative query_id {self.query_id}")
        if self.arrival < 0:
            raise ConfigError(f"query {self.query_id}: negative arrival {self.arrival}")
        if self.num_walks < 1:
            raise ConfigError(
                f"query {self.query_id}: num_walks must be >= 1, got {self.num_walks}"
            )
        if self.length < 1:
            raise ConfigError(
                f"query {self.query_id}: length must be >= 1, got {self.length}"
            )
        if self.deadline <= 0:
            raise ConfigError(
                f"query {self.query_id}: deadline must be > 0, got {self.deadline}"
            )
        if self.starts is not None and len(self.starts) != self.num_walks:
            raise ConfigError(
                f"query {self.query_id}: {len(self.starts)} starts for "
                f"{self.num_walks} walks"
            )
        return self


@dataclass(frozen=True)
class QueryResult:
    """The service's answer to one request.

    ``status`` is ``"ok"`` (all walks finished within the deadline),
    ``"timed_out"`` (deadline expired; ``walks_completed`` walks of
    partial results were available), or ``"shed"`` (refused at
    admission; ``shed_reason`` says why).  ``latency`` is response time
    from arrival in simulated seconds (deadline for timeouts, 0 for
    sheds).
    """

    query_id: int
    arrival: float
    admitted: bool
    status: str
    walks_requested: int
    walks_completed: int
    finish_time: float
    latency: float
    shed_reason: str | None = None

    @property
    def timed_out(self) -> bool:
        return self.status == "timed_out"


def open_loop_requests(
    n_requests: int,
    rate_qps: float,
    rng: np.random.Generator,
    *,
    walks_per_query: int = 64,
    length: int = 6,
    deadline: float = 20e-3,
) -> list[QueryRequest]:
    """Seeded open-loop (Poisson) arrival schedule.

    Interarrival gaps are exponential with mean ``1/rate_qps`` —
    arrivals do not wait for earlier queries to finish, which is what
    exposes queueing and shedding behavior.
    """
    if n_requests < 1:
        raise ConfigError(f"n_requests must be >= 1, got {n_requests}")
    if rate_qps <= 0:
        raise ConfigError(f"rate_qps must be > 0, got {rate_qps}")
    gaps = rng.exponential(1.0 / rate_qps, size=n_requests)
    arrivals = np.cumsum(gaps)
    return [
        QueryRequest(
            query_id=i,
            arrival=float(arrivals[i]),
            num_walks=walks_per_query,
            length=length,
            deadline=deadline,
        ).validate()
        for i in range(n_requests)
    ]
