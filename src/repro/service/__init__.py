"""Always-on walk query service over the FlashWalker engine.

Models a deployed in-storage accelerator under open-loop load in
simulated time: bounded admission with configurable overload policy,
per-query deadlines with partial-result semantics, a circuit breaker
fed by the fault layer's degraded-mode signals, and an online invariant
auditor that cross-checks walk/query conservation while the run
progresses.  Entirely opt-in — batch runs through
:meth:`~repro.core.flashwalker.FlashWalker.run` are untouched.

Quick start::

    from repro.service import ServiceConfig, WalkQueryService, open_loop_requests

    svc = WalkQueryService(fw, ServiceConfig(admission_policy="shed-oldest"))
    outcome = svc.run(open_loop_requests(32, 20e3, rng))
    outcome.result.service["latency"]["p99"]

or from the shell: ``python -m repro.service --chaos``.
"""

from .audit import ServiceAuditor
from .breaker import CircuitBreaker
from .brownout import BrownoutController
from .config import ServiceConfig
from .queue import AdmissionQueue
from .request import QueryRequest, QueryResult, open_loop_requests
from .service import ServiceOutcome, WalkQueryService

__all__ = [
    "AdmissionQueue",
    "BrownoutController",
    "CircuitBreaker",
    "QueryRequest",
    "QueryResult",
    "ServiceAuditor",
    "ServiceConfig",
    "ServiceOutcome",
    "WalkQueryService",
    "open_loop_requests",
]
