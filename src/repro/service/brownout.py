"""Brownout admission: planned degradation under gray-failure pressure.

A brownout is the middle ground between serving normally and tripping a
breaker: when a pressure signal (straggler share of live shards at the
cluster layer, trailing deadline-miss fraction at the single-device
service) crosses ``enter_pressure``, the controller scales admission
capacity and the token-bucket refill rate down by fixed factors, so
load is shed cheaply at the front door *before* queries queue up behind
slow hardware and blow their deadlines.  Pressure falling to
``exit_pressure`` (hysteresis) restores full admission.

The controller is deliberately tiny and deterministic — pure function
of the observed pressure sequence, no wall clock, no randomness — so
brownout runs replay byte-identically.
"""

from __future__ import annotations

__all__ = ["BrownoutController"]


class BrownoutController:
    """Hysteresis switch from a pressure signal to admission factors."""

    def __init__(
        self,
        *,
        enter_pressure: float,
        exit_pressure: float,
        capacity_factor: float,
        rate_factor: float,
    ):
        self.enter_pressure = float(enter_pressure)
        self.exit_pressure = float(exit_pressure)
        self.capacity_factor = float(capacity_factor)
        self.rate_factor = float(rate_factor)
        self.active = False
        self.entries = 0
        self.epochs_active = 0
        self.last_pressure = 0.0
        self.transitions: list[dict] = []

    def observe(self, pressure: float, *, epoch: int, now: float) -> bool:
        """Feed one pressure sample; returns the (possibly new) state."""
        self.last_pressure = float(pressure)
        if not self.active and pressure >= self.enter_pressure:
            self.active = True
            self.entries += 1
            self.transitions.append(
                {"active": True, "pressure": float(pressure),
                 "epoch": int(epoch), "t": float(now)}
            )
        elif self.active and pressure <= self.exit_pressure:
            self.active = False
            self.transitions.append(
                {"active": False, "pressure": float(pressure),
                 "epoch": int(epoch), "t": float(now)}
            )
        if self.active:
            self.epochs_active += 1
        return self.active

    def admit_capacity_factor(self) -> float:
        return self.capacity_factor if self.active else 1.0

    def admit_rate_factor(self) -> float:
        return self.rate_factor if self.active else 1.0

    def snapshot(self) -> dict:
        """Checkpointable state (service crash/recovery path)."""
        return {
            "active": self.active,
            "entries": self.entries,
            "epochs_active": self.epochs_active,
            "last_pressure": self.last_pressure,
            "transitions": [dict(tr) for tr in self.transitions],
        }

    def restore(self, state: dict) -> None:
        self.active = bool(state["active"])
        self.entries = int(state["entries"])
        self.epochs_active = int(state["epochs_active"])
        self.last_pressure = float(state["last_pressure"])
        self.transitions = [dict(tr) for tr in state["transitions"]]

    def stats(self) -> dict:
        return {
            "active": self.active,
            "entries": self.entries,
            "epochs_active": self.epochs_active,
            "transitions": len(self.transitions),
            "last_pressure": self.last_pressure,
        }
