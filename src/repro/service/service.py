"""The always-on walk query service.

:class:`WalkQueryService` wraps a :class:`~repro.core.flashwalker.FlashWalker`
in a deterministic, simulated-time serving loop: queries arrive on an
open-loop schedule, pass the admission queue and circuit breaker, and
are injected into the engine as walk batches whose ``src`` field carries
the query id (the engine never reads ``src`` as a graph index, so it is
a free attribution channel).  Completions are credited back to queries
by a completion hook; a deadline event per admitted query enforces
partial-result semantics — when it fires first, the query is answered
with however many walks finished, flagged ``timed_out``, and its
remaining walks run to completion in the background without disturbing
other in-flight queries.  An online auditor (:mod:`repro.service.audit`)
cross-checks conservation invariants as the run progresses.

Everything is simulator-event driven, so two runs with the same seed
and request schedule produce identical responses, shed decisions, and
SLO metrics.

With the durability layer on (``DurabilityConfig.enabled``), service
runs survive power loss too: the service packs its own bookkeeping into
every engine checkpoint via the ``_checkpoint_extra`` hook, and
:meth:`WalkQueryService.resume` restores it alongside the engine state,
re-schedules undelivered arrivals and live deadlines, and replays to
completion — in-flight queries at the crash are served from the
recovered timeline rather than dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ConfigError, SimulationError
from ..core.metrics import RunResult
from ..obs.alerts import default_service_rules
from ..walks.spec import WalkSpec, start_vertices
from ..walks.state import WalkSet
from .audit import ServiceAuditor
from .breaker import CircuitBreaker
from .config import ServiceConfig
from .queue import AdmissionQueue
from .request import QueryRequest, QueryResult

__all__ = ["ServiceOutcome", "WalkQueryService"]

#: Fixed query-latency histogram bounds (simulated seconds); spans the
#: sub-millisecond deadlines the SLO suite exercises up to whole-run
#: scale so the overflow bucket only catches pathological stragglers.
_LATENCY_BUCKETS = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
)


@dataclass
class _QueryState:
    """Mutable per-query bookkeeping while a request is live."""

    req: QueryRequest
    t_arrival: float
    deadline_abs: float
    walks_done: int = 0
    injected: bool = False
    responded: bool = False
    deadline_event: object | None = None
    #: Breaker-reopen retries left (None when budgets are off).
    retry_budget: int | None = None


@dataclass
class ServiceOutcome:
    """What one service run produced.

    ``result`` is the engine's :class:`~repro.core.metrics.RunResult`
    with the SLO section attached (``result.service``); ``responses``
    holds one :class:`QueryResult` per request in response order.
    """

    result: RunResult
    responses: list[QueryResult] = field(default_factory=list)

    def by_id(self) -> dict[int, QueryResult]:
        return {r.query_id: r for r in self.responses}


class WalkQueryService:
    """Serve walk queries against one engine under simulated time."""

    def __init__(self, fw, cfg: ServiceConfig | None = None):
        self.fw = fw
        self.cfg = (cfg or ServiceConfig()).validate()
        self.queue = AdmissionQueue(
            self.cfg.queue_capacity,
            self.cfg.admission_policy,
            self.cfg.rate_limit_qps,
            self.cfg.rate_limit_burst,
        )
        self.breaker = CircuitBreaker(self.cfg, fw)
        self.auditor = ServiceAuditor(self, self.cfg.audit_interval_events)
        self.states: dict[int, _QueryState] = {}
        self.responses: list[QueryResult] = []
        # Accounting the auditor cross-checks against the engine.
        self.arrivals = 0
        self.ok_count = 0
        self.timed_out_count = 0
        self.shed_count = 0
        self.walks_injected = 0
        self.zombie_walks = 0
        self.deadline_misses = 0
        self.deferrals = 0
        self.retry_budget_exhausted = 0
        if self.cfg.brownout_enabled:
            from collections import deque

            from .brownout import BrownoutController

            self.brownout = BrownoutController(
                enter_pressure=self.cfg.brownout_enter_pressure,
                exit_pressure=self.cfg.brownout_exit_pressure,
                capacity_factor=self.cfg.brownout_capacity_factor,
                rate_factor=self.cfg.brownout_rate_factor,
            )
            self._recent_misses = deque(maxlen=self.cfg.brownout_window)
        else:
            self.brownout = None
            self._recent_misses = None
        self._t0 = 0.0
        self._dispatch_scheduled = False
        self._retry_scheduled = False
        self.reopen_policy = self.cfg.reopen_policy(seed=fw._seed).validate()
        self._reopen_attempts = 0
        self._requests: list[QueryRequest] = []
        #: Optional hook ``fn(fw, t0)`` called after session setup and
        #: before the event loop runs; test scaffolding uses it to
        #: schedule deliberate state corruption the auditor must catch.
        self.on_session_start = None

    @property
    def _rng(self):
        # Looked up per use, never cached: a checkpoint restore rebuilds
        # the registry's generators, so a held reference would keep
        # drawing from the crashed timeline's (stale) generator.
        return self.fw.rngs.stream("service")

    @property
    def _mx(self):
        # Same discipline as ``_rng``: the engine rebuilds its metrics
        # registry on every session reset, so it is fetched per use.
        # None when the engine runs without telemetry.
        return self.fw.telemetry

    # ------------------------------------------------------------------- run

    def run(
        self, requests: list[QueryRequest], max_events: int | None = None
    ) -> ServiceOutcome:
        """Serve ``requests`` to completion; returns the outcome.

        Arrival offsets are relative to service readiness (hot-block
        preload done).  Raises
        :class:`~repro.common.errors.InvariantViolation` if the online
        auditor finds corrupted accounting at any point, and
        :class:`~repro.common.errors.PowerLossError` if a scheduled
        power loss fires mid-run (call :meth:`resume` to recover).
        """
        if not requests:
            raise ConfigError("no requests to serve")
        seen: set[int] = set()
        for req in requests:
            req.validate()
            if req.query_id in seen:
                raise ConfigError(f"duplicate query_id {req.query_id}")
            seen.add(req.query_id)
            if req.length > self.cfg.max_walk_length:
                raise ConfigError(
                    f"query {req.query_id}: length {req.length} exceeds the "
                    f"service max_walk_length {self.cfg.max_walk_length}"
                )
        ordered = sorted(requests, key=lambda r: (r.arrival, r.query_id))
        self._requests = ordered
        fw = self.fw
        expected = sum(r.num_walks for r in ordered)
        self._t0 = fw.start_session(
            WalkSpec(length=self.cfg.max_walk_length), expected_walks=expected
        )
        # start_session rebuilt the registry, so the SLO burn-rate rules
        # are re-armed here, once per serving session.
        if fw.telemetry is not None:
            fw.telemetry.add_rules(default_service_rules())
        fw._on_completed = self._on_completed
        fw._checkpoint_extra = self._snapshot_state
        try:
            for req in ordered:
                fw.sim.at(
                    self._t0 + req.arrival, lambda r=req: self._arrive(r)
                )
            if self.on_session_start is not None:
                self.on_session_start(fw, self._t0)
            fw.sim.run(max_events=max_events)
            self.auditor.audit(final=True)
        finally:
            fw._on_completed = None
        result = fw._finalize_run()
        result.service = self._service_section()
        return ServiceOutcome(result=result, responses=list(self.responses))

    # ------------------------------------------------------------- durability

    def _snapshot_state(self) -> dict:
        """Service bookkeeping packed into each engine checkpoint.

        Wired as ``fw._checkpoint_extra``; everything mutable is copied
        so later events on the (about-to-crash) timeline cannot reach
        back into the snapshot.  Request and response objects are never
        mutated after creation, so they are stored by reference.
        """
        snap = {
            "queries": [
                {
                    "req": st.req,
                    "t_arrival": st.t_arrival,
                    "deadline_abs": st.deadline_abs,
                    "walks_done": st.walks_done,
                    "injected": st.injected,
                    "responded": st.responded,
                    **(
                        {"retry_budget": st.retry_budget}
                        if st.retry_budget is not None
                        else {}
                    ),
                }
                for st in self.states.values()
            ],
            "responses": list(self.responses),
            "counters": {
                "arrivals": self.arrivals,
                "ok_count": self.ok_count,
                "timed_out_count": self.timed_out_count,
                "shed_count": self.shed_count,
                "walks_injected": self.walks_injected,
                "zombie_walks": self.zombie_walks,
                "deadline_misses": self.deadline_misses,
                "deferrals": self.deferrals,
                "reopen_attempts": self._reopen_attempts,
            },
            "queue": {
                "ids": [r.query_id for r in self.queue._q],
                "tokens": self.queue._tokens,
                "last_refill": self.queue._last_refill,
                "admitted": self.queue.admitted,
                "rejected": self.queue.rejected,
                "shed_oldest": self.queue.shed_oldest,
                "rate_limited": self.queue.rate_limited,
                "peak_depth": self.queue.peak_depth,
            },
            "breaker": {
                "open_until": self.breaker.open_until,
                "trips": self.breaker.trips,
                "seen_chip_failures": self.breaker._seen_chip_failures,
                "seen_exhausted": self.breaker._seen_exhausted,
                "seen_corruption": self.breaker._seen_corruption,
            },
            "t0": self._t0,
        }
        # Gray-resilience state rides along only when the knob is on,
        # so disabled configs keep pre-gray checkpoints byte-identical.
        if self.cfg.query_retry_budget > 0:
            snap["counters"]["retry_budget_exhausted"] = (
                self.retry_budget_exhausted
            )
        if self.brownout is not None:
            snap["brownout"] = {
                "controller": self.brownout.snapshot(),
                "recent_misses": list(self._recent_misses),
            }
        return snap

    def _restore_state(self, d: dict) -> None:
        """Inverse of :meth:`_snapshot_state`."""
        self.states = {}
        for q in d["queries"]:
            st = _QueryState(
                req=q["req"],
                t_arrival=q["t_arrival"],
                deadline_abs=q["deadline_abs"],
                walks_done=q["walks_done"],
                injected=q["injected"],
                responded=q["responded"],
                retry_budget=q.get("retry_budget"),
            )
            self.states[st.req.query_id] = st
        self.responses = list(d["responses"])
        c = d["counters"]
        self.arrivals = c["arrivals"]
        self.ok_count = c["ok_count"]
        self.timed_out_count = c["timed_out_count"]
        self.shed_count = c["shed_count"]
        self.walks_injected = c["walks_injected"]
        self.zombie_walks = c["zombie_walks"]
        self.deadline_misses = c["deadline_misses"]
        self.deferrals = c["deferrals"]
        self._reopen_attempts = c.get("reopen_attempts", 0)
        self.retry_budget_exhausted = c.get("retry_budget_exhausted", 0)
        if self.brownout is not None and "brownout" in d:
            bo = d["brownout"]
            self.brownout.restore(bo["controller"])
            self._recent_misses.clear()
            self._recent_misses.extend(bo["recent_misses"])
            self.queue.rate_factor = self.brownout.admit_rate_factor()
        q = d["queue"]
        self.queue._q.clear()
        self.queue._q.extend(self.states[qid].req for qid in q["ids"])
        self.queue._tokens = q["tokens"]
        self.queue._last_refill = q["last_refill"]
        self.queue.admitted = q["admitted"]
        self.queue.rejected = q["rejected"]
        self.queue.shed_oldest = q["shed_oldest"]
        self.queue.rate_limited = q["rate_limited"]
        self.queue.peak_depth = q["peak_depth"]
        b = d["breaker"]
        self.breaker.open_until = b["open_until"]
        self.breaker.trips = b["trips"]
        self.breaker._seen_chip_failures = b["seen_chip_failures"]
        self.breaker._seen_exhausted = b["seen_exhausted"]
        self.breaker._seen_corruption = b["seen_corruption"]
        self._t0 = d["t0"]

    def resume(self, max_events: int | None = None) -> ServiceOutcome:
        """Recover a service run interrupted by power loss.

        Restores both the engine (latest checkpoint) and the service's
        own bookkeeping packed alongside it, re-schedules the arrival
        events of requests the crashed timeline had not delivered yet
        and the deadline events of still-pending queries, then replays
        to completion.  In-flight queries at the crash survive: their
        walks resume from the recovered buffers and are credited back
        as usual.  The outcome carries the crash's RPO/RTO accounting
        under ``result.durability["recovery"]``; audit cadence restarts
        at the restore point, so audit *counts* are a documented
        recovery variant while responses and SLO metrics are not.
        """
        fw = self.fw
        snap = fw.latest_checkpoint
        if snap is None:
            raise SimulationError(
                "no checkpoint available to recover the service from "
                "(cold restart required)"
            )
        ctx = fw._crash_context(snap)
        fw.restore_for_resume(snap)
        extra = fw._restored_extra
        if extra is None:
            raise SimulationError(
                "checkpoint carries no service state; was it taken by a "
                "plain batch run?"
            )
        self._restore_state(extra)
        now = fw.sim.now
        if fw.telemetry is not None:
            fw.telemetry.add_rules(default_service_rules())
        fw._on_completed = self._on_completed
        fw._checkpoint_extra = self._snapshot_state
        # Audit cadence restarts on the recovered timeline; the event
        # counter itself restarted with the simulator.
        self.auditor._last_audit_events = 0
        self.auditor._last_now = now
        self._dispatch_scheduled = False
        self._retry_scheduled = False
        try:
            for req in self._requests:
                if req.query_id not in self.states:
                    fw.sim.at(
                        max(now, self._t0 + req.arrival),
                        lambda r=req: self._arrive(r),
                    )
            for st in self.states.values():
                if not st.responded:
                    st.deadline_event = fw.sim.at(
                        max(now, st.deadline_abs),
                        lambda qid=st.req.query_id: self._deadline(qid),
                    )
            self._schedule_dispatch()
            fw._kick_chips(now)
            fw._service_barriers(now)
            fw.sim.run(max_events=max_events)
            self.auditor.audit(final=True)
        finally:
            fw._on_completed = None
        result = fw._finalize_run()
        result.service = self._service_section()
        if result.durability is not None:
            result.durability = dict(result.durability, recovery=ctx)
        return ServiceOutcome(result=result, responses=list(self.responses))

    # ------------------------------------------------------------ admission

    def _arrive(self, req: QueryRequest) -> None:
        t = self.fw.sim.now
        self.arrivals += 1
        mx = self._mx
        if mx is not None:
            mx.counter("service_arrivals").inc(1.0, t)
        st = _QueryState(req=req, t_arrival=t, deadline_abs=t + req.deadline)
        if self.cfg.query_retry_budget > 0:
            st.retry_budget = self.cfg.query_retry_budget
        self.states[req.query_id] = st
        if (
            self.cfg.breaker_enabled
            and self.cfg.breaker_policy == "shed"
            and self.breaker.is_open(t)
        ):
            self._respond(st, "shed", t, shed_reason="breaker-open", admitted=False)
            self.auditor.maybe_audit()
            return
        admitted, evicted, refusal = self.queue.offer(req, t)
        if evicted is not None:
            ev = self.states[evicted.query_id]
            self._respond(ev, "shed", t, shed_reason="shed-oldest", admitted=True)
        if not admitted:
            self._respond(st, "shed", t, shed_reason=refusal, admitted=False)
            self.auditor.maybe_audit()
            return
        if mx is not None:
            mx.gauge("service_queue_depth").set(float(len(self.queue)), t)
        st.deadline_event = self.fw.sim.at(
            st.deadline_abs, lambda qid=req.query_id: self._deadline(qid)
        )
        self._schedule_dispatch()
        self.auditor.maybe_audit()

    # ------------------------------------------------------------- dispatch

    def _schedule_dispatch(self) -> None:
        """Coalesce dispatch work into one same-time simulator event.

        The engine's event loop is non-reentrant, so arrival/completion
        handlers never inject walks directly; they schedule this event
        at the current time instead.
        """
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True
        self.fw.sim.at(self.fw.sim.now, self._dispatch_event)

    def _dispatch_event(self) -> None:
        self._dispatch_scheduled = False
        self._dispatch(self.fw.sim.now)

    def _dispatch(self, t: float) -> None:
        fw = self.fw
        while len(self.queue):
            head = self.queue.peek()
            st = self.states[head.query_id]
            if st.responded:
                # Timed out or shed while queued; nothing to inject.
                self.queue.pop()
                continue
            if self.cfg.breaker_enabled and self.cfg.breaker_policy == "defer":
                if self.breaker.is_open(t):
                    if st.retry_budget is not None and (
                        self.breaker.open_until < st.deadline_abs
                    ):
                        # A reopen retry that can still land before the
                        # deadline charges the head query's budget; one
                        # past the deadline cannot change the answer,
                        # so it is never charged (the deadline event
                        # owns that query).
                        if st.retry_budget <= 0:
                            self.retry_budget_exhausted += 1
                            mx = self._mx
                            if mx is not None:
                                mx.counter(
                                    "service_retry_budget_exhausted"
                                ).inc(1.0, t)
                            self.queue.pop()
                            self._respond(
                                st, "shed", t,
                                shed_reason="retry-budget-exhausted",
                                admitted=True,
                            )
                            continue
                        st.retry_budget -= 1
                    self.deferrals += 1
                    self._schedule_retry(self.breaker.open_until)
                    break
                self._reopen_attempts = 0
            backlog = fw.total_walks - fw.completed_walks
            inflight_cap = self.cfg.max_inflight_walks
            if self.brownout is not None and self.brownout.active:
                inflight_cap = max(
                    1, int(inflight_cap * self.brownout.capacity_factor)
                )
            if backlog > 0 and backlog + head.num_walks > inflight_cap:
                # Backpressure: completions re-trigger dispatch.
                break
            self.queue.pop()
            if head.starts is not None:
                starts = np.asarray(head.starts, dtype=np.int64)
            else:
                starts = start_vertices(fw.graph, head.num_walks, self._rng)
            walks = WalkSet.start(starts, head.length)
            # src is never used as a graph index by the engine; carry
            # the query id so completions credit back to their query.
            walks.src[:] = head.query_id
            st.injected = True
            self.walks_injected += head.num_walks
            fw.inject_walks(walks)
        mx = self._mx
        if mx is not None:
            mx.gauge("service_queue_depth").set(float(len(self.queue)), t)
        self.auditor.maybe_audit()

    def _schedule_retry(self, at: float) -> None:
        """Re-run dispatch once the breaker cooldown elapses.

        Without this, a deferred queue would starve when the engine
        drains (no completion event would ever re-trigger dispatch).
        Consecutive reopen attempts back off per the shared
        :class:`~repro.common.backoff.RetryPolicy` — the same policy
        class the cluster uses for migration-RPC retransmits — with
        the attempt counter resetting once dispatch gets past the
        breaker.
        """
        if self._retry_scheduled:
            return
        self._retry_scheduled = True
        at = max(at, self.fw.sim.now) + self.reopen_policy.delay(
            self._reopen_attempts
        )
        self._reopen_attempts += 1

        def retry():
            self._retry_scheduled = False
            self._schedule_dispatch()

        self.fw.sim.at(at, retry)

    # ---------------------------------------------------------- completions

    def _on_completed(self, t: float, walks: WalkSet) -> None:
        """Engine hook: credit finished walks back to their queries.

        ``t`` may lie slightly ahead of ``sim.now`` (chip batches charge
        their full busy span up front), so a completion past the
        deadline is left for the deadline event to answer as a partial
        result.
        """
        if not len(walks):
            return
        ids, counts = np.unique(walks.src, return_counts=True)
        for qid, n in zip(ids.tolist(), counts.tolist()):
            st = self.states[qid]
            st.walks_done += n
            if st.responded:
                # Walks of an already-answered (timed out) query running
                # to completion in the background.
                self.zombie_walks += n
            elif st.walks_done >= st.req.num_walks and t <= st.deadline_abs:
                self._respond(st, "ok", t, admitted=True)
        if len(self.queue):
            self._schedule_dispatch()
        self.auditor.maybe_audit()

    def _deadline(self, query_id: int) -> None:
        st = self.states[query_id]
        st.deadline_event = None
        if st.responded:
            return
        self.deadline_misses += 1
        mx = self._mx
        if mx is not None:
            mx.counter("service_deadline_misses").inc(1.0, self.fw.sim.now)
        self._respond(st, "timed_out", self.fw.sim.now, admitted=True)
        # Freed deadline headroom does not add capacity, but queued
        # work may have been blocked purely on this query's backlog.
        if len(self.queue):
            self._schedule_dispatch()

    # ------------------------------------------------------------ responses

    def _respond(
        self,
        st: _QueryState,
        status: str,
        t: float,
        *,
        admitted: bool,
        shed_reason: str | None = None,
    ) -> None:
        st.responded = True
        if st.deadline_event is not None:
            st.deadline_event.cancel()
            st.deadline_event = None
        latency = 0.0 if status == "shed" else t - st.t_arrival
        self.responses.append(
            QueryResult(
                query_id=st.req.query_id,
                arrival=st.req.arrival,
                admitted=admitted,
                status=status,
                walks_requested=st.req.num_walks,
                walks_completed=st.walks_done,
                finish_time=t,
                latency=latency,
                shed_reason=shed_reason,
            )
        )
        stats = self.fw.metrics.stats
        if status == "ok":
            self.ok_count += 1
            stats.counter("svc_queries_ok").add(1)
        elif status == "timed_out":
            self.timed_out_count += 1
            stats.counter("svc_queries_timed_out").add(1)
        else:
            self.shed_count += 1
            stats.counter("svc_queries_shed").add(1)
        mx = self._mx
        if mx is not None:
            mx.counter("service_responses").inc(1.0, t)
            mx.counter("service_status", status=status).inc(1.0, t)
            if status == "shed":
                mx.counter("service_shed").inc(1.0, t)
            else:
                mx.histogram("service_latency_seconds",
                             _LATENCY_BUCKETS).observe(latency, t)
        if self.brownout is not None:
            # Deadline misses are the service's gray-failure pressure
            # signal; sheds are excluded (they are the brownout's own
            # output, and feeding them back would latch it on).
            self._recent_misses.append(1 if status == "timed_out" else 0)
            pressure = sum(self._recent_misses) / len(self._recent_misses)
            was = self.brownout.active
            self.brownout.observe(
                pressure, epoch=len(self.responses), now=t
            )
            self.queue.rate_factor = self.brownout.admit_rate_factor()
            if mx is not None and self.brownout.active != was:
                mx.gauge("service_brownout_active").set(
                    1.0 if self.brownout.active else 0.0, t
                )

    # --------------------------------------------------------------- report

    def _service_section(self) -> dict:
        ok_lat = np.asarray(
            [r.latency for r in self.responses if r.status == "ok"], dtype=float
        )
        if ok_lat.size:
            p50, p95, p99 = (
                float(np.percentile(ok_lat, q)) for q in (50.0, 95.0, 99.0)
            )
            lat = {
                "n": int(ok_lat.size),
                "mean": float(ok_lat.mean()),
                "max": float(ok_lat.max()),
                "p50": p50,
                "p95": p95,
                "p99": p99,
            }
        else:
            lat = {"n": 0, "mean": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        arrivals = max(self.arrivals, 1)
        requests = {
            "arrivals": self.arrivals,
            "ok": self.ok_count,
            "timed_out": self.timed_out_count,
            "shed": self.shed_count,
            "deadline_misses": self.deadline_misses,
        }
        # Gray-resilience keys only appear with their knob on, so
        # legacy reports stay byte-identical.
        if self.cfg.query_retry_budget > 0:
            requests["retry_budget_exhausted"] = self.retry_budget_exhausted
        section = {
            "requests": requests,
            "walks": {
                "injected": self.walks_injected,
                "zombie": self.zombie_walks,
            },
            "latency": lat,
            "shed_rate": self.shed_count / arrivals,
            "deadline_miss_rate": self.timed_out_count / arrivals,
            "queue": self.queue.stats(),
            "breaker": {**self.breaker.stats(), "deferrals": self.deferrals},
            "audit": self.auditor.stats(),
        }
        if self.brownout is not None:
            section["brownout"] = self.brownout.stats()
        return section
