"""Service-layer configuration.

Deliberately *not* part of :class:`~repro.common.config.FlashWalkerConfig`:
the engine's config fingerprint names the simulated hardware and
workload shape, and the same device can serve queries under many
admission policies.  Keeping :class:`ServiceConfig` separate also keeps
batch-run reports byte-identical whether or not the service package is
installed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.backoff import RetryPolicy
from ..common.errors import ConfigError

__all__ = ["ServiceConfig"]

_ADMISSION_POLICIES = ("reject", "shed-oldest", "token-bucket")
_BREAKER_POLICIES = ("shed", "defer")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the always-on query service (:class:`WalkQueryService`).

    ``admission_policy`` decides what happens when the bounded queue is
    full: ``reject`` refuses the newcomer, ``shed-oldest`` evicts the
    stalest queued query to make room, ``token-bucket`` additionally
    rate-limits arrivals to ``rate_limit_qps`` (burst
    ``rate_limit_burst``) before the capacity check.  ``max_inflight_walks``
    bounds how many walks the dispatcher keeps in the engine at once —
    the open-loop backpressure point.  ``breaker_*`` configures the
    circuit breaker fed by the fault model's degraded-mode signals.
    ``audit_interval_events`` runs the invariant auditor every N
    simulator events (0 disables periodic audits; the end-of-run audit
    always runs).
    """

    queue_capacity: int = 64
    admission_policy: str = "reject"
    rate_limit_qps: float = 0.0
    rate_limit_burst: int = 8
    max_inflight_walks: int = 4096
    max_walk_length: int = 6
    default_deadline: float = 20e-3
    breaker_enabled: bool = True
    breaker_policy: str = "shed"
    breaker_cooldown: float = 2e-3
    breaker_exhausted_threshold: int = 1
    breaker_corruption_threshold: int = 1
    #: Backoff between consecutive breaker reopen retries (the shared
    #: :class:`~repro.common.backoff.RetryPolicy`).  The default base
    #: of 0 keeps the legacy schedule: retry exactly at ``open_until``.
    reopen_backoff_base: float = 0.0
    reopen_backoff_factor: float = 2.0
    reopen_backoff_cap: float = 10e-3
    reopen_backoff_jitter: float = 0.0
    audit_interval_events: int = 256
    # -- gray-failure resilience (all opt-in; the defaults leave
    #    behavior and reports byte-identical to pre-gray builds) -------
    #: Breaker-reopen retries a deferred query may consume before it is
    #: shed with reason ``retry-budget-exhausted`` (0 = unlimited, the
    #: legacy behavior).  Retries that could only land after the
    #: query's deadline are never charged — they cannot change the
    #: answer, so the deadline event owns them.
    query_retry_budget: int = 0
    #: Brownout admission: when the trailing deadline-miss fraction
    #: over the last ``brownout_window`` responses crosses
    #: ``brownout_enter_pressure``, scale the dispatcher's inflight
    #: budget and the token-bucket refill rate down by the factors
    #: until pressure falls back to ``brownout_exit_pressure``.
    brownout_enabled: bool = False
    brownout_enter_pressure: float = 0.25
    brownout_exit_pressure: float = 0.0
    brownout_capacity_factor: float = 0.5
    brownout_rate_factor: float = 0.5
    brownout_window: int = 16

    def validate(self) -> "ServiceConfig":
        if self.queue_capacity < 1:
            raise ConfigError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.admission_policy not in _ADMISSION_POLICIES:
            raise ConfigError(
                f"unknown admission_policy {self.admission_policy!r}; "
                f"expected one of {_ADMISSION_POLICIES}"
            )
        if self.admission_policy == "token-bucket" and self.rate_limit_qps <= 0:
            raise ConfigError("token-bucket policy needs rate_limit_qps > 0")
        if self.rate_limit_qps < 0:
            raise ConfigError(f"negative rate_limit_qps {self.rate_limit_qps}")
        if self.rate_limit_burst < 1:
            raise ConfigError(f"rate_limit_burst must be >= 1, got {self.rate_limit_burst}")
        if self.max_inflight_walks < 1:
            raise ConfigError(
                f"max_inflight_walks must be >= 1, got {self.max_inflight_walks}"
            )
        if self.max_walk_length < 1:
            raise ConfigError(f"max_walk_length must be >= 1, got {self.max_walk_length}")
        if self.default_deadline <= 0:
            raise ConfigError(f"default_deadline must be > 0, got {self.default_deadline}")
        if self.breaker_policy not in _BREAKER_POLICIES:
            raise ConfigError(
                f"unknown breaker_policy {self.breaker_policy!r}; "
                f"expected one of {_BREAKER_POLICIES}"
            )
        if self.breaker_cooldown <= 0:
            raise ConfigError(f"breaker_cooldown must be > 0, got {self.breaker_cooldown}")
        if self.breaker_exhausted_threshold < 1:
            raise ConfigError("breaker_exhausted_threshold must be >= 1")
        if self.breaker_corruption_threshold < 1:
            raise ConfigError("breaker_corruption_threshold must be >= 1")
        self.reopen_policy(seed=0).validate()
        if self.audit_interval_events < 0:
            raise ConfigError(
                f"negative audit_interval_events {self.audit_interval_events}"
            )
        if self.query_retry_budget < 0:
            raise ConfigError(
                f"negative query_retry_budget {self.query_retry_budget}"
            )
        if self.brownout_enabled:
            if not 0.0 < self.brownout_enter_pressure <= 1.0:
                raise ConfigError(
                    "brownout_enter_pressure must be in (0, 1], got "
                    f"{self.brownout_enter_pressure}"
                )
            if not (
                0.0 <= self.brownout_exit_pressure
                < self.brownout_enter_pressure
            ):
                raise ConfigError(
                    "brownout_exit_pressure must be in [0, enter), got "
                    f"{self.brownout_exit_pressure}"
                )
            for name in ("brownout_capacity_factor", "brownout_rate_factor"):
                v = getattr(self, name)
                if not 0.0 < v <= 1.0:
                    raise ConfigError(f"{name} must be in (0, 1], got {v}")
            if self.brownout_window < 1:
                raise ConfigError(
                    f"brownout_window must be >= 1, got {self.brownout_window}"
                )
        return self

    def reopen_policy(self, seed: int) -> RetryPolicy:
        """The breaker's reopen-retry backoff, seeded for jitter."""
        return RetryPolicy(
            base_delay=self.reopen_backoff_base,
            factor=self.reopen_backoff_factor,
            max_delay=self.reopen_backoff_cap,
            max_attempts=1 << 30,  # reopens retry forever; only delays grow
            jitter_frac=self.reopen_backoff_jitter,
            seed=seed,
            salt="breaker-reopen",
        )
