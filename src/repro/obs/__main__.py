"""``python -m repro.obs`` == ``python -m repro.obs.cli``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
