"""Perf-trajectory gate: diff fresh ``BENCH_*.json`` against a baseline.

The ROADMAP's perf-gate item: benchmark wall-seconds are committed once
as ``benchmarks/results/TRAJECTORY.json`` and every CI run diffs its
fresh bench artifacts against that trajectory.  A bench that got slower
by more than the tolerance band fails the gate (nonzero exit), so perf
regressions fail loudly instead of silting up; a bench that got faster
prints as an improvement and is a hint to re-seed the trajectory.

Wall clocks are machine-dependent, so the gate compares *ratios* with a
generous default band and ignores benches below ``--min-seconds``
(noise floor).  Re-seed after intentional perf changes with::

    python -m repro.obs.perfgate update --out benchmarks/results/TRAJECTORY.json \\
        benchmarks/results/BENCH_*.json

and gate with::

    python -m repro.obs.perfgate check --trajectory benchmarks/results/TRAJECTORY.json \\
        --fresh-dir benchmarks/results --tolerance 0.5
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

__all__ = [
    "TRAJECTORY_SCHEMA",
    "build_trajectory",
    "compare_to_trajectory",
    "main",
]

TRAJECTORY_SCHEMA = "repro.obs.perf-trajectory"
TRAJECTORY_SCHEMA_VERSION = 1

BENCH_SCHEMA = "repro.obs.bench-artifact"


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def _load_benches(paths) -> dict[str, dict]:
    """Load BENCH artifacts keyed by bench stem; reject other JSON."""
    out: dict[str, dict] = {}
    for path in paths:
        obj = _load(path)
        if obj.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{path}: not a bench artifact "
                f"(schema={obj.get('schema')!r}, expected {BENCH_SCHEMA!r})"
            )
        out[str(obj["bench"])] = obj
    return out


def build_trajectory(bench_paths, *, note: str = "") -> dict:
    """Trajectory dict from one set of BENCH artifacts."""
    benches = _load_benches(bench_paths)
    if not benches:
        raise ValueError("no bench artifacts given")
    entry = {}
    for stem, obj in sorted(benches.items()):
        entry[stem] = {
            "wall_seconds": float(obj["wall_seconds"]),
            "context": obj.get("context", {}),
            "tests": {
                name: float(rec["wall_seconds"])
                for name, rec in sorted(obj.get("tests", {}).items())
            },
        }
    out = {
        "schema": TRAJECTORY_SCHEMA,
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "benches": entry,
    }
    if note:
        out["note"] = note
    return out


def compare_to_trajectory(
    trajectory: dict,
    bench_paths,
    *,
    tolerance: float = 0.5,
    min_seconds: float = 0.5,
) -> tuple[list[dict], list[dict]]:
    """Diff fresh artifacts against ``trajectory``.

    Returns ``(rows, regressions)``: one row per bench present in either
    side, with ``status`` in {"ok", "improved", "regressed", "missing",
    "untracked", "skipped"}.  ``regressions`` is the subset that fails
    the gate: fresh wall time above ``baseline * (1 + tolerance)`` with
    both sides over the ``min_seconds`` noise floor.
    """
    if trajectory.get("schema") != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"trajectory schema {trajectory.get('schema')!r} "
            f"!= {TRAJECTORY_SCHEMA!r}"
        )
    fresh = _load_benches(bench_paths)
    base = trajectory.get("benches", {})
    rows: list[dict] = []
    regressions: list[dict] = []
    for stem in sorted(set(base) | set(fresh)):
        if stem not in fresh:
            rows.append({"bench": stem, "status": "missing",
                         "baseline": base[stem]["wall_seconds"]})
            continue
        wall = float(fresh[stem]["wall_seconds"])
        if stem not in base:
            rows.append({"bench": stem, "status": "untracked", "fresh": wall})
            continue
        baseline = float(base[stem]["wall_seconds"])
        row = {
            "bench": stem,
            "baseline": baseline,
            "fresh": wall,
            "ratio": wall / baseline if baseline > 0 else float("inf"),
        }
        if baseline < min_seconds and wall < min_seconds:
            row["status"] = "skipped"
        elif wall > baseline * (1.0 + tolerance):
            row["status"] = "regressed"
            regressions.append(row)
        elif wall < baseline / (1.0 + tolerance):
            row["status"] = "improved"
        else:
            row["status"] = "ok"
        rows.append(row)
    return rows, regressions


def _expand(paths_or_dir: list[str], fresh_dir: str | None) -> list[str]:
    paths = list(paths_or_dir)
    if fresh_dir:
        paths.extend(
            sorted(glob.glob(os.path.join(fresh_dir, "BENCH_*.json")))
        )
    return paths


def _cmd_check(args) -> int:
    trajectory = _load(args.trajectory)
    paths = _expand(args.bench, args.fresh_dir)
    if not paths:
        print("perfgate: no fresh BENCH_*.json artifacts found",
              file=sys.stderr)
        return 2
    rows, regressions = compare_to_trajectory(
        trajectory, paths,
        tolerance=args.tolerance, min_seconds=args.min_seconds,
    )
    width = max(len(r["bench"]) for r in rows)
    for r in rows:
        if "ratio" in r:
            detail = (f"{r['baseline']:8.2f}s -> {r['fresh']:8.2f}s "
                      f"({r['ratio']:.2f}x)")
        elif "baseline" in r:
            detail = f"baseline {r['baseline']:.2f}s, not measured"
        else:
            detail = f"fresh {r['fresh']:.2f}s, not in trajectory"
        print(f"{r['bench'].ljust(width)}  {r['status']:<10} {detail}")
    if regressions:
        names = ", ".join(r["bench"] for r in regressions)
        print(f"perfgate: FAIL — {len(regressions)} regression(s) beyond "
              f"+{args.tolerance:.0%}: {names}", file=sys.stderr)
        return 1
    print(f"perfgate: ok ({len(rows)} bench(es), "
          f"tolerance +{args.tolerance:.0%})")
    return 0


def _cmd_update(args) -> int:
    paths = _expand(args.bench, args.fresh_dir)
    trajectory = build_trajectory(paths, note=args.note)
    text = json.dumps(trajectory, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(text + "\n")
    print(f"wrote {args.out} ({len(trajectory['benches'])} bench(es))")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.perfgate", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="gate fresh artifacts on the trajectory")
    p.add_argument("bench", nargs="*", help="fresh BENCH_*.json paths")
    p.add_argument("--trajectory", default="benchmarks/results/TRAJECTORY.json")
    p.add_argument("--fresh-dir", default=None,
                   help="directory to glob BENCH_*.json from")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed slowdown fraction (default 0.5 = +50%%)")
    p.add_argument("--min-seconds", type=float, default=0.5,
                   help="noise floor; benches under this on both sides "
                        "are never gated (default 0.5s)")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("update", help="(re-)seed the trajectory file")
    p.add_argument("bench", nargs="*", help="BENCH_*.json paths")
    p.add_argument("--fresh-dir", default=None,
                   help="directory to glob BENCH_*.json from")
    p.add_argument("--out", default="benchmarks/results/TRAJECTORY.json")
    p.add_argument("--note", default="", help="free-form provenance note")
    p.set_defaults(fn=_cmd_update)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
