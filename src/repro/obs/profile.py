"""Wall-clock profiling of the event loop.

The simulator's hot path is ``heappop -> callback``; when campaigns get
slow it is almost always one callback *category* (chip batches, board
direction, channel collection) dominating host time.  The profiler
times every callback with ``perf_counter`` and aggregates by the
callback's qualified name, so ``RunResult.to_report()`` can answer
"where did the host's wall clock go?" without an external profiler.

Strictly opt-in: :class:`~repro.sim.engine.Simulator` holds
``profiler = None`` and the only disabled-path cost is that attribute
check per event.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["EventLoopProfiler"]


def _category(fn) -> str:
    """Stable aggregation key for a callback.

    Bound methods and lambdas both carry a ``__qualname__`` naming the
    defining scope (``FlashWalker._start_load.<locals>.<lambda>``); the
    lambda suffix is stripped so the category names the scheduling site.
    """
    name = getattr(fn, "__qualname__", None) or repr(fn)
    return name.removesuffix(".<locals>.<lambda>")


class EventLoopProfiler:
    """Per-category wall-clock accounting for simulator callbacks."""

    __slots__ = ("_wall", "_calls", "_t_start", "wall_elapsed", "events")

    def __init__(self):
        self._wall: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._t_start: float | None = None
        self.wall_elapsed = 0.0
        self.events = 0

    # -- hooks called by Simulator -------------------------------------------

    def loop_started(self) -> None:
        self._t_start = perf_counter()

    def loop_stopped(self) -> None:
        if self._t_start is not None:
            self.wall_elapsed += perf_counter() - self._t_start
            self._t_start = None

    def record(self, fn, dt: float) -> None:
        cat = _category(fn)
        self._wall[cat] = self._wall.get(cat, 0.0) + dt
        self._calls[cat] = self._calls.get(cat, 0) + 1
        self.events += 1

    # -- reporting -----------------------------------------------------------

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_elapsed if self.wall_elapsed > 0 else 0.0

    def summary(self) -> dict:
        """Machine-readable summary, categories sorted by wall time."""
        cats = sorted(self._wall, key=self._wall.get, reverse=True)
        return {
            "wall_seconds": self.wall_elapsed,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "categories": {
                c: {"calls": self._calls[c], "wall_seconds": self._wall[c]}
                for c in cats
            },
        }

    def format(self) -> str:
        """Aligned text rendering of :meth:`summary` for CLI output."""
        s = self.summary()
        lines = [
            f"event loop: {s['events']} events in {s['wall_seconds']:.3f}s wall "
            f"({s['events_per_sec']:,.0f} events/s)"
        ]
        for cat, row in s["categories"].items():
            lines.append(
                f"  {row['wall_seconds']:8.4f}s  {row['calls']:>8} calls  {cat}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLoopProfiler(events={self.events}, wall={self.wall_elapsed:.3f}s)"
