"""Online alert rules over the deterministic metrics sample grid.

Two rule kinds (DESIGN.md §12):

- **threshold**: a predicate ``signal <op> threshold`` over one series,
  where ``signal`` is the sampled level (gauges, counter cumulative
  totals) or the per-sample increase (rates).  The rule fires once the
  predicate has held for ``for_samples`` consecutive samples and the
  firing window extends until it stops holding.
- **burn_rate**: the SLO guard.  Over a trailing window of
  ``window`` samples, the bad-event fraction
  ``Δ numerator / Δ denominator`` is divided by the error ``budget``;
  a burn rate ≥ ``threshold`` means the error budget is being consumed
  at least that many times faster than sustainable.

Rules are evaluated at sample boundaries in deterministic order (rule
declaration order, then series key), with no RNG and no wall clock —
two same-seed runs fire byte-identical alerts, which is what lets
firings live inside the versioned run report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError

__all__ = [
    "AlertRule",
    "AlertEngine",
    "default_engine_rules",
    "default_service_rules",
    "default_cluster_rules",
]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; see module docstring for semantics."""

    name: str
    metric: str
    kind: str = "threshold"          # "threshold" | "burn_rate"
    op: str = ">"
    threshold: float = 0.0
    #: "level" (sampled value) or "increase" (per-sample delta);
    #: threshold rules only.
    signal: str = "level"
    #: Consecutive samples the predicate must hold before firing.
    for_samples: int = 1
    #: Label selector: ((key, value), ...); a rule matches every series
    #: of ``metric`` whose labels are a superset.
    labels: tuple = ()
    # -- burn-rate fields --------------------------------------------------
    denominator: str | None = None
    budget: float = 0.01
    window: int = 4

    def validate(self) -> "AlertRule":
        if self.kind not in ("threshold", "burn_rate"):
            raise ConfigError(f"rule {self.name}: unknown kind {self.kind!r}")
        if self.op not in _OPS:
            raise ConfigError(f"rule {self.name}: unknown op {self.op!r}")
        if self.signal not in ("level", "increase"):
            raise ConfigError(
                f"rule {self.name}: unknown signal {self.signal!r}"
            )
        if self.for_samples < 1:
            raise ConfigError(
                f"rule {self.name}: for_samples must be >= 1, "
                f"got {self.for_samples}"
            )
        if self.kind == "burn_rate":
            if not self.denominator:
                raise ConfigError(
                    f"rule {self.name}: burn_rate needs a denominator metric"
                )
            if not 0.0 < self.budget <= 1.0:
                raise ConfigError(
                    f"rule {self.name}: budget must be in (0, 1], "
                    f"got {self.budget}"
                )
            if self.window < 1:
                raise ConfigError(
                    f"rule {self.name}: window must be >= 1, got {self.window}"
                )
        return self


class AlertEngine:
    """Evaluate rules against a :class:`MetricsRegistry`'s sample grid."""

    def __init__(self, rules):
        self.rules = tuple(r.validate() for r in rules)

    # ------------------------------------------------------------------ eval

    def evaluate(self, registry, t_end: float | None = None) -> list[dict]:
        """All firings, ordered by (rule order, series key, time)."""
        n, factor, interval = registry.grid(t_end)
        instruments = registry.instruments()
        by_name: dict[str, list] = {}
        for inst in instruments:
            by_name.setdefault(inst.name, []).append(inst)
        firings: list[dict] = []
        for rule in self.rules:
            targets = [
                inst
                for inst in by_name.get(rule.metric, [])
                if set(rule.labels) <= set(inst.labels)
            ]
            for inst in targets:
                signal = self._signal(rule, inst, by_name, n, factor)
                if signal is None:
                    continue
                firings.extend(
                    self._fire(rule, inst, signal, interval)
                )
        return firings

    def _signal(self, rule, inst, by_name, n, factor):
        values = inst.series(n, factor)
        if rule.kind == "threshold":
            if rule.signal == "level":
                return values
            return [
                values[i] - (values[i - 1] if i else 0.0) for i in range(n)
            ]
        # burn_rate: trailing-window bad fraction over the budget.
        den_candidates = [
            d
            for d in by_name.get(rule.denominator, [])
            if d.labels == inst.labels
        ] or [
            d for d in by_name.get(rule.denominator, []) if not d.labels
        ]
        if not den_candidates:
            return None
        den = den_candidates[0].series(n, factor)
        w = rule.window
        out = []
        for i in range(n):
            lo = i - w
            num_d = values[i] - (values[lo] if lo >= 0 else 0.0)
            den_d = den[i] - (den[lo] if lo >= 0 else 0.0)
            out.append((num_d / den_d) / rule.budget if den_d > 0 else 0.0)
        return out

    def _fire(self, rule, inst, signal, interval) -> list[dict]:
        op = _OPS[rule.op]
        firings: list[dict] = []
        run_start = None
        peak = 0.0

        def close(end_idx: int) -> None:
            nonlocal run_start, peak
            held = end_idx - run_start
            if held >= rule.for_samples:
                firings.append(
                    {
                        "rule": rule.name,
                        "kind": rule.kind,
                        "series": inst.key(),
                        "labels": dict(inst.labels),
                        "t_start": run_start * interval,
                        "t_end": end_idx * interval,
                        "samples": held,
                        "value": peak,
                        "threshold": rule.threshold,
                    }
                )
            run_start = None
            peak = 0.0

        for i, v in enumerate(signal):
            if op(v, rule.threshold):
                if run_start is None:
                    run_start = i
                    peak = v
                elif abs(v) > abs(peak):
                    peak = v
            elif run_start is not None:
                close(i)
        if run_start is not None:
            close(len(signal))
        return firings


# -- default rule sets -------------------------------------------------------
#
# Each layer registers its rules when it wires telemetry up, so one
# registry accumulates the full set and the report's firings cover the
# whole stack.  Thresholds are deliberately conservative: they flag
# genuinely degraded operation (a failed chip, exhausted retry ladders,
# sustained deadline-miss burn), not routine fault-model noise.


def default_engine_rules() -> list[AlertRule]:
    return [
        AlertRule(
            name="engine-degraded-mode",
            metric="engine_chips_failed",
            kind="threshold",
            op=">=",
            threshold=1.0,
            signal="level",
        ),
        AlertRule(
            name="engine-read-retries-exhausted",
            metric="fault_reads_exhausted",
            kind="threshold",
            op=">",
            threshold=0.0,
            signal="increase",
        ),
        AlertRule(
            name="durability-corruption-detected",
            metric="durability_corruption_detected",
            kind="threshold",
            op=">",
            threshold=0.0,
            signal="increase",
        ),
        AlertRule(
            name="durability-journal-backlog",
            metric="durability_journal_pending_records",
            kind="threshold",
            op=">=",
            threshold=512.0,
            signal="level",
            for_samples=2,
        ),
        # DFTL/GC health (the metrics only exist on DFTL-enabled runs;
        # rules on absent metrics never fire, so these are safe
        # unconditionally).  WAF >= 4 sustained means GC is rewriting
        # several pages per host page — the device is thrashing.
        AlertRule(
            name="ftl-write-amplification-high",
            metric="ftl_write_amplification",
            kind="threshold",
            op=">=",
            threshold=4.0,
            signal="level",
            for_samples=2,
        ),
        AlertRule(
            name="ftl-free-blocks-low",
            metric="ftl_free_blocks_min",
            kind="threshold",
            op="<=",
            threshold=1.0,
            signal="level",
            for_samples=2,
        ),
    ]


def default_service_rules(
    *, miss_budget: float = 0.05, burn_threshold: float = 1.0,
    window: int = 8,
) -> list[AlertRule]:
    return [
        AlertRule(
            name="service-deadline-miss-burn",
            metric="service_deadline_misses",
            kind="burn_rate",
            denominator="service_responses",
            budget=miss_budget,
            threshold=burn_threshold,
            op=">=",
            window=window,
        ),
        AlertRule(
            name="service-shed-burn",
            metric="service_shed",
            kind="burn_rate",
            denominator="service_arrivals",
            budget=miss_budget,
            threshold=burn_threshold,
            op=">=",
            window=window,
        ),
        AlertRule(
            name="service-breaker-open",
            metric="service_breaker_open",
            kind="threshold",
            op=">=",
            threshold=1.0,
            signal="level",
        ),
        # Gray-failure resilience (metrics exist only with per-query
        # retry budgets / brownout on; rules on absent metrics never
        # fire, so these are safe unconditionally).
        AlertRule(
            name="service-retry-budget-exhausted",
            metric="service_retry_budget_exhausted",
            kind="threshold",
            op=">",
            threshold=0.0,
            signal="increase",
        ),
        AlertRule(
            name="service-brownout-active",
            metric="service_brownout_active",
            kind="threshold",
            op=">=",
            threshold=1.0,
            signal="level",
        ),
    ]


def default_cluster_rules(
    *, miss_budget: float = 0.05, burn_threshold: float = 1.0,
    window: int = 8,
) -> list[AlertRule]:
    return [
        AlertRule(
            name="cluster-deadline-miss-burn",
            metric="cluster_deadline_misses",
            kind="burn_rate",
            denominator="cluster_responses",
            budget=miss_budget,
            threshold=burn_threshold,
            op=">=",
            window=window,
        ),
        AlertRule(
            name="cluster-shed-burn",
            metric="cluster_shed",
            kind="burn_rate",
            denominator="cluster_arrivals",
            budget=miss_budget,
            threshold=burn_threshold,
            op=">=",
            window=window,
        ),
        AlertRule(
            name="cluster-failover",
            metric="cluster_failovers",
            kind="threshold",
            op=">",
            threshold=0.0,
            signal="increase",
        ),
        AlertRule(
            name="cluster-link-retransmit-storm",
            metric="cluster_link_retransmits",
            kind="threshold",
            op=">=",
            threshold=8.0,
            signal="increase",
        ),
        AlertRule(
            name="cluster-breaker-open",
            metric="cluster_breaker_open",
            kind="threshold",
            op=">=",
            threshold=1.0,
            signal="level",
        ),
        # -- elastic membership -------------------------------------------
        AlertRule(
            name="cluster-resize-abort",
            metric="cluster_resize_aborts",
            kind="threshold",
            op=">",
            threshold=0.0,
            signal="increase",
        ),
        AlertRule(
            name="cluster-rebalance",
            metric="cluster_rebalances",
            kind="threshold",
            op=">",
            threshold=0.0,
            signal="increase",
        ),
        AlertRule(
            # Phase gauge: 2 = transfer, 3 = rollback.  A transfer pinned
            # high across many samples means handoff is not draining.
            name="cluster-resize-stuck",
            metric="cluster_resize_phase",
            kind="threshold",
            op=">=",
            threshold=2.0,
            signal="level",
            for_samples=4,
        ),
        # -- gray-failure resilience --------------------------------------
        # A suspect shard is the gray-failure tell: nothing tripped a
        # breaker, but the straggler detector sees it lagging its peers.
        AlertRule(
            name="cluster-straggler-suspected",
            metric="cluster_suspect_shards",
            kind="threshold",
            op=">=",
            threshold=1.0,
            signal="level",
        ),
        AlertRule(
            name="cluster-retry-budget-exhausted",
            metric="cluster_retry_budget_exhausted",
            kind="threshold",
            op=">",
            threshold=0.0,
            signal="increase",
        ),
        AlertRule(
            name="cluster-brownout-active",
            metric="cluster_brownout_active",
            kind="threshold",
            op=">=",
            threshold=1.0,
            signal="level",
        ),
    ]
