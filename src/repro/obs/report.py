"""Structured, versioned run reports.

A report is a plain-JSON summary of one run: schema version, config
fingerprint, seed, headline rates, all counters (totals *and* event
counts), per-component utilization, and latency percentiles when the
run was traced.  Reports are what CI archives, what ``cli diff``
compares across PRs, and what downstream tooling parses instead of
scraping ``RunResult.summary()`` strings.

The schema is versioned: any field removal or meaning change bumps
``REPORT_SCHEMA_VERSION``; additions are backwards-compatible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math

__all__ = [
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "build_report",
    "config_fingerprint",
    "diff_reports",
    "validate_report",
]

REPORT_SCHEMA = "repro.obs.run-report"
#: v2 (additive): optional "service" section with query-serving SLO
#: metrics when the run was driven through :mod:`repro.service`.
#: v3 (additive): optional "durability" section (checkpoint/journal/
#: integrity stats) when the run had :class:`DurabilityConfig` enabled,
#: with a "recovery" subsection (RPO/RTO) after a power-loss recovery.
#: v4 (additive): optional "telemetry" section (deterministic metrics
#: series + alert firings, :mod:`repro.obs.metrics`) when the run was
#: built with a :class:`~repro.obs.MetricsConfig`.
#: v5 (additive): optional "ftl" section (DFTL mapping-cache hit rates,
#: GC/wear/write-amplification stats, :mod:`repro.flash.cmt`) when the
#: run had :class:`~repro.common.config.FTLConfig` enabled.
REPORT_SCHEMA_VERSION = 5

#: Percentiles quoted for every latency histogram.
_PERCENTILES = (50.0, 90.0, 99.0)


def _jsonable(value):
    """Coerce numpy scalars/arrays and other oddballs to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return _jsonable(value.item())
        except (AttributeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return _jsonable(value.tolist())
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def config_fingerprint(config) -> str:
    """Stable short hash of a configuration.

    Accepts a dataclass (e.g. :class:`~repro.common.config.FlashWalkerConfig`)
    or any JSON-serializable mapping.  Two configs fingerprint equal iff
    their canonical JSON forms match, so a report unambiguously names
    the configuration that produced it without embedding all of it.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        obj = dataclasses.asdict(config)
    else:
        obj = config
    obj = _canonical_config(obj)
    canonical = json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _canonical_config(obj):
    """Drop opt-in subsystems introduced after v1 when they are disabled.

    Opt-in config sections added to the dataclasses after fingerprints
    were first committed (currently ``ssd.ftl`` and ``faults.slow``) are
    hashed only when ``enabled`` is true, so a default config keeps the
    exact fingerprint it had before the subsystem existed — turning the
    knob off must reproduce the pre-subsystem run *and* its identity.
    """
    if not isinstance(obj, dict):
        return obj

    def _strip_key(d: dict, key: str) -> dict:
        sub = d.get(key)
        if isinstance(sub, dict) and not sub.get("enabled", False):
            d = dict(d)
            del d[key]
        return d

    obj = _strip_key(obj, "ftl")  # a bare SSDConfig
    obj = _strip_key(obj, "slow")  # a bare FaultConfig
    ssd = obj.get("ssd")
    if isinstance(ssd, dict):
        stripped = _strip_key(ssd, "ftl")
        if stripped is not ssd:
            obj = dict(obj)
            obj["ssd"] = stripped
    faults = obj.get("faults")
    if isinstance(faults, dict):
        stripped = _strip_key(faults, "slow")
        if stripped is not faults:
            obj = dict(obj)
            obj["faults"] = stripped
    return obj


def _percentile_block(hist) -> dict:
    block = {
        "n": int(hist.total),
        "mean": float(hist.mean),
        "min": float(hist.min) if hist.total else 0.0,
        "max": float(hist.max) if hist.total else 0.0,
    }
    for q in _PERCENTILES:
        block[f"p{q:g}"] = float(hist.percentile(q))
    return block


def build_report(result, *, extra: dict | None = None) -> dict:
    """Build the versioned report dict for a ``RunResult``.

    Works on any result carrying the core fields; trace-derived sections
    (latency percentiles, utilization timelines' peaks, profile) appear
    only when the run was traced.  The output round-trips through
    ``json.dumps``/``loads`` unchanged.
    """
    elapsed = result.elapsed
    counters = {name: float(v) for name, v in sorted(result.counters.items())}
    report: dict = {
        "schema": REPORT_SCHEMA,
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": type(result).__name__,
        "seed": getattr(result, "seed", None),
        "config_fingerprint": getattr(result, "config_fingerprint", None),
        "elapsed": elapsed,
        "total_walks": result.total_walks,
        "hops": result.hops,
        "walks_per_sec": result.total_walks / elapsed if elapsed > 0 else 0.0,
        "hops_per_sec": result.hops / elapsed if elapsed > 0 else 0.0,
        "traffic": {
            "flash_read_bytes": result.flash_read_bytes,
            "flash_write_bytes": result.flash_write_bytes,
            "channel_bytes": result.channel_bytes,
            "dram_bytes": result.dram_bytes,
        },
        "counters": counters,
        "utilization": _jsonable(getattr(result, "utilization", lambda: {})()),
    }
    service = getattr(result, "service", None)
    if service is not None:
        report["service"] = _jsonable(service)
    durability = getattr(result, "durability", None)
    if durability is not None:
        report["durability"] = _jsonable(durability)
    ftl = getattr(result, "ftl", None)
    if ftl is not None:
        report["ftl"] = _jsonable(ftl)
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        report["telemetry"] = _jsonable(telemetry)
    trace = getattr(result, "trace", None)
    if trace is not None:
        report["latency_percentiles"] = {
            name: _percentile_block(hist)
            for name, hist in sorted(trace.latency_histograms().items())
        }
        report["buffer_highwater"] = _jsonable(trace.highwaters)
        report["trace"] = {
            "events": len(trace.events),
            "dropped": trace.dropped,
            "span_counts": trace.span_counts(),
        }
        if trace.profile is not None:
            report["event_loop_profile"] = _jsonable(trace.profile.summary())
    if extra:
        report["extra"] = _jsonable(extra)
    return _jsonable(report)


# -- diffing ----------------------------------------------------------------

#: Scalar top-level fields compared by diff_reports.
_DIFF_SCALARS = ("elapsed", "total_walks", "hops", "walks_per_sec", "hops_per_sec")


def diff_reports(a: dict, b: dict, rel_tol: float = 0.0) -> dict:
    """Compare two reports; returns {key: {"a":, "b":, "rel":}} of changes.

    ``rel_tol`` suppresses relative changes at or below the tolerance
    (useful for noisy wall-clock-derived fields).  Counters present in
    only one report diff against 0.
    """
    changes: dict[str, dict] = {}

    def _compare(key: str, va, vb) -> None:
        if va == vb:
            return
        try:
            fa, fb = float(va), float(vb)
        except (TypeError, ValueError):
            changes[key] = {"a": va, "b": vb, "rel": None}
            return
        base = max(abs(fa), abs(fb))
        rel = (fb - fa) / base if base else 0.0
        if abs(rel) > rel_tol:
            changes[key] = {"a": fa, "b": fb, "rel": rel}

    for key in _DIFF_SCALARS:
        _compare(key, a.get(key), b.get(key))
    for key in ("seed", "config_fingerprint", "schema_version"):
        if a.get(key) != b.get(key):
            changes[key] = {"a": a.get(key), "b": b.get(key), "rel": None}
    ca, cb = a.get("counters", {}), b.get("counters", {})
    for name in sorted(set(ca) | set(cb)):
        _compare(f"counters.{name}", ca.get(name, 0.0), cb.get(name, 0.0))
    ta, tb = a.get("traffic", {}), b.get("traffic", {})
    for name in sorted(set(ta) | set(tb)):
        _compare(f"traffic.{name}", ta.get(name, 0.0), tb.get(name, 0.0))
    # Structured sections are swept generically, so a report pair that
    # differs only in a *new* section (e.g. v4's "telemetry") names that
    # section instead of silently matching or failing bare.
    for section in sorted(_sections(a) | _sections(b)):
        sa, sb = a.get(section), b.get(section)
        if (sa is None) != (sb is None):
            changes[section] = {
                "a": "present" if sa is not None else None,
                "b": "present" if sb is not None else None,
                "rel": None,
            }
        elif sa is not None:
            fa, fb = _flatten(sa, section), _flatten(sb, section)
            for key in sorted(set(fa) | set(fb)):
                _compare(key, fa.get(key), fb.get(key))
    return changes


#: Top-level keys never swept as sections: scalars handled above, and
#: wall-clock-derived content that legitimately differs between
#: otherwise-identical runs.
_NON_SECTION_KEYS = frozenset(
    _DIFF_SCALARS
) | {
    "schema", "schema_version", "kind", "seed", "config_fingerprint",
    "counters", "traffic", "event_loop_profile",
}


def _sections(report: dict) -> set[str]:
    return {
        key
        for key, value in report.items()
        if key not in _NON_SECTION_KEYS and isinstance(value, (dict, list))
    }


def _flatten(obj, prefix: str) -> dict:
    """Flatten a nested report section to dotted scalar leaves."""
    out: dict = {}
    if isinstance(obj, dict):
        for k in sorted(obj):
            out.update(_flatten(obj[k], f"{prefix}.{k}"))
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            out.update(_flatten(v, f"{prefix}[{i}]"))
    else:
        out[prefix] = obj
    return out


# -- validation --------------------------------------------------------------

_REQUIRED_KEYS = (
    "schema", "schema_version", "seed", "elapsed", "total_walks",
    "hops", "traffic", "counters",
)


def validate_report(obj) -> list[str]:
    """Structural checks for a run-report dict; returns problem strings.

    Accepts every schema version up to :data:`REPORT_SCHEMA_VERSION`
    (additions are backwards-compatible), including v4's optional
    ``telemetry`` section, whose series shapes are checked against its
    declared sample count.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"report must be a JSON object, got {type(obj).__name__}"]
    if obj.get("schema") != REPORT_SCHEMA:
        problems.append(
            f"schema is {obj.get('schema')!r}, expected {REPORT_SCHEMA!r}"
        )
    version = obj.get("schema_version")
    if not isinstance(version, int) or not 1 <= version <= REPORT_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version!r} not in 1..{REPORT_SCHEMA_VERSION}"
        )
    for key in _REQUIRED_KEYS:
        if key not in obj:
            problems.append(f"missing required key {key!r}")
    if not isinstance(obj.get("counters", {}), dict):
        problems.append("counters must be an object")
    if not isinstance(obj.get("traffic", {}), dict):
        problems.append("traffic must be an object")
    telemetry = obj.get("telemetry")
    if telemetry is not None:
        problems.extend(_validate_telemetry(telemetry))
    return problems


def _validate_telemetry(tel) -> list[str]:
    problems: list[str] = []
    if not isinstance(tel, dict):
        return ["telemetry must be an object"]
    if not (isinstance(tel.get("sample_interval"), (int, float))
            and tel.get("sample_interval", 0) > 0):
        problems.append("telemetry.sample_interval must be > 0")
    n = tel.get("samples")
    if not isinstance(n, int) or n < 1:
        problems.append("telemetry.samples must be a positive integer")
        n = None
    series = tel.get("series")
    if not isinstance(series, list):
        problems.append("telemetry.series must be a list")
        series = []
    for i, entry in enumerate(series):
        where = f"telemetry.series[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        if entry.get("kind") not in ("counter", "gauge", "histogram"):
            problems.append(f"{where}.kind {entry.get('kind')!r} unknown")
        if not entry.get("name"):
            problems.append(f"{where} missing name")
        values = entry.get("values")
        if not isinstance(values, list) or (
            n is not None and len(values) != n
        ):
            problems.append(
                f"{where}.values must be a list of length telemetry.samples"
            )
        if entry.get("kind") == "histogram":
            buckets = entry.get("buckets")
            counts = entry.get("counts")
            if not isinstance(buckets, list) or not isinstance(counts, list) \
                    or len(counts) != len(buckets) + 1:
                problems.append(
                    f"{where}: histogram needs counts of len(buckets)+1"
                )
    alerts = tel.get("alerts")
    if alerts is not None:
        if not isinstance(alerts, dict) or not isinstance(
            alerts.get("firings", []), list
        ):
            problems.append("telemetry.alerts.firings must be a list")
    return problems
