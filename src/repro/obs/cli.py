"""Observability CLI: traces, reports, metrics, alerts, validation.

::

    python -m repro.obs.cli export-trace --dataset TT --walks 2000 --out trace.json
    python -m repro.obs.cli report --dataset TT --walks 2000 --out report.json
    python -m repro.obs.cli metrics --dataset TT --format openmetrics
    python -m repro.obs.cli alerts --report report.json --fail-on-fire
    python -m repro.obs.cli diff report_a.json report_b.json
    python -m repro.obs.cli validate trace.json

``export-trace`` and ``report`` run the quickstart workload (scaled
dataset, unbiased walks) with tracing enabled and write the artifact;
``metrics`` runs it with the deterministic metrics registry enabled and
exports the series (OpenMetrics text or JSON); ``alerts`` prints the
alert-rule firings of a fresh run or of a saved v4 report; ``diff``
compares two reports counter-by-counter and names the sections that
differ; ``validate`` checks a trace file against the Chrome trace-event
structure or a run report against the report schema (the CI smoke job).
"""

from __future__ import annotations

import argparse
import json
import sys

from .report import REPORT_SCHEMA, diff_reports, validate_report
from .tracer import ALL_CATEGORIES, TraceConfig, validate_trace

__all__ = ["main"]


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="TT", help="scaled dataset name (default: TT)")
    p.add_argument("--walks", type=int, default=None,
                   help="number of walks (default: dataset's scaled default)")
    p.add_argument("--length", type=int, default=6, help="walk length (default: 6)")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--exercise-hierarchy", action="store_true",
                   help="shrink hot caches/partitions so all three accelerator "
                        "levels appear in the trace even on small graphs")


def _traced_run(args, categories: frozenset[str] | None, profile: bool):
    """Run one FlashWalker campaign with tracing on; returns the result."""
    # Imported lazily: the CLI must stay usable (diff/validate) even in
    # stripped environments, and repro.core pulls in numpy-heavy modules.
    from ..experiments.harness import WALK_LENGTH, ExperimentContext
    from ..core.flashwalker import FlashWalker
    from ..walks.spec import WalkSpec

    ctx = ExperimentContext(seed=args.seed)
    graph = ctx.graph(args.dataset)
    overrides = {}
    if args.exercise_hierarchy:
        overrides = dict(
            partition_subgraphs=4, board_hot_subgraphs=1, channel_hot_subgraphs=1
        )
    cfg = ctx.flashwalker_config(args.dataset, **overrides)
    trace = TraceConfig(categories=categories, profile_event_loop=profile)
    fw = FlashWalker(graph, cfg, seed=args.seed, trace=trace)
    n_walks = args.walks or ctx.default_walks(args.dataset)
    spec = WalkSpec(length=args.length if args.length else WALK_LENGTH)
    return fw.run(num_walks=n_walks, spec=spec)


def _cmd_export_trace(args) -> int:
    categories = frozenset(args.categories) if args.categories else None
    result = _traced_run(args, categories, profile=False)
    n = result.trace.export_chrome(args.out)
    counts = ", ".join(
        f"{cat}={n}" for cat, n in sorted(result.trace.span_counts().items())
    )
    print(f"wrote {args.out}: {n} trace events ({counts})")
    if result.trace.dropped:
        print(f"warning: {result.trace.dropped} events dropped (max_events cap)",
              file=sys.stderr)
    print("open in https://ui.perfetto.dev (Open trace file)")
    return 0


def _cmd_report(args) -> int:
    result = _traced_run(args, None, profile=args.profile)
    report = result.to_report()
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print(f"wrote {args.out} (schema v{report['schema_version']})")
    else:
        print(text)
    return 0


def _metered_run(args):
    """Run one FlashWalker campaign with telemetry on; returns (result, fw)."""
    from ..experiments.harness import WALK_LENGTH, ExperimentContext
    from ..core.flashwalker import FlashWalker
    from ..walks.spec import WalkSpec
    from .metrics import MetricsConfig

    ctx = ExperimentContext(seed=args.seed)
    graph = ctx.graph(args.dataset)
    overrides = {}
    if args.exercise_hierarchy:
        overrides = dict(
            partition_subgraphs=4, board_hot_subgraphs=1, channel_hot_subgraphs=1
        )
    cfg = ctx.flashwalker_config(args.dataset, **overrides)
    mcfg = MetricsConfig(sample_interval=args.interval)
    fw = FlashWalker(graph, cfg, seed=args.seed, telemetry=mcfg)
    n_walks = args.walks or ctx.default_walks(args.dataset)
    spec = WalkSpec(length=args.length if args.length else WALK_LENGTH)
    result = fw.run(num_walks=n_walks, spec=spec)
    return result, fw


def _cmd_metrics(args) -> int:
    result, fw = _metered_run(args)
    if args.format == "openmetrics":
        text = fw.telemetry.to_openmetrics()
    else:
        text = json.dumps(fw.telemetry.to_json(), indent=2, sort_keys=False)
        text += "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
        tel = result.telemetry
        print(
            f"wrote {args.out}: {len(tel['series'])} series x "
            f"{tel['samples']} samples ({args.format})"
        )
    else:
        sys.stdout.write(text)
    return 0


def _print_firings(firings: list) -> None:
    if not firings:
        print("no alert firings")
        return
    width = max(len(f["rule"]) for f in firings)
    for f in firings:
        print(
            f"{f['rule'].ljust(width)}  {f['series']}  "
            f"[{f['t_start']:.6g}s, {f['t_end']:.6g}s)  "
            f"samples={f['samples']} value={f['value']:.4g} "
            f"threshold={f['threshold']:g}"
        )


def _cmd_alerts(args) -> int:
    if args.report:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
        tel = report.get("telemetry")
        if tel is None:
            print(f"{args.report}: no telemetry section (run with metrics "
                  "enabled, schema v4)", file=sys.stderr)
            return 2
        firings = tel.get("alerts", {}).get("firings", [])
    else:
        result, _ = _metered_run(args)
        firings = result.telemetry["alerts"]["firings"]
    _print_firings(firings)
    if firings and args.fail_on_fire:
        return 1
    return 0


def _cmd_diff(args) -> int:
    with open(args.a, encoding="utf-8") as f:
        a = json.load(f)
    with open(args.b, encoding="utf-8") as f:
        b = json.load(f)
    changes = diff_reports(a, b, rel_tol=args.rel_tol)
    if not changes:
        print("reports are identical (within tolerance)")
        return 0
    width = max(len(k) for k in changes)
    for key, row in changes.items():
        rel = f"{row['rel']:+.2%}" if row["rel"] is not None else ""
        print(f"{key.ljust(width)}  {row['a']!r} -> {row['b']!r}  {rel}")
    # Name the top-level sections involved so a pair differing only in
    # a new section (e.g. v4's "telemetry") reads as more than a bare
    # mismatch.
    sections = sorted({key.split(".")[0].split("[")[0] for key in changes})
    print(f"{len(changes)} differences in: {', '.join(sections)}")
    return 1 if args.fail_on_change else 0


def _cmd_validate(args) -> int:
    with open(args.path, encoding="utf-8") as f:
        try:
            obj = json.load(f)
        except json.JSONDecodeError as exc:
            print(f"{args.path}: not valid JSON: {exc}", file=sys.stderr)
            return 1
    # Dispatch on content: a run report names its schema, anything with
    # traceEvents validates as a Chrome trace.
    if isinstance(obj, dict) and obj.get("schema") == REPORT_SCHEMA:
        problems = validate_report(obj)
        if problems:
            for p in problems:
                print(f"{args.path}: {p}", file=sys.stderr)
            return 1
        version = obj.get("schema_version")
        suffix = " + telemetry" if "telemetry" in obj else ""
        print(f"{args.path}: valid run report (schema v{version}{suffix})")
        return 0
    problems = validate_trace(obj)
    if problems:
        for p in problems:
            print(f"{args.path}: {p}", file=sys.stderr)
        return 1
    n = len(obj.get("traceEvents", []))
    print(f"{args.path}: valid Chrome trace-event JSON ({n} events)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("export-trace", help="run a campaign and write a Perfetto trace")
    _add_run_args(p)
    p.add_argument("--out", default="trace.json", help="output path (default: trace.json)")
    p.add_argument("--categories", nargs="*", choices=sorted(ALL_CATEGORIES),
                   help="restrict recorded span categories (default: all)")
    p.set_defaults(fn=_cmd_export_trace)

    p = sub.add_parser("report", help="run a campaign and dump its structured report")
    _add_run_args(p)
    p.add_argument("--out", default=None, help="output path (default: stdout)")
    p.add_argument("--profile", action="store_true",
                   help="include event-loop wall-clock profile in the report")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("metrics", help="run a campaign with telemetry and "
                                       "export the metric series")
    _add_run_args(p)
    p.add_argument("--format", choices=("openmetrics", "json"),
                   default="openmetrics",
                   help="export format (default: openmetrics)")
    p.add_argument("--interval", type=float, default=20e-6,
                   help="sample interval in simulated seconds (default: 20e-6)")
    p.add_argument("--out", default=None, help="output path (default: stdout)")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser("alerts", help="print alert-rule firings (fresh run, "
                                      "or a saved v4 report)")
    _add_run_args(p)
    p.add_argument("--report", default=None,
                   help="read firings from this run-report JSON instead of "
                        "running a campaign")
    p.add_argument("--interval", type=float, default=20e-6,
                   help="sample interval in simulated seconds (default: 20e-6)")
    p.add_argument("--fail-on-fire", action="store_true",
                   help="exit 1 when any alert fired")
    p.set_defaults(fn=_cmd_alerts)

    p = sub.add_parser("diff", help="compare two run reports")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--rel-tol", type=float, default=0.0,
                   help="suppress relative changes <= this fraction")
    p.add_argument("--fail-on-change", action="store_true",
                   help="exit 1 when the reports differ")
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser("validate", help="validate a Chrome trace-event JSON file")
    p.add_argument("path")
    p.set_defaults(fn=_cmd_validate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
