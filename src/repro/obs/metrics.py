"""Deterministic simulated-clock metrics: counters, gauges, histograms.

The registry is the telemetry counterpart of the tracer (DESIGN.md §7)
and follows the same opt-in discipline: it is a *passive observer*.
Instruments stamp every observation with the simulation clock and fold
it onto an absolute sample grid (cell ``floor(t / sample_interval)``,
the same absolute-grid convention the journal's group commit uses), so
enabling metrics schedules **no** simulator events, draws **no** RNG,
and cannot change simulated timestamps.  Disabled, every hot path sees
a single ``is None`` check.

Sampling semantics: sample ``i`` covers ``[i·Δ, (i+1)·Δ)`` and is read
at its right boundary — counters report the cumulative total through
the cell, gauges the last value set at or before it, histograms the
cumulative observation count.  When a run outgrows
``max_samples`` the grid coarsens by a deterministic integer factor,
so same-seed runs always produce byte-identical series regardless of
execution mode (the serial/process-pool cluster identity gate covers
this).

Exports: OpenMetrics text (:meth:`MetricsRegistry.to_openmetrics`) and
JSON (:meth:`MetricsRegistry.to_json`); the run report embeds
:meth:`MetricsRegistry.section` as the v4 ``telemetry`` section,
including any alert-rule firings (:mod:`repro.obs.alerts`).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from ..common.errors import ConfigError

__all__ = [
    "METRICS_SCHEMA",
    "MetricsConfig",
    "MetricsRegistry",
    "MetricCounter",
    "MetricGauge",
    "MetricHistogram",
]

METRICS_SCHEMA = "repro.obs.metrics"
METRICS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class MetricsConfig:
    """Opt-in telemetry knobs (mirrors :class:`~repro.obs.TraceConfig`).

    Deliberately *not* part of ``FlashWalkerConfig``: enabling metrics
    must not perturb the ``config_fingerprint``, exactly like tracing.
    """

    #: Width of one sample cell in simulated seconds.  The default
    #: matches the engine's RunMetrics bucket (50 µs) divided down so
    #: service/cluster epochs resolve to multiple samples.
    sample_interval: float = 20e-6
    #: Series longer than this coarsen by an integer factor (grid cells
    #: merge ``k`` at a time) so reports stay bounded.
    max_samples: int = 2048

    def validate(self) -> "MetricsConfig":
        if self.sample_interval <= 0:
            raise ConfigError(
                f"sample_interval must be > 0, got {self.sample_interval}"
            )
        if self.max_samples < 1:
            raise ConfigError(
                f"max_samples must be >= 1, got {self.max_samples}"
            )
        return self


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class _Instrument:
    """Shared cell bookkeeping for all instrument kinds."""

    kind = "?"

    def __init__(self, registry: "MetricsRegistry", name: str, labels: tuple):
        self._reg = registry
        self.name = name
        self.labels = labels

    def _cell(self, t: float | None) -> int:
        if t is None:
            t = self._reg._clock()
        return int(math.floor(t / self._reg.cfg.sample_interval))

    def key(self) -> str:
        return self.name + _label_suffix(self.labels)


class MetricCounter(_Instrument):
    """Monotonic counter; series = cumulative total per sample."""

    kind = "counter"

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self.total = 0.0
        self._cells: dict[int, float] = {}

    def inc(self, value: float = 1.0, t: float | None = None) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name}: negative increment {value}")
        self.total += value
        c = self._cell(t)
        self._cells[c] = self._cells.get(c, 0.0) + value

    def series(self, n: int, factor: int) -> list[float]:
        out = [0.0] * n
        for cell, v in self._cells.items():
            out[min(cell // factor, n - 1)] += v
        run = 0.0
        for i in range(n):
            run += out[i]
            out[i] = run
        return out


class MetricGauge(_Instrument):
    """Last-value gauge; series = step function sampled per cell."""

    kind = "gauge"

    def __init__(self, registry, name, labels):
        super().__init__(registry, name, labels)
        self.last = 0.0
        self.max = 0.0
        #: cell -> value of the latest ``set`` that landed in it.
        self._cells: dict[int, float] = {}

    def set(self, value: float, t: float | None = None) -> None:
        value = float(value)
        self.last = value
        if value > self.max:
            self.max = value
        self._cells[self._cell(t)] = value

    def series(self, n: int, factor: int) -> list[float]:
        out = [0.0] * n
        level = 0.0
        changes = sorted(self._cells.items())
        j = 0
        for i in range(n):
            # Consume every change whose (coarsened) cell is <= i.
            while j < len(changes) and changes[j][0] // factor <= i:
                level = changes[j][1]
                j += 1
            out[i] = level
        return out


class MetricHistogram(_Instrument):
    """Fixed-bucket histogram (OpenMetrics-style ``le`` upper bounds).

    Bucket counts are whole-run; the time series is the cumulative
    observation count, so rate rules still apply to it.
    """

    kind = "histogram"

    def __init__(self, registry, name, labels, buckets):
        super().__init__(registry, name, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError(
                f"histogram {name}: buckets must be strictly increasing, "
                f"got {buckets!r}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self._cells: dict[int, int] = {}

    def observe(self, value: float, t: float | None = None) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        c = self._cell(t)
        self._cells[c] = self._cells.get(c, 0) + 1

    def series(self, n: int, factor: int) -> list[float]:
        out = [0.0] * n
        for cell, v in self._cells.items():
            out[min(cell // factor, n - 1)] += v
        run = 0.0
        for i in range(n):
            run += out[i]
            out[i] = run
        return out


class MetricsRegistry:
    """Named, labeled instruments over one deterministic sample grid."""

    def __init__(self, config: MetricsConfig | None = None):
        self.cfg = (config or MetricsConfig()).validate()
        self._metrics: dict[tuple, _Instrument] = {}
        self._clock = lambda: 0.0
        #: Alert rules evaluated at section build (:mod:`repro.obs.alerts`).
        self.rules: list = []

    # -------------------------------------------------------------- recording

    def bind_clock(self, clock) -> None:
        """Default timestamp source for observations without explicit t."""
        self._clock = clock

    def _get(self, cls, name: str, labels: dict, *args):
        lk = _label_key(labels)
        key = (name, lk)
        inst = self._metrics.get(key)
        if inst is None:
            inst = cls(self, name, lk, *args)
            self._metrics[key] = inst
        elif not isinstance(inst, cls):
            raise ConfigError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, **labels) -> MetricCounter:
        return self._get(MetricCounter, name, labels)

    def gauge(self, name: str, **labels) -> MetricGauge:
        return self._get(MetricGauge, name, labels)

    def histogram(self, name: str, buckets, **labels) -> MetricHistogram:
        return self._get(MetricHistogram, name, labels, buckets)

    def add_rules(self, rules) -> None:
        """Register alert rules; re-adding a rule name is a no-op."""
        have = {r.name for r in self.rules}
        self.rules.extend(r for r in rules if r.name not in have)

    # -------------------------------------------------------------- sampling

    def _span(self, t_end: float | None) -> float:
        if t_end is None:
            t_end = self._clock()
        # Every recorded cell must fall inside the grid even if the
        # caller's end time undershoots (spread recordings can land
        # observations past "now").
        last_cell = max(
            (max(m._cells) for m in self._metrics.values() if m._cells),
            default=0,
        )
        return max(float(t_end), (last_cell + 1) * self.cfg.sample_interval)

    def grid(self, t_end: float | None = None) -> tuple[int, int, float]:
        """Sample-grid shape ``(n_samples, coarsen_factor, eff_interval)``."""
        span = self._span(t_end)
        raw = int(math.floor(span / self.cfg.sample_interval)) + 1
        factor = max(1, math.ceil(raw / self.cfg.max_samples))
        n = math.ceil(raw / factor)
        return n, factor, factor * self.cfg.sample_interval

    def instruments(self) -> list[_Instrument]:
        """All instruments in deterministic (name, labels) order."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    # -------------------------------------------------------------- exporting

    def section(self, t_end: float | None = None) -> dict:
        """The run report's ``telemetry`` section (schema v4, additive)."""
        n, factor, interval = self.grid(t_end)
        series = []
        for inst in self.instruments():
            entry: dict = {
                "name": inst.name,
                "labels": dict(inst.labels),
                "kind": inst.kind,
                "values": inst.series(n, factor),
            }
            if inst.kind == "counter":
                entry["total"] = inst.total
            elif inst.kind == "gauge":
                entry["last"] = inst.last
                entry["max"] = inst.max
                vals = entry["values"]
                entry["mean"] = sum(vals) / len(vals) if vals else 0.0
            else:
                entry["buckets"] = list(inst.buckets)
                entry["counts"] = list(inst.counts)
                entry["sum"] = inst.sum
                entry["count"] = inst.count
            series.append(entry)
        out = {
            "schema": METRICS_SCHEMA,
            "schema_version": METRICS_SCHEMA_VERSION,
            "sample_interval": interval,
            "samples": n,
            "series": series,
        }
        if self.rules:
            from .alerts import AlertEngine

            engine = AlertEngine(self.rules)
            out["alerts"] = {
                "rules": [r.name for r in engine.rules],
                "firings": engine.evaluate(self, t_end=t_end),
            }
        return out

    def to_json(self, t_end: float | None = None) -> dict:
        return self.section(t_end)

    def to_openmetrics(self, t_end: float | None = None) -> str:
        """OpenMetrics text exposition of current totals/levels."""
        n, factor, interval = self.grid(t_end)
        lines: list[str] = []
        seen_types: set[str] = set()
        for inst in self.instruments():
            if inst.name not in seen_types:
                seen_types.add(inst.name)
                lines.append(f"# TYPE {inst.name} {inst.kind}")
            suffix = _label_suffix(inst.labels)
            if inst.kind == "counter":
                lines.append(f"{inst.name}_total{suffix} {inst.total:g}")
            elif inst.kind == "gauge":
                lines.append(f"{inst.name}{suffix} {inst.last:g}")
            else:
                run = 0
                for le, c in zip(inst.buckets, inst.counts):
                    run += c
                    lab = dict(inst.labels)
                    lab["le"] = f"{le:g}"
                    lines.append(
                        f"{inst.name}_bucket{_label_suffix(_label_key(lab))} {run}"
                    )
                lab = dict(inst.labels)
                lab["le"] = "+Inf"
                lines.append(
                    f"{inst.name}_bucket{_label_suffix(_label_key(lab))} "
                    f"{inst.count}"
                )
                lines.append(f"{inst.name}_sum{suffix} {inst.sum:g}")
                lines.append(f"{inst.name}_count{suffix} {inst.count}")
        lines.append(
            f"# repro.obs.metrics samples={n} interval={interval:g}s"
        )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"
