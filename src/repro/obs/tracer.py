"""Span tracer with Chrome trace-event (Perfetto-compatible) export.

The tracer is a passive recorder: components call :meth:`Tracer.span`
/ :meth:`Tracer.instant` / :meth:`Tracer.count` with *simulation* times
they already computed, and the tracer files them under a (pid, tid)
track.  It never schedules events, never draws randomness, and never
feeds anything back into the timing model, so enabling it cannot change
a run's simulated timestamps.

Alongside raw spans the tracer keeps its own
:class:`~repro.sim.stats.StatsRegistry` of **utilization timelines**
(plane / bus busy-time per bucket) and **latency histograms** (page
reads, bus transfers, subgraph loads, accelerator batches); these feed
``RunResult.to_report()`` percentiles and the Fig. 8-style analyses the
whole-run counters cannot answer.

Track layout (Perfetto process/thread rows)::

    pid 1  board accelerator      (tid 0 pipeline, tid 1 scheduler)
    pid 2  channel accelerators   (tid = channel id)
    pid 3  chip accelerators      (tid = flat chip id)
    pid 4  ONFI channel buses     (tid = channel id)
    pid 5  NAND flash chips       (tid = flat chip id)
    pid 6  resilience / faults    (tid 0)
    pid 7  run / partitions       (tid 0)

Chrome trace-event JSON uses microsecond timestamps; simulation seconds
are scaled by 1e6 on export, so one simulated microsecond reads as one
trace microsecond in the Perfetto UI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from ..common.errors import ReproError
from ..sim.stats import StatsRegistry

__all__ = [
    "TraceConfig",
    "Tracer",
    "validate_trace",
    "CAT_FLASH",
    "CAT_BUS",
    "CAT_ACCEL",
    "CAT_SCHED",
    "CAT_FAULT",
    "CAT_CHECKPOINT",
    "CAT_RUN",
]

# -- span categories (the "cat" field; filterable via TraceConfig) ----------

CAT_FLASH = "flash"  #: NAND array ops: page reads/programs/erases
CAT_BUS = "bus"  #: ONFI channel bus transfers
CAT_ACCEL = "accel"  #: accelerator busy periods (all three levels)
CAT_SCHED = "sched"  #: subgraph scheduler decisions / topN refreshes
CAT_FAULT = "fault"  #: read-retry ladders, CRC retries, chip failovers
CAT_CHECKPOINT = "ckpt"  #: checkpoint drain barriers and snapshots
CAT_RUN = "run"  #: run-level phases: preload, partitions, finalize

ALL_CATEGORIES = frozenset(
    {CAT_FLASH, CAT_BUS, CAT_ACCEL, CAT_SCHED, CAT_FAULT, CAT_CHECKPOINT, CAT_RUN}
)

# -- track ids --------------------------------------------------------------

PID_BOARD = 1
PID_CHANNEL_ACCEL = 2
PID_CHIP_ACCEL = 3
PID_BUS = 4
PID_FLASH = 5
PID_FAULTS = 6
PID_RUN = 7

_PROCESS_NAMES = {
    PID_BOARD: "board accelerator",
    PID_CHANNEL_ACCEL: "channel accelerators",
    PID_CHIP_ACCEL: "chip accelerators",
    PID_BUS: "ONFI channel buses",
    PID_FLASH: "NAND flash chips",
    PID_FAULTS: "resilience / faults",
    PID_RUN: "run",
}

#: Seconds -> Chrome trace microseconds.
_US = 1e6


@dataclass(frozen=True)
class TraceConfig:
    """What to record.  Constructing one does not start tracing; pass it
    to ``FlashWalker(..., trace=TraceConfig())``.

    ``categories=None`` records every category; pass a subset (e.g.
    ``{"accel", "sched"}``) to cut trace size.  ``max_events`` bounds
    memory — once reached, further spans are counted but dropped (the
    drop count lands in the exported metadata so truncation is never
    silent).
    """

    #: Span categories to record; ``None`` = all.
    categories: frozenset[str] | None = None
    #: Hard cap on recorded trace events (dropped beyond, with a count).
    max_events: int = 1_000_000
    #: Also wall-clock-profile the event loop (host-side hotspots).
    profile_event_loop: bool = False
    #: Bucket width (simulated seconds) of the utilization timelines.
    utilization_bucket: float = 50e-6

    def validate(self) -> "TraceConfig":
        if self.max_events < 1:
            raise ReproError(f"max_events must be >= 1, got {self.max_events}")
        if self.utilization_bucket <= 0:
            raise ReproError("utilization_bucket must be positive")
        if self.categories is not None:
            unknown = set(self.categories) - ALL_CATEGORIES
            if unknown:
                raise ReproError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"valid: {sorted(ALL_CATEGORIES)}"
                )
        return self


class Tracer:
    """One run's trace: spans, instants, counter samples, side stats.

    Events are stored as small tuples and rendered to Chrome trace-event
    dicts only at export time, keeping the recording path cheap.
    """

    __slots__ = (
        "cfg",
        "_cats",
        "events",
        "dropped",
        "stats",
        "profile",
        "_clock",
        "_hw",
    )

    def __init__(self, cfg: TraceConfig | None = None):
        self.cfg = (cfg or TraceConfig()).validate()
        self._cats = (
            ALL_CATEGORIES if self.cfg.categories is None else frozenset(self.cfg.categories)
        )
        #: Recorded events: (ph, cat, pid, tid, t0, dur_or_None, name, args).
        self.events: list[tuple] = []
        self.dropped = 0
        #: Utilization timelines + latency histograms (side channel).
        self.stats = StatsRegistry(bucket=self.cfg.utilization_bucket)
        #: Filled by the engine when ``profile_event_loop`` is set.
        self.profile = None
        self._clock: Callable[[], float] | None = None
        #: High-water marks: name -> max value seen.
        self._hw: dict[str, float] = {}

    # -- clock ---------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Give time-less components (scheduler, fault model) a way to
        stamp instants with the current simulation time."""
        self._clock = clock

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- recording -----------------------------------------------------------

    def wants(self, cat: str) -> bool:
        return cat in self._cats

    def _push(self, event: tuple) -> None:
        if len(self.events) >= self.cfg.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def span(
        self,
        cat: str,
        pid: int,
        tid: int,
        name: str,
        t0: float,
        t1: float,
        args: dict | None = None,
    ) -> None:
        """Record a complete span [t0, t1] on track (pid, tid)."""
        if cat not in self._cats:
            return
        self._push(("X", cat, pid, tid, t0, max(0.0, t1 - t0), name, args))

    def instant(
        self,
        cat: str,
        pid: int,
        tid: int,
        name: str,
        t: float | None = None,
        args: dict | None = None,
    ) -> None:
        """Record a zero-duration marker (``t=None`` uses the bound clock)."""
        if cat not in self._cats:
            return
        self._push(("i", cat, pid, tid, self.now() if t is None else t, None, name, args))

    def count(self, pid: int, name: str, t: float, values: dict[str, float]) -> None:
        """Record a counter-track sample (stacked area in Perfetto)."""
        self._push(("C", CAT_RUN, pid, 0, t, None, name, values))

    # -- side statistics -----------------------------------------------------

    def busy(self, resource: str, t0: float, t1: float) -> None:
        """Attribute busy-time to a utilization timeline (``util.*``)."""
        if t1 > t0:
            self.stats.timeseries(f"util.{resource}").add_spread(t0, t1, t1 - t0)
        elif t1 == t0:
            return
        else:  # pragma: no cover - caller bug
            raise ReproError(f"busy interval ends before start: {t0} > {t1}")

    def latency(self, which: str, value: float) -> None:
        """Feed a latency sample into the ``lat.*`` histogram."""
        self.stats.histogram(f"lat.{which}").add(value)

    def highwater(self, name: str, value: float) -> None:
        """Track the maximum of an occupancy-style quantity."""
        if value > self._hw.get(name, float("-inf")):
            self._hw[name] = float(value)

    @property
    def highwaters(self) -> dict[str, float]:
        return dict(self._hw)

    # -- derived views -------------------------------------------------------

    def utilization_timelines(self) -> dict[str, tuple]:
        """name -> (bucket starts, busy fraction per bucket)."""
        out = {}
        for name, series in self.stats.series.items():
            if not name.startswith("util."):
                continue
            starts, sums = series.buckets()
            out[name.removeprefix("util.")] = (starts, sums / series.bucket)
        return out

    def latency_histograms(self) -> dict[str, object]:
        """name -> :class:`~repro.sim.stats.Histogram` of latencies."""
        return {
            name.removeprefix("lat."): h
            for name, h in self.stats.histograms.items()
            if name.startswith("lat.")
        }

    def span_counts(self) -> dict[str, int]:
        """Recorded events per category (quick trace sanity check)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev[1]] = out.get(ev[1], 0) + 1
        return out

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Render the Chrome trace-event JSON object (Perfetto-ready)."""
        trace_events: list[dict] = []
        pids_seen: set[int] = set()
        tids_seen: set[tuple[int, int]] = set()
        for ph, cat, pid, tid, t, dur, name, args in self.events:
            ev: dict = {
                "ph": ph,
                "cat": cat,
                "pid": pid,
                "tid": tid,
                "ts": t * _US,
                "name": name,
            }
            if ph == "X":
                ev["dur"] = dur * _US
            elif ph == "i":
                ev["s"] = "t"  # thread-scoped instant
            if args:
                ev["args"] = args
            trace_events.append(ev)
            pids_seen.add(pid)
            tids_seen.add((pid, tid))
        meta: list[dict] = []
        for pid in sorted(pids_seen):
            meta.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": _PROCESS_NAMES.get(pid, f"pid {pid}")},
                }
            )
            meta.append(
                {"ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
                 "args": {"sort_index": pid}}
            )
        for pid, tid in sorted(tids_seen):
            meta.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": _thread_name(pid, tid)},
                }
            )
        return {
            "traceEvents": meta + trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "recorded_events": len(self.events),
                "dropped_events": self.dropped,
                "clock": "simulated (1 us trace time = 1 us simulated)",
            },
        }

    def export_chrome(self, path: str) -> int:
        """Write the trace JSON to ``path``; returns event count."""
        obj = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as f:
            json.dump(obj, f, separators=(",", ":"))
        return len(obj["traceEvents"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(events={len(self.events)}, dropped={self.dropped}, "
            f"cats={sorted(self._cats)})"
        )


def _thread_name(pid: int, tid: int) -> str:
    if pid == PID_BOARD:
        return {0: "pipeline", 1: "scheduler"}.get(tid, f"tid {tid}")
    if pid == PID_CHANNEL_ACCEL:
        return f"channel accel {tid}"
    if pid == PID_CHIP_ACCEL:
        return f"chip accel {tid}"
    if pid == PID_BUS:
        return f"channel {tid} bus"
    if pid == PID_FLASH:
        return f"chip {tid}"
    return f"tid {tid}"


# -- validation (CI smoke + `cli validate`) ---------------------------------

_VALID_PHASES = {"X", "i", "I", "M", "C", "B", "E", "b", "e", "n", "s", "t", "f"}


def validate_trace(obj) -> list[str]:
    """Structural check against the Chrome trace-event format.

    Returns a list of problems (empty = valid).  Checks the containing
    object shape and, per event, the phase, required fields, and numeric
    non-negative timestamps — the subset of the spec that matters for
    Perfetto to load the file.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if ph == "M":
            if "name" not in ev:
                problems.append(f"{where}: metadata event without name")
            continue
        for key in ("pid", "tid", "ts", "name"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs non-negative dur, got {dur!r}"
                )
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    return problems
