"""Observability layer: span tracing, run reports, event-loop profiling.

This package turns a simulation run from a bag of whole-run counters
into an inspectable artifact, in three pieces:

* :mod:`repro.obs.tracer` — an opt-in **span tracer**
  (:class:`TraceConfig` + :class:`Tracer`) that hardware models and the
  engine feed begin/end spans (page reads, bus transfers, accelerator
  busy periods, scheduler decisions, fault events).  Traces export as
  Chrome trace-event JSON, openable directly in ``ui.perfetto.dev``.
* :mod:`repro.obs.report` — a versioned, machine-readable **run
  report** (:func:`build_report`, surfaced as
  :meth:`repro.core.metrics.RunResult.to_report`), plus
  :func:`diff_reports` for comparing two runs and
  :func:`config_fingerprint` for identifying the configuration that
  produced them.
* :mod:`repro.obs.profile` — **wall-clock profiling** of the event
  loop (:class:`EventLoopProfiler`): per-callback-category timing and
  events/sec, for finding host-side hotspots.
* :mod:`repro.obs.metrics` — an opt-in, deterministic **metrics
  registry** (:class:`MetricsConfig` + :class:`MetricsRegistry`):
  counters, gauges, and fixed-bucket histograms sampled on a simulated-
  time grid, exported as OpenMetrics text or the report's ``telemetry``
  section, with :mod:`repro.obs.alerts` rules (:class:`AlertRule` +
  :class:`AlertEngine`) evaluated over the same grid.
* :mod:`repro.obs.perfgate` — the **perf-trajectory gate**: diffs fresh
  benchmark artifacts against the committed trajectory and fails CI on
  regressions beyond the tolerance band.

Tracing and metrics are strictly opt-in: with neither attached every
hot path sees a single ``is None`` check, and an observed run's
*simulated* timestamps are identical to an unobserved one — both only
observe.

The CLI entry point ``python -m repro.obs.cli`` exports traces and
metric series, dumps and diffs reports, prints alert firings, and
validates trace/report files (used by CI).
"""

from .alerts import (
    AlertEngine,
    AlertRule,
    default_cluster_rules,
    default_engine_rules,
    default_service_rules,
)
from .metrics import (
    METRICS_SCHEMA,
    MetricsConfig,
    MetricsRegistry,
)
from .profile import EventLoopProfiler
from .report import (
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    build_report,
    config_fingerprint,
    diff_reports,
    validate_report,
)
from .tracer import (
    CAT_ACCEL,
    CAT_BUS,
    CAT_CHECKPOINT,
    CAT_FAULT,
    CAT_FLASH,
    CAT_RUN,
    CAT_SCHED,
    PID_BOARD,
    PID_BUS,
    PID_CHANNEL_ACCEL,
    PID_CHIP_ACCEL,
    PID_FAULTS,
    PID_FLASH,
    PID_RUN,
    TraceConfig,
    Tracer,
    validate_trace,
)

__all__ = [
    "CAT_ACCEL",
    "CAT_BUS",
    "CAT_CHECKPOINT",
    "CAT_FAULT",
    "CAT_FLASH",
    "CAT_RUN",
    "CAT_SCHED",
    "PID_BOARD",
    "PID_BUS",
    "PID_CHANNEL_ACCEL",
    "PID_CHIP_ACCEL",
    "PID_FAULTS",
    "PID_FLASH",
    "PID_RUN",
    "AlertEngine",
    "AlertRule",
    "EventLoopProfiler",
    "METRICS_SCHEMA",
    "MetricsConfig",
    "MetricsRegistry",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "TraceConfig",
    "Tracer",
    "build_report",
    "config_fingerprint",
    "default_cluster_rules",
    "default_engine_rules",
    "default_service_rules",
    "diff_reports",
    "validate_report",
    "validate_trace",
]
