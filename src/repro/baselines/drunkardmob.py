"""Behavioral model of DrunkardMob (Kyrola, RecSys'13).

The iteration-synchronous baseline of Section II-B: GraphChi-style
execution where each iteration streams *every* graph block through
memory and advances each walk by at most one block-resident burst, and
walks are written back to disk between iterations.  Exists to
demonstrate why asynchronous updating (GraphWalker) and in-storage
updating (FlashWalker) win — the motivation data of the paper's
Section II.
"""

from __future__ import annotations

import numpy as np

from ..common.config import GraphWalkerConfig
from ..common.errors import SimulationError
from ..common.rng import RngRegistry
from ..graph.csr import CSRGraph
from ..graph.partition import partition_graph
from ..walks.sampling import make_sampler
from ..walks.spec import WalkSpec, start_vertices
from ..walks.state import WalkSet
from .graphwalker import GraphWalkerResult

__all__ = ["DrunkardMob"]

_WALK_RECORD_BYTES = 12


class DrunkardMob:
    """Iteration-synchronous out-of-core random walker."""

    def __init__(
        self,
        graph: CSRGraph,
        config: GraphWalkerConfig | None = None,
        seed: int = 0,
    ):
        self.cfg = (config or GraphWalkerConfig()).validate()
        self.graph = graph
        self.rngs = RngRegistry(seed)
        self.part = partition_graph(graph, self.cfg.block_bytes, vid_bytes=4)

    def run(
        self,
        num_walks: int | None = None,
        spec: WalkSpec | None = None,
        starts: np.ndarray | None = None,
        max_iterations: int = 10_000,
    ) -> GraphWalkerResult:
        """Run walks to completion; returns the same result shape as
        :class:`~repro.baselines.graphwalker.GraphWalker` for comparison."""
        spec = (spec or WalkSpec()).validate(self.graph)
        if starts is None:
            if num_walks is None or num_walks < 1:
                raise SimulationError("need num_walks >= 1 or explicit starts")
            starts = start_vertices(self.graph, num_walks, self.rngs.fresh("starts"))
        else:
            starts = np.asarray(starts, dtype=np.int64)
            if starts.size == 0:
                raise SimulationError("empty starts array")
        sampler = make_sampler(self.graph)
        rng = self.rngs.fresh("walks")

        n_blocks = self.part.num_blocks
        total = int(starts.size)
        walks = WalkSet.start(starts, spec.length)

        io_time = 0.0
        update_time = 0.0
        other_time = 0.0
        read_bytes = 0
        write_bytes = 0
        hops_total = 0
        block_loads = 0
        completed = 0

        iterations = 0
        while len(walks) and iterations < max_iterations:
            iterations += 1
            blocks = self.part.block_of_vertex(walks.cur)
            next_parts: list[WalkSet] = []
            # Stream every block that currently hosts walks.
            for b in np.unique(blocks):
                bsize = self.part.block_bytes(int(b))
                io_time += (
                    self.cfg.io_request_overhead
                    + bsize / self.cfg.disk_read_bytes_per_sec
                )
                read_bytes += bsize
                block_loads += 1
                sel = blocks == b
                sub = walks.select(sel)
                # Advance while walks stay inside this single block.
                src, cur, hop = sub.src.copy(), sub.cur.copy(), sub.hop.copy()
                active = np.arange(len(sub), dtype=np.int64)
                while active.size:
                    nxt = sampler(cur[active], rng)
                    dead = nxt < 0
                    moved = ~dead
                    n_moved = int(moved.sum())
                    hops_total += n_moved
                    update_time += n_moved / self.cfg.cpu_hops_per_sec
                    midx = active[moved]
                    cur[midx] = nxt[moved]
                    hop[midx] -= 1
                    done = dead.copy()
                    done[moved] = hop[midx] == 0
                    if spec.stop_probability > 0:
                        still = moved & ~done
                        if still.any():
                            stop = spec.apply_stop_probability(
                                hop[active[still]], rng
                            )
                            tmp = np.zeros(active.size, dtype=bool)
                            tmp[np.flatnonzero(still)[stop]] = True
                            done |= tmp
                    completed += int(done.sum())
                    cont = active[~done]
                    if cont.size == 0:
                        break
                    stays = self.part.block_of_vertex(cur[cont]) == b
                    leave = cont[~stays]
                    if leave.size:
                        next_parts.append(
                            WalkSet(src[leave], cur[leave], hop[leave])
                        )
                    active = cont[stays]
            walks = WalkSet.concat(next_parts)
            # Iteration-wise synchronization: surviving walks go to disk
            # and come back next iteration.
            nbytes = len(walks) * _WALK_RECORD_BYTES
            if nbytes:
                io_time += 2 * (
                    self.cfg.io_request_overhead
                    + nbytes / self.cfg.disk_read_bytes_per_sec
                )
                write_bytes += nbytes
                read_bytes += nbytes
            other_time += len(walks) * 20e-9
        if len(walks):  # pragma: no cover - guard
            raise SimulationError(
                f"DrunkardMob hit max_iterations with {len(walks)} walks left"
            )

        elapsed = io_time + update_time + other_time
        return GraphWalkerResult(
            elapsed=elapsed,
            total_walks=total,
            hops=hops_total,
            io_time=io_time,
            update_time=update_time,
            other_time=other_time,
            disk_read_bytes=read_bytes,
            disk_write_bytes=write_bytes,
            block_loads=block_loads,
            counters={"iterations": float(iterations), "blocks": float(n_blocks)},
        )

    def describe(self) -> str:
        from ..common.units import fmt_bytes

        return (
            f"DrunkardMob: blocks={self.part.num_blocks} "
            f"({fmt_bytes(self.cfg.block_bytes)} each), iteration-synchronous"
        )
