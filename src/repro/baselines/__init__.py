"""Baseline systems: GraphWalker (ATC'20) and DrunkardMob (RecSys'13)."""

from .drunkardmob import DrunkardMob
from .graphwalker import GraphWalker, GraphWalkerResult

__all__ = ["DrunkardMob", "GraphWalker", "GraphWalkerResult"]
