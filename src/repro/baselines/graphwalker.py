"""Behavioral model of GraphWalker (Wang et al., ATC'20).

The paper's baseline: an I/O-efficient out-of-core random-walk engine on
a host CPU + NVMe SSD.  Its published algorithm (summarized in Section
II-B of the FlashWalker paper):

* the graph is split into coarse blocks; a memory budget caches blocks;
* **state-aware scheduling**: the next block to load is the one with the
  most walks waiting in it;
* **asynchronous walk updating**: once blocks are in memory, walks keep
  advancing until they leave the in-memory block set or terminate (no
  iteration-wise synchronization);
* walks whose block is absent wait in per-block walk pools; oversized
  pools spill to disk.

Timing: block loads pay ``io_request_overhead + bytes / disk_bw`` (the
host-visible path — flash arrays, channel buses, then PCIe); walk
updates run at ``cpu_hops_per_sec``; pool management is charged per walk
moved.  I/O and compute are serialized as in GraphWalker's measured
profile, and the three components are reported separately — that
breakdown *is* Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.config import GraphWalkerConfig
from ..common.errors import SimulationError
from ..common.rng import RngRegistry
from ..graph.csr import CSRGraph
from ..graph.partition import GraphPartitioning, partition_graph
from ..walks.sampling import make_sampler
from ..walks.spec import WalkSpec, start_vertices
from ..walks.state import WalkSet

__all__ = ["GraphWalker", "GraphWalkerResult"]

#: CPU cost (seconds) to move one walk between pools / schedule it.
_WALK_MANAGE_COST = 25e-9


@dataclass
class GraphWalkerResult:
    """Outcome of one GraphWalker run, with the Fig. 1 breakdown."""

    elapsed: float
    total_walks: int
    hops: int
    io_time: float
    update_time: float
    other_time: float
    disk_read_bytes: int
    disk_write_bytes: int
    block_loads: int
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def disk_read_bandwidth(self) -> float:
        return self.disk_read_bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def breakdown(self) -> dict[str, float]:
        """Fractions of total time: load graph / update walks / other."""
        total = max(self.elapsed, 1e-12)
        return {
            "load_graph": self.io_time / total,
            "update_walks": self.update_time / total,
            "other": self.other_time / total,
        }

    def summary(self) -> str:
        from ..common.units import fmt_bandwidth, fmt_bytes, fmt_time

        b = self.breakdown
        return (
            f"t={fmt_time(self.elapsed)} walks={self.total_walks} "
            f"read={fmt_bytes(self.disk_read_bytes)} "
            f"loads={self.block_loads} "
            f"io={b['load_graph']:.0%} upd={b['update_walks']:.0%} "
            f"BW={fmt_bandwidth(self.disk_read_bandwidth)}"
        )


class GraphWalker:
    """GraphWalker bound to a graph with a memory/disk configuration."""

    def __init__(
        self,
        graph: CSRGraph,
        config: GraphWalkerConfig | None = None,
        seed: int = 0,
    ):
        self.cfg = (config or GraphWalkerConfig()).validate()
        self.graph = graph
        self.rngs = RngRegistry(seed)
        self.part: GraphPartitioning = partition_graph(
            graph, self.cfg.block_bytes, vid_bytes=4
        )
        self.memory_blocks = max(1, self.cfg.memory_bytes // self.cfg.block_bytes)

    # ------------------------------------------------------------------- run

    def run(
        self,
        num_walks: int | None = None,
        spec: WalkSpec | None = None,
        starts: np.ndarray | None = None,
    ) -> GraphWalkerResult:
        """Run walks to completion; returns timing + traffic summary."""
        spec = (spec or WalkSpec()).validate(self.graph)
        if starts is None:
            if num_walks is None or num_walks < 1:
                raise SimulationError("need num_walks >= 1 or explicit starts")
            starts = start_vertices(self.graph, num_walks, self.rngs.fresh("starts"))
        else:
            starts = np.asarray(starts, dtype=np.int64)
            if starts.size == 0:
                raise SimulationError("empty starts array")
        sampler = make_sampler(self.graph)
        rng = self.rngs.fresh("walks")

        n_blocks = self.part.num_blocks
        pools: list[list[WalkSet]] = [[] for _ in range(n_blocks)]
        pool_counts = np.zeros(n_blocks, dtype=np.int64)
        spilled = np.zeros(n_blocks, dtype=bool)

        io_time = 0.0
        update_time = 0.0
        other_time = 0.0
        read_bytes = 0
        write_bytes = 0
        hops_total = 0
        block_loads = 0
        completed = 0
        total = int(starts.size)

        # Distribute the initial walks (pool management cost).
        init = WalkSet.start(starts, spec.length)
        init_blocks = self.part.block_of_vertex(init.cur)
        for b in np.unique(init_blocks):
            sel = init_blocks == b
            pools[int(b)].append(init.select(sel))
            pool_counts[b] += int(sel.sum())
        other_time += total * _WALK_MANAGE_COST

        memory: list[int] = []  # LRU order, most recent last

        while completed < total:
            if pool_counts.sum() == 0:  # pragma: no cover - guard
                raise SimulationError(
                    f"GraphWalker stalled with {completed}/{total} done"
                )
            # State-aware scheduling: block with the most waiting walks.
            target = int(np.argmax(pool_counts))
            other_time += _WALK_MANAGE_COST * 4  # scheduling scan
            if target not in memory:
                io_time += (
                    self.cfg.io_request_overhead
                    + self.part.block_bytes(target) / self.cfg.disk_read_bytes_per_sec
                )
                read_bytes += self.part.block_bytes(target)
                block_loads += 1
                memory.append(target)
                if len(memory) > self.memory_blocks:
                    memory.pop(0)
                if spilled[target]:
                    # Walks previously spilled come back from disk.
                    nbytes = int(pool_counts[target]) * 12
                    io_time += (
                        self.cfg.io_request_overhead
                        + nbytes / self.cfg.disk_read_bytes_per_sec
                    )
                    read_bytes += nbytes
                    spilled[target] = False
            else:
                memory.remove(target)
                memory.append(target)
            # Gather walks waiting in every in-memory block.
            gathered: list[WalkSet] = []
            for b in memory:
                if pool_counts[b]:
                    gathered.extend(pools[b])
                    pools[b] = []
                    pool_counts[b] = 0
            walks = WalkSet.concat(gathered)
            if len(walks) == 0:
                continue
            # Asynchronous updating until walks leave the memory set.
            mem_arr = np.asarray(sorted(memory), dtype=np.int64)
            src = walks.src.copy()
            cur = walks.cur.copy()
            hop = walks.hop.copy()
            active = np.arange(len(walks), dtype=np.int64)
            while active.size:
                nxt = sampler(cur[active], rng)
                dead = nxt < 0
                moved = ~dead
                hops_total += int(moved.sum())
                update_time += int(moved.sum()) / self.cfg.cpu_hops_per_sec
                midx = active[moved]
                cur[midx] = nxt[moved]
                hop[midx] -= 1
                done = dead.copy()
                done[moved] = hop[midx] == 0
                if spec.stop_probability > 0:
                    still = moved & ~done
                    if still.any():
                        stop = spec.apply_stop_probability(hop[active[still]], rng)
                        tmp = np.zeros(active.size, dtype=bool)
                        tmp[np.flatnonzero(still)[stop]] = True
                        done |= tmp
                completed += int(done.sum())
                cont = active[~done]
                if cont.size == 0:
                    break
                blocks = self.part.block_of_vertex(cur[cont])
                stays = np.isin(blocks, mem_arr)
                leave = cont[~stays]
                if leave.size:
                    lblocks = blocks[~stays]
                    other_time += leave.size * _WALK_MANAGE_COST
                    for b in np.unique(lblocks):
                        sel = lblocks == b
                        pools[int(b)].append(
                            WalkSet(src[leave[sel]], cur[leave[sel]], hop[leave[sel]])
                        )
                        pool_counts[b] += int(sel.sum())
                        # Oversized pools spill to disk.
                        if (
                            pool_counts[b] > self.cfg.walk_pool_spill
                            and not spilled[b]
                        ):
                            nbytes = int(pool_counts[b]) * 12
                            io_time += (
                                self.cfg.io_request_overhead
                                + nbytes / self.cfg.disk_read_bytes_per_sec
                            )
                            write_bytes += nbytes
                            spilled[b] = True
                active = cont[stays]

        elapsed = io_time + update_time + other_time
        return GraphWalkerResult(
            elapsed=elapsed,
            total_walks=total,
            hops=hops_total,
            io_time=io_time,
            update_time=update_time,
            other_time=other_time,
            disk_read_bytes=read_bytes,
            disk_write_bytes=write_bytes,
            block_loads=block_loads,
            counters={
                "blocks": float(n_blocks),
                "memory_blocks": float(self.memory_blocks),
            },
        )

    def describe(self) -> str:
        from ..common.units import fmt_bytes

        return (
            f"GraphWalker: |V|={self.graph.num_vertices} "
            f"|E|={self.graph.num_edges} blocks={self.part.num_blocks} "
            f"({fmt_bytes(self.cfg.block_bytes)} each), memory holds "
            f"{self.memory_blocks} blocks ({fmt_bytes(self.cfg.memory_bytes)})"
        )
