"""FlashWalker reproduction.

A behavioral, event-driven reproduction of *FlashWalker: An In-Storage
Accelerator for Graph Random Walks* (Niu et al., IPDPS 2022), plus every
substrate it depends on: a CSR graph library with generators and a
fixed-size block partitioner, an SSD timing model (NAND arrays, ONFI
channels, FTL, DRAM, PCIe host interface), a random-walk algorithm
layer, the GraphWalker and DrunkardMob baselines, and the experiment
harness that regenerates the paper's figures and tables.

Quick start::

    from repro import FlashWalker, GraphWalker, WalkSpec
    from repro.graph import build_graph
    from repro.common import RngRegistry

    graph = build_graph("TT", RngRegistry(0))
    fw = FlashWalker(graph, seed=0)
    result = fw.run(num_walks=100_000, spec=WalkSpec(length=6))
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .baselines import DrunkardMob, GraphWalker, GraphWalkerResult
from .common import FaultConfig, FlashWalkerConfig, GraphWalkerConfig, RngRegistry
from .core import FlashWalker, RunResult
from .faults import Checkpoint, CheckpointManager, FaultModel
from .graph import CSRGraph, build_graph, partition_graph
from .walks import WalkSpec

__version__ = "1.0.0"

__all__ = [
    "DrunkardMob",
    "GraphWalker",
    "GraphWalkerResult",
    "Checkpoint",
    "CheckpointManager",
    "FaultConfig",
    "FaultModel",
    "FlashWalkerConfig",
    "GraphWalkerConfig",
    "RngRegistry",
    "FlashWalker",
    "RunResult",
    "CSRGraph",
    "build_graph",
    "partition_graph",
    "WalkSpec",
    "__version__",
]
