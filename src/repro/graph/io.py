"""Graph I/O: edge-list text files and a binary CSR format.

Text format is the usual whitespace-separated ``src dst [weight]`` per
line with ``#`` comments — what SNAP/network-repository datasets use and
what GraphWalker ingests.  The binary format is a small header + raw
NumPy arrays, the equivalent of the paper's preprocessed CSR inputs
(Table IV quotes both "CSR Size" and "Text Size").
"""

from __future__ import annotations

import io
import struct
from pathlib import Path

import numpy as np

from ..common.errors import GraphError
from .csr import CSRGraph

__all__ = ["write_edge_list", "read_edge_list", "save_csr", "load_csr"]

_MAGIC = b"FWCSR1\x00\x00"


def write_edge_list(graph: CSRGraph, path: str | Path, header: str = "") -> None:
    """Write ``graph`` as a text edge list (optionally with weights)."""
    path = Path(path)
    src, dst = graph.to_edge_list()
    with path.open("w") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        f.write(f"# vertices: {graph.num_vertices} edges: {graph.num_edges}\n")
        if graph.is_weighted:
            for s, d, w in zip(src, dst, graph.weights):
                f.write(f"{s} {d} {w:.17g}\n")
        else:
            np.savetxt(f, np.column_stack([src, dst]), fmt="%d")


def read_edge_list(
    path: str | Path, num_vertices: int | None = None, weighted: bool = False
) -> CSRGraph:
    """Parse a text edge list into a CSR graph.

    Lines starting with ``#`` or ``%`` are comments.  With ``weighted``,
    a third column is required on every edge line.
    """
    path = Path(path)
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    with path.open() as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'src dst', got {line!r}")
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: bad vertex id: {line!r}") from exc
            if weighted:
                if len(parts) < 3:
                    raise GraphError(f"{path}:{lineno}: missing weight: {line!r}")
                try:
                    weights.append(float(parts[2]))
                except ValueError as exc:
                    raise GraphError(f"{path}:{lineno}: bad weight: {line!r}") from exc
    w = np.array(weights) if weighted else None
    return CSRGraph.from_edge_list(
        np.array(srcs, dtype=np.int64),
        np.array(dsts, dtype=np.int64),
        num_vertices=num_vertices,
        weights=w,
    )


def save_csr(graph: CSRGraph, path: str | Path) -> int:
    """Serialise ``graph`` to the binary CSR format; returns bytes written."""
    path = Path(path)
    buf = io.BytesIO()
    buf.write(_MAGIC)
    flags = 1 if graph.is_weighted else 0
    buf.write(struct.pack("<qqq", graph.num_vertices, graph.num_edges, flags))
    buf.write(graph.offsets.astype("<i8").tobytes())
    buf.write(graph.edges.astype("<i8").tobytes())
    if graph.is_weighted:
        buf.write(graph.weights.astype("<f8").tobytes())
    data = buf.getvalue()
    path.write_bytes(data)
    return len(data)


def load_csr(path: str | Path) -> CSRGraph:
    """Load a graph written by :func:`save_csr`."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < len(_MAGIC) + 24 or data[: len(_MAGIC)] != _MAGIC:
        raise GraphError(f"{path}: not a FlashWalker CSR file")
    off = len(_MAGIC)
    n, m, flags = struct.unpack_from("<qqq", data, off)
    off += 24
    if n < 0 or m < 0:
        raise GraphError(f"{path}: corrupt header (n={n}, m={m})")
    need = (n + 1) * 8 + m * 8 + (m * 8 if flags & 1 else 0)
    if len(data) - off != need:
        raise GraphError(
            f"{path}: truncated or oversized payload "
            f"(expected {need} bytes, found {len(data) - off})"
        )
    offsets = np.frombuffer(data, dtype="<i8", count=n + 1, offset=off).copy()
    off += (n + 1) * 8
    edges = np.frombuffer(data, dtype="<i8", count=m, offset=off).copy()
    off += m * 8
    weights = None
    if flags & 1:
        weights = np.frombuffer(data, dtype="<f8", count=m, offset=off).copy()
    return CSRGraph(offsets, edges, weights)
