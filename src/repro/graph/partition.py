"""Graph partitioning into fixed-size graph blocks (subgraphs).

Section III-D: "A subgraph stores its vertices and their out-edges in a
flash memory block with the fixed size and the flash memory block is
referred to as a graph block.  Therefore, a subgraph contains varied
number of vertices."  Blocks cover *contiguous vertex ID ranges*, which is
what makes the subgraph mapping table a sorted-range binary search.

A vertex whose edges cannot fit one block is **dense** (Section III-D,
pre-walking): its out-edges are split across several consecutive blocks,
each holding an edge slice; the dense-vertices mapping table records the
block list metadata (count, first block ID, last block's out-degree).

The partitioner is O(#blocks) thanks to a galloping ``searchsorted`` over
the prefix-summed byte cost, so multi-million-vertex graphs partition in
milliseconds (hpc-parallel guide: vectorize the hot loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import PartitionError
from .csr import CSRGraph

__all__ = ["DenseVertexMeta", "GraphPartitioning", "partition_graph"]

#: ID-units reserved per block for in-block metadata (block header: first
#: vertex ID + vertex count), leaving the rest for offsets + edges.
_BLOCK_HEADER_UNITS = 2


@dataclass(frozen=True)
class DenseVertexMeta:
    """Dense-vertex mapping entry (Section III-D).

    ``vertex``: the dense vertex ID. ``first_block``: ID of its first
    graph block. ``n_blocks``: how many consecutive blocks hold its edges.
    ``last_block_degree``: out-degree stored in the final block.
    ``edges_per_block``: edge-slice size of every block but the last.
    """

    vertex: int
    first_block: int
    n_blocks: int
    last_block_degree: int
    edges_per_block: int

    @property
    def out_degree(self) -> int:
        return (self.n_blocks - 1) * self.edges_per_block + self.last_block_degree

    def block_for_edge(self, edge_index: int) -> int:
        """Graph block holding this vertex's ``edge_index``-th out-edge.

        This is the pre-walking computation: ``gb_next`` is the
        ``ceil(rnd / size(gb))``-th block of the dense vertex.
        """
        if not 0 <= edge_index < self.out_degree:
            raise PartitionError(
                f"edge index {edge_index} out of range for dense vertex "
                f"{self.vertex} with degree {self.out_degree}"
            )
        return self.first_block + edge_index // self.edges_per_block


@dataclass
class GraphPartitioning:
    """Result of :func:`partition_graph`.

    Blocks are numbered 0..num_blocks-1 in vertex-ID order.  Per-block
    arrays (all length ``num_blocks``):

    * ``block_lo`` / ``block_hi`` — inclusive vertex range of each block
      (for dense blocks, ``lo == hi`` == the dense vertex).
    * ``block_edges`` — number of edges stored in the block (the "sum of
      out-degree of the subgraph" field of the mapping table).
    * ``block_edge_lo`` — for dense blocks, the start of the edge slice
      within the dense vertex's adjacency; 0 for normal blocks.
    * ``is_dense_block`` — True for blocks that belong to a dense vertex.
    """

    graph: CSRGraph
    subgraph_bytes: int
    vid_bytes: int
    block_lo: np.ndarray
    block_hi: np.ndarray
    block_edges: np.ndarray
    block_edge_lo: np.ndarray
    is_dense_block: np.ndarray
    dense_meta: dict[int, DenseVertexMeta] = field(default_factory=dict)

    # -- sizes -----------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return int(self.block_lo.size)

    @property
    def num_dense_vertices(self) -> int:
        return len(self.dense_meta)

    def block_bytes(self, block_id: int) -> int:
        """Stored bytes of one block (header + offsets + edge slice; a
        weighted graph's blocks also hold the CL entries)."""
        self._check_block(block_id)
        nv = int(self.block_hi[block_id] - self.block_lo[block_id] + 1)
        edge_units = 2 if self.graph.is_weighted else 1
        units = (
            _BLOCK_HEADER_UNITS
            + (nv + 1)
            + edge_units * int(self.block_edges[block_id])
        )
        return units * self.vid_bytes

    # -- lookup (the subgraph mapping table semantics) ----------------------------

    def block_of_vertex(self, v: int | np.ndarray) -> np.ndarray | int:
        """Block ID(s) containing vertex ``v`` (first block if dense).

        This is semantically the binary search over the subgraph mapping
        table; the accelerator-side *timing* of that search is modeled in
        :mod:`repro.core.mapping`.
        """
        scalar = np.isscalar(v)
        varr = np.atleast_1d(np.asarray(v, dtype=np.int64))
        if varr.size and (varr.min() < 0 or varr.max() >= self.graph.num_vertices):
            raise PartitionError(
                f"vertex out of range [0, {self.graph.num_vertices})"
            )
        idx = np.searchsorted(self.block_lo, varr, side="right") - 1
        # A vertex inside a dense vertex's block run maps to the run's
        # first block: back up over earlier slices of the same vertex.
        first = self._dense_first_block
        if first is not None:
            idx = first[idx]
        if scalar:
            return int(idx[0])
        return idx

    def vertex_in_block(self, v: np.ndarray, block_id: int) -> np.ndarray:
        """Boolean mask: is each vertex within ``block_id``'s range?"""
        self._check_block(block_id)
        return (v >= self.block_lo[block_id]) & (v <= self.block_hi[block_id])

    def is_dense_vertex(self, v: int) -> bool:
        return int(v) in self.dense_meta

    # -- groupings -----------------------------------------------------------------

    def partition_of_block(self, block_id: np.ndarray | int, partition_subgraphs: int):
        """Graph-partition index of block(s) (Section III-D)."""
        if partition_subgraphs < 1:
            raise PartitionError("partition_subgraphs must be >= 1")
        return np.asarray(block_id) // partition_subgraphs

    def num_partitions(self, partition_subgraphs: int) -> int:
        if partition_subgraphs < 1:
            raise PartitionError("partition_subgraphs must be >= 1")
        return -(-self.num_blocks // partition_subgraphs)

    def partition_block_range(
        self, partition_id: int, partition_subgraphs: int
    ) -> tuple[int, int]:
        """[first, last] block IDs of a partition (inclusive)."""
        n = self.num_partitions(partition_subgraphs)
        if not 0 <= partition_id < n:
            raise PartitionError(f"partition {partition_id} out of range [0, {n})")
        first = partition_id * partition_subgraphs
        last = min(first + partition_subgraphs, self.num_blocks) - 1
        return first, last

    def range_table(self, range_subgraphs: int) -> tuple[np.ndarray, np.ndarray]:
        """Subgraph-range mapping table (Section III-C).

        Returns (low_end_vertex, high_end_vertex) per range of
        ``range_subgraphs`` consecutive blocks.
        """
        if range_subgraphs < 1:
            raise PartitionError("range_subgraphs must be >= 1")
        n_ranges = -(-self.num_blocks // range_subgraphs)
        lo = self.block_lo[::range_subgraphs][:n_ranges]
        hi_idx = np.minimum(
            np.arange(1, n_ranges + 1) * range_subgraphs - 1, self.num_blocks - 1
        )
        hi = self.block_hi[hi_idx]
        return lo.copy(), hi.copy()

    # -- consistency ------------------------------------------------------------------

    def verify(self) -> None:
        """Raise :class:`PartitionError` if any invariant is violated."""
        if self.num_blocks == 0:
            raise PartitionError("partitioning has no blocks")
        if not (
            self.block_lo.size
            == self.block_hi.size
            == self.block_edges.size
            == self.block_edge_lo.size
            == self.is_dense_block.size
        ):
            raise PartitionError("per-block arrays have inconsistent lengths")
        if self.block_lo[0] != 0:
            raise PartitionError("first block must start at vertex 0")
        if self.block_hi[-1] != self.graph.num_vertices - 1:
            raise PartitionError("last block must end at the last vertex")
        # Vertex coverage: contiguous, and only dense runs repeat a vertex.
        for i in range(1, self.num_blocks):
            prev_hi, lo = int(self.block_hi[i - 1]), int(self.block_lo[i])
            if lo == prev_hi + 1:
                continue
            if (
                lo == prev_hi
                and self.is_dense_block[i]
                and self.block_lo[i] == self.block_hi[i]
            ):
                continue  # continuation block of a dense vertex
            raise PartitionError(
                f"vertex coverage gap/overlap between blocks {i-1} and {i}: "
                f"hi={prev_hi}, next lo={lo}"
            )
        # Every edge stored exactly once.
        if int(self.block_edges.sum()) != self.graph.num_edges:
            raise PartitionError(
                f"blocks store {int(self.block_edges.sum())} edges, graph has "
                f"{self.graph.num_edges}"
            )
        # Dense metadata consistent with the graph.
        deg = self.graph.out_degrees()
        for v, meta in self.dense_meta.items():
            if meta.out_degree != int(deg[v]):
                raise PartitionError(
                    f"dense vertex {v}: metadata degree {meta.out_degree} != "
                    f"graph degree {int(deg[v])}"
                )
        # Block sizes within budget.
        for b in range(self.num_blocks):
            if self.block_bytes(b) > self.subgraph_bytes:
                raise PartitionError(
                    f"block {b} occupies {self.block_bytes(b)} bytes "
                    f"> subgraph_bytes={self.subgraph_bytes}"
                )

    def _check_block(self, block_id: int) -> None:
        if not 0 <= block_id < self.num_blocks:
            raise PartitionError(
                f"block {block_id} out of range [0, {self.num_blocks})"
            )

    def __post_init__(self):
        # Precompute dense-run first-block redirection for block_of_vertex.
        if self.is_dense_block.any():
            first = np.arange(self.num_blocks, dtype=np.int64)
            for meta in self.dense_meta.values():
                first[meta.first_block : meta.first_block + meta.n_blocks] = (
                    meta.first_block
                )
            self._dense_first_block = first
        else:
            self._dense_first_block = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphPartitioning(blocks={self.num_blocks}, "
            f"dense_vertices={self.num_dense_vertices}, "
            f"subgraph_bytes={self.subgraph_bytes})"
        )


def partition_graph(
    graph: CSRGraph, subgraph_bytes: int, vid_bytes: int = 4
) -> GraphPartitioning:
    """Partition ``graph`` into graph blocks of at most ``subgraph_bytes``.

    Vertices are packed greedily in ID order; a vertex whose adjacency
    alone overflows an empty block becomes dense and is split across
    dedicated consecutive blocks.

    Weighted graphs store the cumulative-weight list CL alongside the
    edges (Section III-B: "The biased random walk requires more storage
    space for CL"), so each edge costs two ID units instead of one and
    blocks hold roughly half as many edges.
    """
    if subgraph_bytes <= 0:
        raise PartitionError(f"subgraph_bytes must be positive, got {subgraph_bytes}")
    if vid_bytes <= 0:
        raise PartitionError(f"vid_bytes must be positive, got {vid_bytes}")
    cap_units = subgraph_bytes // vid_bytes - _BLOCK_HEADER_UNITS
    if cap_units < 3:
        raise PartitionError(
            f"subgraph_bytes={subgraph_bytes} too small for vid_bytes={vid_bytes}"
        )
    n = graph.num_vertices
    if n == 0:
        raise PartitionError("cannot partition an empty graph")
    edge_units = 2 if graph.is_weighted else 1
    offsets = graph.offsets
    # Cost in vid units of packing vertices [start..end] into one block:
    #   (end - start + 2) offsets entries
    #   + edge_units * (offsets[end+1] - offsets[start]) edge (+CL) entries.
    # Monotone in `end`, so the largest feasible end is a searchsorted over
    #   f(end) = end + edge_units * offsets[end + 1].
    f = np.arange(n, dtype=np.int64) + edge_units * offsets[1:]
    #: Edges one dense block can hold (all capacity minus two offset slots).
    dense_edges_per_block = (cap_units - 2) // edge_units
    if dense_edges_per_block < 1:
        raise PartitionError("subgraph too small to hold a single edge")

    lo_list: list[int] = []
    hi_list: list[int] = []
    edges_list: list[int] = []
    edge_lo_list: list[int] = []
    dense_flag: list[bool] = []
    dense_meta: dict[int, DenseVertexMeta] = {}

    start = 0
    while start < n:
        deg_start = int(offsets[start + 1] - offsets[start])
        single_cost = 2 + edge_units * deg_start  # one vertex + its edges/CL
        if single_cost > cap_units:
            # Dense vertex: split its adjacency across dedicated blocks.
            first_block = len(lo_list)
            deg = deg_start
            n_blocks = -(-deg // dense_edges_per_block)
            for j in range(n_blocks):
                elo = j * dense_edges_per_block
                ehi = min(deg, elo + dense_edges_per_block)
                lo_list.append(start)
                hi_list.append(start)
                edges_list.append(ehi - elo)
                edge_lo_list.append(elo)
                dense_flag.append(True)
            dense_meta[start] = DenseVertexMeta(
                vertex=start,
                first_block=first_block,
                n_blocks=n_blocks,
                last_block_degree=deg - (n_blocks - 1) * dense_edges_per_block,
                edges_per_block=dense_edges_per_block,
            )
            start += 1
            continue
        # Largest `end` with (end - start + 2) + offsets[end+1] - offsets[start]
        # <= cap_units, i.e. f(end) <= cap_units + start - 2 + offsets[start].
        limit = cap_units + start - 2 + edge_units * int(offsets[start])
        end = int(np.searchsorted(f, limit, side="right")) - 1
        if end < start:  # the single vertex fits, so this cannot happen
            raise PartitionError(
                f"packing failed at vertex {start}"
            )  # pragma: no cover - defensive
        # Never let a non-dense block swallow a later dense vertex: stop
        # before any vertex that must be split.  (A vertex with
        # single_cost > cap_units cannot be inside [start..end] anyway,
        # because including it would blow the same budget.)
        lo_list.append(start)
        hi_list.append(end)
        edges_list.append(int(offsets[end + 1] - offsets[start]))
        edge_lo_list.append(0)
        dense_flag.append(False)
        start = end + 1

    part = GraphPartitioning(
        graph=graph,
        subgraph_bytes=subgraph_bytes,
        vid_bytes=vid_bytes,
        block_lo=np.array(lo_list, dtype=np.int64),
        block_hi=np.array(hi_list, dtype=np.int64),
        block_edges=np.array(edges_list, dtype=np.int64),
        block_edge_lo=np.array(edge_lo_list, dtype=np.int64),
        is_dense_block=np.array(dense_flag, dtype=bool),
        dense_meta=dense_meta,
    )
    return part
