"""Graph statistics: degree distributions, skew measures, Table IV rows.

Used by the dataset registry to verify that scaled analogs keep the
structural properties the paper's optimizations depend on: power-law
degree skew (hot subgraphs, Section III-C) and the presence of dense
vertices (pre-walking, Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import GraphError
from ..common.units import fmt_bytes, fmt_count
from .csr import CSRGraph

__all__ = ["GraphStats", "compute_stats", "gini", "estimate_powerlaw_exponent"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = uniform, ->1 = skewed)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise GraphError("gini of empty array")
    if values.min() < 0:
        raise GraphError("gini requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_vals = np.sort(values)
    n = values.size
    cum = np.cumsum(sorted_vals)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def estimate_powerlaw_exponent(degrees: np.ndarray, dmin: int = 1) -> float:
    """Maximum-likelihood power-law exponent (Clauset et al. estimator).

    Only degrees >= ``dmin`` contribute.  Returns ``nan`` when fewer than
    two qualifying observations exist.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= dmin]
    if tail.size < 2:
        return float("nan")
    return float(1.0 + tail.size / np.sum(np.log(tail / (dmin - 0.5))))


@dataclass
class GraphStats:
    """Summary of a graph's structure (one Table IV row plus skew)."""

    num_vertices: int
    num_edges: int
    csr_bytes: int
    text_bytes_estimate: int
    max_out_degree: int
    mean_out_degree: float
    degree_gini: float
    powerlaw_exponent: float
    isolated_vertices: int
    top1pct_edge_share: float

    def row(self, name: str) -> str:
        """Render as a Table IV-style row."""
        return (
            f"{name:<14} |V|={fmt_count(self.num_vertices):>8} "
            f"|E|={fmt_count(self.num_edges):>8} "
            f"CSR={fmt_bytes(self.csr_bytes):>9} "
            f"Text~{fmt_bytes(self.text_bytes_estimate):>9} "
            f"maxdeg={self.max_out_degree} gini={self.degree_gini:.3f}"
        )


def compute_stats(graph: CSRGraph, vid_bytes: int = 4) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    deg = graph.out_degrees()
    if graph.num_vertices == 0:
        raise GraphError("cannot compute stats of empty graph")
    # Text size estimate: "src dst\n" with decimal IDs, ~2x(digits+1) bytes.
    digits = max(1, int(np.ceil(np.log10(max(2, graph.num_vertices)))))
    text_est = graph.num_edges * (2 * digits + 2)
    sorted_deg = np.sort(deg)[::-1]
    k = max(1, graph.num_vertices // 100)
    top_share = float(sorted_deg[:k].sum() / max(1, graph.num_edges))
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        csr_bytes=graph.csr_bytes(vid_bytes),
        text_bytes_estimate=text_est,
        max_out_degree=int(deg.max()) if deg.size else 0,
        mean_out_degree=float(deg.mean()) if deg.size else 0.0,
        degree_gini=gini(deg),
        powerlaw_exponent=estimate_powerlaw_exponent(deg),
        isolated_vertices=int(np.count_nonzero(deg == 0)),
        top1pct_edge_share=top_share,
    )
