"""Graph traversal utilities: BFS, components, reachability.

Support routines for dataset validation and the sampling applications:
random-walk workloads behave very differently on graphs with many tiny
components (walks die quickly) than on a giant connected core, so the
dataset registry's tests use these to characterise the analogs.
All routines are iterative and vectorized per frontier level.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import GraphError
from .csr import CSRGraph

__all__ = [
    "bfs_levels",
    "reachable_count",
    "weakly_connected_components",
    "largest_component_fraction",
]


def bfs_levels(graph: CSRGraph, source: int, max_depth: int | None = None) -> np.ndarray:
    """BFS distance (in hops) from ``source``; -1 for unreachable."""
    if not 0 <= source < graph.num_vertices:
        raise GraphError(f"source {source} out of range")
    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        if max_depth is not None and depth >= max_depth:
            break
        # Gather all out-neighbors of the frontier in one shot.
        starts = graph.offsets[frontier]
        ends = graph.offsets[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        nbrs = np.concatenate(
            [graph.edges[s:e] for s, e in zip(starts, ends)]
        )
        fresh = np.unique(nbrs[levels[nbrs] < 0])
        depth += 1
        levels[fresh] = depth
        frontier = fresh
    return levels


def reachable_count(graph: CSRGraph, source: int) -> int:
    """Number of vertices reachable from ``source`` (itself included)."""
    return int(np.count_nonzero(bfs_levels(graph, source) >= 0))


def weakly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (labels are 0..k-1, not sorted by size).

    Union-find with path halving over the undirected edge set —
    O(E alpha(V)) and allocation-free in the loop.
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    src, dst = graph.to_edge_list()
    for a, b in zip(src.tolist(), dst.tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    # Compress and relabel densely.
    roots = np.array([find(v) for v in range(n)], dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    return labels


def largest_component_fraction(graph: CSRGraph) -> float:
    """Fraction of vertices in the largest weakly connected component."""
    if graph.num_vertices == 0:
        raise GraphError("empty graph")
    labels = weakly_connected_components(graph)
    counts = np.bincount(labels)
    return float(counts.max() / graph.num_vertices)
