"""Graph substrate: CSR graphs, generators, I/O, partitioning, datasets."""

from .csr import CSRGraph
from .datasets import DATASETS, DatasetSpec, build_graph, dataset, dataset_names
from .generators import (
    add_random_weights,
    complete_graph,
    erdos_renyi,
    path_graph,
    powerlaw_graph,
    ring_graph,
    rmat,
    star_graph,
)
from .io import load_csr, read_edge_list, save_csr, write_edge_list
from .partition import DenseVertexMeta, GraphPartitioning, partition_graph
from .stats import GraphStats, compute_stats, estimate_powerlaw_exponent, gini
from .traversal import (
    bfs_levels,
    largest_component_fraction,
    reachable_count,
    weakly_connected_components,
)

__all__ = [
    "CSRGraph",
    "DATASETS",
    "DatasetSpec",
    "build_graph",
    "dataset",
    "dataset_names",
    "add_random_weights",
    "complete_graph",
    "erdos_renyi",
    "path_graph",
    "powerlaw_graph",
    "ring_graph",
    "rmat",
    "star_graph",
    "load_csr",
    "read_edge_list",
    "save_csr",
    "write_edge_list",
    "DenseVertexMeta",
    "GraphPartitioning",
    "partition_graph",
    "GraphStats",
    "compute_stats",
    "estimate_powerlaw_exponent",
    "gini",
    "bfs_levels",
    "largest_component_fraction",
    "reachable_count",
    "weakly_connected_components",
]
