"""Synthetic graph generators.

The paper's synthetic graphs (R2B, R8B) come from PaRMAT; our
:func:`rmat` is a vectorized recursive-matrix generator with the standard
Graph500/PaRMAT parameters ``(a, b, c, d)``.  Real-graph *analogs*
(Twitter/Friendster/ClueWeb at laptop scale) are produced by
:func:`powerlaw_graph`, which matches a target |V|, |E| and degree skew.

All generators take an explicit :class:`numpy.random.Generator` so graph
content is a pure function of the seed (DESIGN.md Section 4).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import GraphError
from .csr import CSRGraph

__all__ = [
    "rmat",
    "powerlaw_graph",
    "erdos_renyi",
    "ring_graph",
    "complete_graph",
    "star_graph",
    "path_graph",
    "add_random_weights",
]


def rmat(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    dedup: bool = False,
    permute: bool = True,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    ``edge_factor`` edges are drawn per vertex by the recursive quadrant
    procedure; ``(a, b, c, 1-a-b-c)`` are the quadrant probabilities
    (defaults are the Graph500/PaRMAT values, giving heavy skew).
    ``permute`` relabels vertices randomly so vertex ID does not correlate
    with degree — important because FlashWalker's partitioner is
    ID-contiguous and real graph IDs are not degree-sorted.
    """
    if scale < 0 or scale > 30:
        raise GraphError(f"rmat scale out of range [0, 30]: {scale}")
    if edge_factor < 1:
        raise GraphError(f"edge_factor must be >= 1, got {edge_factor}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise GraphError(f"invalid RMAT probabilities a={a} b={b} c={c} d={d}")

    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # At each of `scale` bit levels, choose a quadrant per edge.
    ab = a + b
    a_frac = a / ab if ab > 0 else 0.0
    c_frac = c / (c + d) if (c + d) > 0 else 0.0
    for _ in range(scale):
        src <<= 1
        dst <<= 1
        r_row = rng.random(m)
        r_col = rng.random(m)
        go_down = r_row >= ab  # bottom half of the matrix -> src bit 1
        src += go_down
        col_threshold = np.where(go_down, c_frac, a_frac)
        dst += r_col >= col_threshold
    if permute:
        perm = rng.permutation(n)
        src = perm[src]
        dst = perm[dst]
    if dedup:
        pair = src * np.int64(n) + dst
        _, keep = np.unique(pair, return_index=True)
        src, dst = src[keep], dst[keep]
    return CSRGraph.from_edge_list(src, dst, num_vertices=n)


def powerlaw_graph(
    num_vertices: int,
    num_edges: int,
    rng: np.random.Generator,
    exponent: float = 0.9,
    self_loops: bool = False,
) -> CSRGraph:
    """Graph with Zipf-distributed in- *and* out-degree.

    Both endpoints of each edge are drawn from a finite Zipf(``exponent``)
    distribution over randomly-permuted vertex ranks, reproducing the
    power-law degree structure of social/web graphs that FlashWalker's
    hot-subgraph optimization exploits (Section III-C).  Exponents in
    (0, 1] are valid for finite vertex counts and give the moderate skew
    of real social graphs; larger exponents concentrate edges harder.
    """
    if num_vertices < 1:
        raise GraphError(f"need >= 1 vertex, got {num_vertices}")
    if num_edges < 0:
        raise GraphError(f"negative edge count: {num_edges}")
    if exponent <= 0.0:
        raise GraphError(f"Zipf exponent must be > 0, got {exponent}")
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    probs = ranks**-exponent
    probs /= probs.sum()
    cdf = np.cumsum(probs)
    cdf[-1] = 1.0
    perm_src = rng.permutation(num_vertices)
    perm_dst = rng.permutation(num_vertices)
    src = perm_src[np.searchsorted(cdf, rng.random(num_edges), side="right")]
    dst = perm_dst[np.searchsorted(cdf, rng.random(num_edges), side="right")]
    if not self_loops and num_vertices > 1:
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % num_vertices
    return CSRGraph.from_edge_list(src, dst, num_vertices=num_vertices)


def erdos_renyi(
    num_vertices: int, num_edges: int, rng: np.random.Generator
) -> CSRGraph:
    """Uniform random directed graph with exactly ``num_edges`` edges."""
    if num_vertices < 1:
        raise GraphError(f"need >= 1 vertex, got {num_vertices}")
    if num_edges < 0:
        raise GraphError(f"negative edge count: {num_edges}")
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return CSRGraph.from_edge_list(src, dst, num_vertices=num_vertices)


def ring_graph(num_vertices: int) -> CSRGraph:
    """Directed cycle 0 -> 1 -> ... -> n-1 -> 0 (every vertex degree 1)."""
    if num_vertices < 1:
        raise GraphError(f"need >= 1 vertex, got {num_vertices}")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    return CSRGraph.from_edge_list(src, dst, num_vertices=num_vertices)


def complete_graph(num_vertices: int) -> CSRGraph:
    """Complete directed graph without self loops."""
    if num_vertices < 1:
        raise GraphError(f"need >= 1 vertex, got {num_vertices}")
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), num_vertices - 1)
    base = np.tile(np.arange(num_vertices - 1, dtype=np.int64), num_vertices)
    # skip the self loop by shifting destinations >= the source
    dst = base + (base >= src)
    return CSRGraph.from_edge_list(src, dst, num_vertices=num_vertices)


def star_graph(num_leaves: int, bidirectional: bool = True) -> CSRGraph:
    """Vertex 0 connected to ``num_leaves`` leaves — a single dense vertex.

    With ``bidirectional`` each leaf points back to the hub, so walks do
    not get stuck; this is the canonical pre-walking test graph.
    """
    if num_leaves < 1:
        raise GraphError(f"need >= 1 leaf, got {num_leaves}")
    hub_src = np.zeros(num_leaves, dtype=np.int64)
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    if bidirectional:
        src = np.concatenate([hub_src, leaves])
        dst = np.concatenate([leaves, np.zeros(num_leaves, dtype=np.int64)])
    else:
        src, dst = hub_src, leaves
    return CSRGraph.from_edge_list(src, dst, num_vertices=num_leaves + 1)


def path_graph(num_vertices: int) -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> n-1 (last vertex is a sink)."""
    if num_vertices < 1:
        raise GraphError(f"need >= 1 vertex, got {num_vertices}")
    src = np.arange(num_vertices - 1, dtype=np.int64)
    dst = src + 1
    return CSRGraph.from_edge_list(src, dst, num_vertices=num_vertices)


def add_random_weights(
    graph: CSRGraph, rng: np.random.Generator, low: float = 0.1, high: float = 10.0
) -> CSRGraph:
    """Copy of ``graph`` with uniform random edge weights in [low, high)."""
    if not 0 < low < high:
        raise GraphError(f"need 0 < low < high, got low={low} high={high}")
    weights = rng.uniform(low, high, size=graph.num_edges)
    return CSRGraph(graph.offsets, graph.edges, weights)
