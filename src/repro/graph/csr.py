"""Compressed Sparse Row graph representation.

The whole library operates on :class:`CSRGraph`: an ``offsets`` array of
length ``n+1`` and an ``edges`` array holding destination vertex IDs,
exactly the layout the paper stores in graph blocks (Section III-B).
Optionally a parallel ``weights`` array supports biased random walks, with
a lazily-built cumulative-weight array for Inverse Transform Sampling.

Everything is NumPy, vectorized, and copy-free where possible (views for
adjacency slices), per the hpc-parallel guide.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """Directed graph in CSR form.

    Parameters
    ----------
    offsets:
        int64 array of length ``num_vertices + 1``; ``offsets[v]:offsets[v+1]``
        indexes vertex ``v``'s out-edges in ``edges``.
    edges:
        destination vertex IDs (any integer dtype; stored as given).
    weights:
        optional positive float edge weights aligned with ``edges``.
    """

    def __init__(
        self,
        offsets: np.ndarray,
        edges: np.ndarray,
        weights: np.ndarray | None = None,
    ):
        offsets = np.asarray(offsets, dtype=np.int64)
        edges = np.asarray(edges)
        if offsets.ndim != 1 or edges.ndim != 1:
            raise GraphError("offsets and edges must be 1-D arrays")
        if offsets.size == 0:
            raise GraphError("offsets must have length >= 1")
        if offsets[0] != 0:
            raise GraphError(f"offsets[0] must be 0, got {offsets[0]}")
        if offsets[-1] != edges.size:
            raise GraphError(
                f"offsets[-1] ({offsets[-1]}) must equal len(edges) ({edges.size})"
            )
        if offsets.size > 1 and np.any(np.diff(offsets) < 0):
            raise GraphError("offsets must be non-decreasing")
        if edges.size and not np.issubdtype(edges.dtype, np.integer):
            raise GraphError(f"edges must be an integer array, got {edges.dtype}")
        n = offsets.size - 1
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise GraphError(
                f"edge destinations must be in [0, {n}), got range "
                f"[{edges.min()}, {edges.max()}]"
            )
        self.offsets = offsets
        self.edges = edges
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != edges.shape:
                raise GraphError(
                    f"weights shape {weights.shape} != edges shape {edges.shape}"
                )
            if weights.size and weights.min() <= 0:
                raise GraphError("edge weights must be strictly positive")
        self.weights = weights
        self._cumweights: np.ndarray | None = None

    # -- basic properties -----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        return int(self.edges.size)

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, v: int | np.ndarray) -> np.ndarray | int:
        """Out-degree of vertex ``v`` (scalar or vectorized)."""
        deg = self.offsets[np.asarray(v) + 1] - self.offsets[np.asarray(v)]
        if np.isscalar(v) or (isinstance(v, np.ndarray) and v.ndim == 0):
            return int(deg)
        return deg

    def out_degrees(self) -> np.ndarray:
        """All out-degrees as an int64 array of length ``num_vertices``."""
        return np.diff(self.offsets)

    def neighbors(self, v: int) -> np.ndarray:
        """View (no copy) of vertex ``v``'s out-neighbors."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.edges[self.offsets[v] : self.offsets[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """View of vertex ``v``'s out-edge weights (requires weighted graph)."""
        if self.weights is None:
            raise GraphError("graph is unweighted")
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.weights[self.offsets[v] : self.offsets[v + 1]]

    def in_degrees(self) -> np.ndarray:
        """All in-degrees (counts of incoming edges)."""
        return np.bincount(self.edges, minlength=self.num_vertices).astype(np.int64)

    # -- sampling support -------------------------------------------------------

    def cumulative_weights(self) -> np.ndarray:
        """Per-vertex cumulative weight lists, concatenated (ITS support).

        ``cumweights[offsets[v]:offsets[v+1]]`` is the inclusive prefix sum
        of vertex ``v``'s edge weights — the CL list of Section III-B.
        Built lazily and cached.
        """
        if self.weights is None:
            raise GraphError("cumulative weights require a weighted graph")
        if self._cumweights is None:
            cw = np.cumsum(self.weights)
            # Subtract each vertex's starting total so every list restarts at
            # its own first weight.
            base = np.zeros_like(cw)
            starts = self.offsets[:-1]
            valid = starts < self.offsets[1:]
            seg_base = np.where(starts > 0, cw[starts - 1], 0.0)
            lengths = np.diff(self.offsets)
            base = np.repeat(seg_base[valid], lengths[valid])
            self._cumweights = cw - base
        return self._cumweights

    def sum_weights(self) -> np.ndarray:
        """Total out-edge weight per vertex (``sumWeight`` of Section III-B)."""
        if self.weights is None:
            raise GraphError("sum weights require a weighted graph")
        cw = self.cumulative_weights()
        totals = np.zeros(self.num_vertices)
        ends = self.offsets[1:] - 1
        nonempty = self.offsets[1:] > self.offsets[:-1]
        totals[nonempty] = cw[ends[nonempty]]
        return totals

    # -- conversions -------------------------------------------------------------

    @classmethod
    def from_edge_list(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_vertices: int | None = None,
        weights: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel source/destination arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError(f"src shape {src.shape} != dst shape {dst.shape}")
        if src.size and src.min() < 0:
            raise GraphError("negative source vertex")
        if num_vertices is None:
            num_vertices = int(max(src.max(), dst.max()) + 1) if src.size else 0
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        dst_sorted = dst[order]
        counts = np.bincount(src_sorted, minlength=num_vertices)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        w_sorted = None
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise GraphError("weights must align with edges")
            w_sorted = weights[order]
        return cls(offsets, dst_sorted, w_sorted)

    def to_edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays; inverse of :meth:`from_edge_list` up to order."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees())
        return src, self.edges.astype(np.int64)

    def with_uniform_weights(self) -> "CSRGraph":
        """Copy of this graph with all-ones weights (for biased-walk tests)."""
        return CSRGraph(self.offsets, self.edges, np.ones(self.num_edges))

    def subgraph_view(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """(offsets, edges) views for the vertex range [lo, hi] inclusive.

        The returned offsets are rebased to 0 — this is exactly the content
        of a graph block holding vertices lo..hi.
        """
        if not (0 <= lo <= hi < self.num_vertices):
            raise GraphError(f"bad vertex range [{lo}, {hi}]")
        off = self.offsets[lo : hi + 2] - self.offsets[lo]
        edg = self.edges[self.offsets[lo] : self.offsets[hi + 1]]
        return off, edg

    # -- memory accounting ---------------------------------------------------------

    def csr_bytes(self, vid_bytes: int = 4) -> int:
        """On-disk CSR footprint with ``vid_bytes``-wide IDs (Table IV)."""
        if vid_bytes <= 0:
            raise GraphError(f"vid_bytes must be positive, got {vid_bytes}")
        return (self.num_vertices + 1) * vid_bytes + self.num_edges * vid_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        w = ", weighted" if self.is_weighted else ""
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}{w})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        same = np.array_equal(self.offsets, other.offsets) and np.array_equal(
            self.edges, other.edges
        )
        if not same:
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None:
            return np.allclose(self.weights, other.weights)
        return True

    __hash__ = None  # mutable arrays -> unhashable
