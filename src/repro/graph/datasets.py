"""Scaled analogs of the paper's datasets (Table IV).

The paper evaluates on Twitter (TT), Friendster (FS), ClueWeb (CW) and
two PaRMAT graphs (R2B, R8B) of 1.46-8 B edges.  Graphs that large are a
hardware gate for a pure-Python reproduction, so every dataset here is
the paper's dataset divided by :data:`~repro.common.config.PAPER_SCALE`
(= 2048) in |V|, |E|, walk counts, and the capacities that interact with
them (GraphWalker DRAM, block sizes).  Ratios — graph size : DRAM :
subgraph count, degree skew, V/E ratio — are preserved, which is what the
paper's results depend on (DESIGN.md, substitution table).

Notable preserved traits:

* **TT** — heaviest skew; max out-degree targets ~19 dense-vertex blocks
  like the paper's 1,213,787-edge Twitter celebrity (Section III-D).
* **CW** — enormous |V| relative to |E| (mean degree ~1.7), 2x subgraph
  size (the paper uses 512 KB vs 256 KB and 8-byte IDs for ClueWeb).
* **R2B/R8B** — our own R-MAT generator with Graph500/PaRMAT skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..common.config import PAPER_SCALE
from ..common.errors import GraphError
from ..common.rng import RngRegistry
from .csr import CSRGraph
from .generators import powerlaw_graph, rmat

__all__ = ["DatasetSpec", "DATASETS", "dataset", "build_graph", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table IV row plus how to synthesise its scaled analog."""

    name: str
    full_name: str
    paper_vertices: int
    paper_edges: int
    paper_csr_bytes: int
    paper_text_bytes: int
    #: Paper-configured subgraph size multiplier (CW uses 512 KB = 2x).
    subgraph_multiplier: int
    #: Default number of walks in the paper's experiments (Figs. 6-9).
    paper_default_walks: int
    #: Builder: (scaled |V|, scaled |E|, rng) -> CSRGraph.
    builder: Callable[[int, int, np.random.Generator], CSRGraph]

    @property
    def scaled_vertices(self) -> int:
        return max(16, self.paper_vertices // PAPER_SCALE)

    @property
    def scaled_edges(self) -> int:
        return max(16, self.paper_edges // PAPER_SCALE)

    @property
    def default_walks(self) -> int:
        return max(64, self.paper_default_walks // PAPER_SCALE)

    def build(self, rng: np.random.Generator, size_factor: float = 1.0) -> CSRGraph:
        """Generate the scaled graph.

        ``size_factor`` shrinks the analog further (used by fast tests);
        1.0 is the standard benchmark scale.
        """
        if size_factor <= 0:
            raise GraphError(f"size_factor must be positive, got {size_factor}")
        nv = max(16, int(self.scaled_vertices * size_factor))
        ne = max(16, int(self.scaled_edges * size_factor))
        return self.builder(nv, ne, rng)


def _build_twitter(nv: int, ne: int, rng: np.random.Generator) -> CSRGraph:
    # Exponent 0.8: the top vertex draws ~3% of edges, so its adjacency
    # spans ~20 graph blocks — the paper's 19-block Twitter celebrity
    # (Section III-D) at our block scale — while staying the most skewed
    # of the social datasets.
    return powerlaw_graph(nv, ne, rng, exponent=0.8)


def _build_friendster(nv: int, ne: int, rng: np.random.Generator) -> CSRGraph:
    # Friendster is flatter than Twitter (gaming social network).
    return powerlaw_graph(nv, ne, rng, exponent=0.7)


def _build_clueweb(nv: int, ne: int, rng: np.random.Generator) -> CSRGraph:
    # Web crawl: low mean degree, moderate skew, many near-isolated pages.
    return powerlaw_graph(nv, ne, rng, exponent=0.75)


def _build_rmat(nv: int, ne: int, rng: np.random.Generator) -> CSRGraph:
    scale = max(4, int(np.ceil(np.log2(nv))))
    edge_factor = max(1, int(round(ne / (1 << scale))))
    return rmat(scale, edge_factor, rng)


_B = 10**9
_M = 10**6
_GBD = 10**9  # Table IV quotes decimal-ish sizes; we store the paper numbers


def _table_iv() -> dict[str, DatasetSpec]:
    return {
        "TT": DatasetSpec(
            name="TT",
            full_name="Twitter",
            paper_vertices=int(41.6 * _M),
            paper_edges=int(1.46 * _B),
            paper_csr_bytes=int(5.8 * _GBD),
            paper_text_bytes=int(23 * _GBD),
            subgraph_multiplier=1,
            paper_default_walks=4 * 10**8,
            builder=_build_twitter,
        ),
        "FS": DatasetSpec(
            name="FS",
            full_name="Friendster",
            paper_vertices=int(65.6 * _M),
            paper_edges=int(3.61 * _B),
            paper_csr_bytes=int(14 * _GBD),
            paper_text_bytes=int(59 * _GBD),
            subgraph_multiplier=1,
            paper_default_walks=4 * 10**8,
            builder=_build_friendster,
        ),
        "CW": DatasetSpec(
            name="CW",
            full_name="ClueWeb",
            paper_vertices=int(4.78 * _B),
            paper_edges=int(7.94 * _B),
            paper_csr_bytes=int(95 * _GBD),
            paper_text_bytes=int(138 * _GBD),
            subgraph_multiplier=2,
            paper_default_walks=10**9,
            builder=_build_clueweb,
        ),
        "R2B": DatasetSpec(
            name="R2B",
            full_name="RMAT2B",
            paper_vertices=int(62.5 * _M),
            paper_edges=2 * _B,
            paper_csr_bytes=8 * _GBD,
            paper_text_bytes=32 * _GBD,
            subgraph_multiplier=1,
            paper_default_walks=4 * 10**8,
            builder=_build_rmat,
        ),
        "R8B": DatasetSpec(
            name="R8B",
            full_name="RMAT8B",
            paper_vertices=250 * _M,
            paper_edges=8 * _B,
            paper_csr_bytes=32 * _GBD,
            paper_text_bytes=137 * _GBD,
            subgraph_multiplier=1,
            paper_default_walks=4 * 10**8,
            builder=_build_rmat,
        ),
    }


DATASETS: dict[str, DatasetSpec] = _table_iv()


def dataset_names() -> list[str]:
    """Dataset short names in the paper's presentation order."""
    return ["TT", "FS", "CW", "R2B", "R8B"]


def dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by short name (case-insensitive)."""
    spec = DATASETS.get(name.upper())
    if spec is None:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    return spec


def build_graph(
    name: str, rngs: RngRegistry | None = None, size_factor: float = 1.0
) -> CSRGraph:
    """Build a dataset's scaled graph deterministically.

    The graph depends only on the dataset name, the registry's root seed
    and ``size_factor``.
    """
    spec = dataset(name)
    rngs = rngs if rngs is not None else RngRegistry(0)
    rng = rngs.fresh(f"dataset:{spec.name}:{size_factor}")
    return spec.build(rng, size_factor=size_factor)
