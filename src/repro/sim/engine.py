"""Discrete-event simulation kernel.

A tiny, fast event engine: callbacks scheduled at absolute or relative
times, executed in (time, priority, sequence) order.  All simulator
components (flash channels, accelerators, schedulers) share one
:class:`Simulator` and advance its clock only through events, so causality
is guaranteed by construction.

The engine deliberately has no notion of processes or coroutines: the
FlashWalker models are state machines whose transitions are event
callbacks, which profiles far better in CPython than generator-based
processes (see the hpc-parallel guide: measure, keep the hot path flat).
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Callable

from ..common.errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`."""

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state})"


class Simulator:
    """Event queue + simulation clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.at(1.0, lambda: fired.append(sim.now))
    >>> _ = sim.after(0.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [0.5, 1.0]
    """

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._running = False
        #: Optional :class:`~repro.obs.profile.EventLoopProfiler`; None
        #: (the default) keeps the hot path to a single attribute check.
        self.profiler = None

    # -- scheduling ---------------------------------------------------------

    def at(self, time: float, fn: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``fn`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: t={time} < now={self.now}"
            )
        ev = Event(time, priority, next(self._seq), fn)
        heapq.heappush(self._queue, ev)
        return ev

    def after(self, delay: float, fn: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``fn`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn, priority)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if queue empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self.now:  # pragma: no cover - defensive
                raise SimulationError(
                    f"event time {ev.time} behind clock {self.now}"
                )
            self.now = ev.time
            self._events_executed += 1
            prof = self.profiler
            if prof is None:
                ev.fn()
            else:
                t0 = perf_counter()
                ev.fn()
                prof.record(ev.fn, perf_counter() - t0)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock at that time (remaining events stay
        queued); ``max_events`` bounds work as a runaway guard.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        if self.profiler is not None:
            self.profiler.loop_started()
        try:
            executed = 0
            while self._queue:
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    self.now = until
                    return
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                self.step()
                executed += 1
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            if self.profiler is not None:
                self.profiler.loop_stopped()

    def _peek(self) -> Event | None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    # -- introspection --------------------------------------------------------

    @property
    def pending_events(self) -> int:
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.9f}, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
