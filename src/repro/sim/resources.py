"""Shared hardware resources with FCFS queueing and utilization accounting.

Two building blocks used throughout the SSD and accelerator models:

* :class:`FcfsResource` — ``k`` identical servers with a FIFO queue.
  ``acquire_for(duration)`` returns the *completion time* of the request;
  utilization and queueing statistics are tracked as requests flow.
* :class:`BandwidthLink` — a serial link (channel bus, PCIe, DRAM bus):
  transfers occupy the link back-to-back, so a transfer issued at ``t``
  completes at ``max(t, busy_until) + bytes / rate``.

These are *analytic* resources: they do not schedule events themselves.
Callers combine the returned completion times with
:meth:`repro.sim.engine.Simulator.at` to drive the event loop.  This keeps
the hot path (thousands of page reads) allocation-free.
"""

from __future__ import annotations

import heapq

from ..common.errors import SimulationError

__all__ = ["FcfsResource", "BandwidthLink"]


class FcfsResource:
    """``k`` identical servers, FIFO order, non-preemptive.

    Requests are characterised only by (issue time, service duration); the
    resource returns when the request finishes.  Issue times must be
    non-decreasing per caller but may interleave across callers; the
    resource serializes on a min-heap of server free times.
    """

    __slots__ = ("name", "servers", "_free_at", "busy_time", "requests", "queued_time")

    def __init__(self, name: str, servers: int = 1):
        if servers < 1:
            raise SimulationError(f"{name}: need >= 1 server, got {servers}")
        self.name = name
        self.servers = servers
        self._free_at = [0.0] * servers
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.requests = 0
        self.queued_time = 0.0

    def acquire_for(self, now: float, duration: float) -> float:
        """Occupy one server for ``duration`` starting no earlier than ``now``.

        Returns the completion time.
        """
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        earliest = heapq.heappop(self._free_at)
        start = earliest if earliest > now else now
        end = start + duration
        heapq.heappush(self._free_at, end)
        self.busy_time += duration
        self.queued_time += start - now
        self.requests += 1
        return end

    def next_free(self, now: float) -> float:
        """Earliest time a server is available (>= now)."""
        earliest = self._free_at[0]
        return earliest if earliest > now else now

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of servers busy over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.servers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FcfsResource({self.name!r}, servers={self.servers}, "
            f"requests={self.requests})"
        )


class BandwidthLink:
    """A serial link with fixed byte rate and optional per-transfer latency.

    Models channel buses (ONFI), the PCIe link, and the DRAM bus.  All
    byte counters are tracked for the Fig. 6/8 traffic metrics.
    """

    __slots__ = (
        "name",
        "bytes_per_sec",
        "latency",
        "_busy_until",
        "bytes_moved",
        "busy_time",
        "transfers",
    )

    def __init__(self, name: str, bytes_per_sec: float, latency: float = 0.0):
        if bytes_per_sec <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive")
        if latency < 0:
            raise SimulationError(f"{name}: negative latency")
        self.name = name
        self.bytes_per_sec = float(bytes_per_sec)
        self.latency = float(latency)
        self._busy_until = 0.0
        self.bytes_moved = 0
        self.busy_time = 0.0
        self.transfers = 0

    def transfer(self, now: float, nbytes: int | float) -> float:
        """Move ``nbytes`` starting no earlier than ``now``; returns end time."""
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size {nbytes}")
        start = self._busy_until if self._busy_until > now else now
        duration = self.latency + float(nbytes) / self.bytes_per_sec
        end = start + duration
        self._busy_until = end
        self.bytes_moved += int(nbytes)
        self.busy_time += duration
        self.transfers += 1
        return end

    def stall(self, now: float, duration: float) -> float:
        """Hold the link busy for ``duration`` extra seconds from ``now``.

        Models degradation that stretches occupancy without moving bytes
        (a gray-failure slow window, a re-equalization pause): the stall
        serializes behind any in-flight transfer and pushes the link's
        next-free time out, charging ``busy_time`` so utilization
        timelines see the degradation.
        """
        if duration < 0:
            raise SimulationError(f"{self.name}: negative stall {duration}")
        start = self._busy_until if self._busy_until > now else now
        end = start + duration
        self._busy_until = end
        self.busy_time += duration
        return end

    def next_free(self, now: float) -> float:
        return self._busy_until if self._busy_until > now else now

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    def achieved_bandwidth(self, elapsed: float) -> float:
        """Mean delivered bytes/sec over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.bytes_moved / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BandwidthLink({self.name!r}, {self.bytes_per_sec:.3g} B/s, "
            f"moved={self.bytes_moved})"
        )
