"""Simulation statistics: counters, time-bucketed series, histograms.

The Fig. 8 experiment needs byte counters bucketed by simulation time
(bandwidth timelines) and a walk-completion progression; Fig. 6 needs
whole-run byte totals.  :class:`TimeSeries` accumulates both from the same
``add(t, value)`` calls.
"""

from __future__ import annotations

import bisect
import math

import numpy as np

from ..common.errors import SimulationError

__all__ = ["Counter", "TimeSeries", "Histogram", "StatsRegistry"]


class Counter:
    """A named monotonic accumulator."""

    __slots__ = ("name", "total", "events")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.events = 0

    def add(self, value: float = 1.0) -> None:
        self.total += value
        self.events += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, total={self.total}, events={self.events})"


class TimeSeries:
    """Values attributed to simulation times, aggregated into buckets.

    ``bucket`` is the bucket width in seconds.  ``rates(elapsed)`` returns
    (bucket_starts, per-second rates) suitable for the Fig. 8 timelines.
    """

    __slots__ = ("name", "bucket", "_sums", "total", "events", "last_time")

    def __init__(self, name: str, bucket: float):
        if bucket <= 0:
            raise SimulationError(f"{name}: bucket width must be positive")
        self.name = name
        self.bucket = float(bucket)
        self._sums: dict[int, float] = {}
        self.total = 0.0
        self.events = 0
        self.last_time = 0.0

    def add(self, t: float, value: float) -> None:
        if t < 0:
            raise SimulationError(f"{self.name}: negative time {t}")
        idx = int(t / self.bucket)
        self._sums[idx] = self._sums.get(idx, 0.0) + value
        self.total += value
        self.events += 1
        if t > self.last_time:
            self.last_time = t

    def add_spread(self, t0: float, t1: float, value: float) -> None:
        """Attribute ``value`` uniformly over the interval [t0, t1]."""
        if t1 < t0:
            raise SimulationError(f"{self.name}: interval ends before start")
        if t1 == t0:
            self.add(t0, value)
            return
        i0 = int(t0 / self.bucket)
        i1 = int(t1 / self.bucket)
        if i0 == i1:
            self.add(t0, value)
            return
        span = t1 - t0
        for idx in range(i0, i1 + 1):
            lo = max(t0, idx * self.bucket)
            hi = min(t1, (idx + 1) * self.bucket)
            if hi > lo:
                self._sums[idx] = self._sums.get(idx, 0.0) + value * (hi - lo) / span
        self.total += value
        self.events += 1
        if t1 > self.last_time:
            self.last_time = t1

    def buckets(self) -> tuple[np.ndarray, np.ndarray]:
        """(bucket start times, per-bucket sums), dense from 0 to last bucket."""
        if not self._sums:
            return np.zeros(0), np.zeros(0)
        n = max(self._sums) + 1
        sums = np.zeros(n)
        for idx, v in self._sums.items():
            sums[idx] = v
        starts = np.arange(n) * self.bucket
        return starts, sums

    def rates(self) -> tuple[np.ndarray, np.ndarray]:
        """(bucket start times, per-second rates)."""
        starts, sums = self.buckets()
        return starts, sums / self.bucket

    def cumulative(self) -> tuple[np.ndarray, np.ndarray]:
        """(bucket end times, running totals) — for progression curves."""
        starts, sums = self.buckets()
        return starts + self.bucket, np.cumsum(sums)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries({self.name!r}, total={self.total}, buckets={len(self._sums)})"


class Histogram:
    """Log-spaced histogram for latency/length distributions."""

    __slots__ = ("name", "edges", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str, lo: float = 1e-9, hi: float = 1e3, bins: int = 60):
        if not (0 < lo < hi):
            raise SimulationError(f"{name}: need 0 < lo < hi")
        self.name = name
        self.edges = np.geomspace(lo, hi, bins + 1)
        self.counts = np.zeros(bins + 2, dtype=np.int64)  # +under/overflow
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float, count: int = 1) -> None:
        idx = bisect.bisect_right(self.edges, value)
        self.counts[idx] += count
        self.total += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="right")
        np.add.at(self.counts, idx, 1)
        self.total += values.size
        self.sum += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile (bucket upper edge), q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q out of range: {q}")
        if self.total == 0:
            return 0.0
        target = self.total * q / 100.0
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                if i == 0:
                    return float(self.edges[0])
                if i >= len(self.edges):
                    return float(self.max)
                return float(self.edges[i])
        return float(self.max)  # pragma: no cover - unreachable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.total}, mean={self.mean:.3g})"


class StatsRegistry:
    """Namespace of named counters/series/histograms for one simulation run."""

    def __init__(self, bucket: float = 0.01):
        self.bucket = bucket
        self.counters: dict[str, Counter] = {}
        self.series: dict[str, TimeSeries] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def timeseries(self, name: str, bucket: float | None = None) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = TimeSeries(name, bucket if bucket is not None else self.bucket)
            self.series[name] = s
        return s

    def histogram(self, name: str, **kwargs) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = Histogram(name, **kwargs)
            self.histograms[name] = h
        return h

    def snapshot(self) -> dict[str, float]:
        """Flat {name: total} view of all counters and series.

        Counters additionally contribute ``"<name>.events"`` entries:
        the *number of add() calls* behind each total.  Totals alone
        cannot distinguish one 4 MB flush from a thousand 4 KB ones, and
        that event count used to be dropped at finalize.
        """
        out = {name: c.total for name, c in self.counters.items()}
        out.update(
            {f"{name}.events": float(c.events) for name, c in self.counters.items()}
        )
        out.update({name: s.total for name, s in self.series.items()})
        return out
