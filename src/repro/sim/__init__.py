"""Discrete-event simulation kernel: engine, resources, statistics."""

from .engine import Event, Simulator
from .resources import BandwidthLink, FcfsResource
from .stats import Counter, Histogram, StatsRegistry, TimeSeries

__all__ = [
    "Event",
    "Simulator",
    "BandwidthLink",
    "FcfsResource",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "TimeSeries",
]
