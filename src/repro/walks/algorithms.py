"""Random-walk applications from the paper's introduction.

The paper motivates FlashWalker with DeepWalk/Node2Vec corpus
generation, Personalized PageRank, SimRank, and graph sampling
(Section I).  These are the *workload* layer: each builds on the walk
engines/reference walker and returns the analytic product the downstream
task consumes (walk corpus, rank vector, similarity, sampled subgraph).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import WalkError
from ..graph.csr import CSRGraph
from .reference import reference_walks
from .sampling import make_sampler
from .spec import WalkSpec, start_vertices

__all__ = [
    "deepwalk_corpus",
    "personalized_pagerank",
    "personalized_pagerank_in_storage",
    "node2vec_corpus",
    "simrank_sampled",
    "random_walk_sample",
]


def deepwalk_corpus(
    graph: CSRGraph,
    rng: np.random.Generator,
    walks_per_vertex: int = 10,
    walk_length: int = 6,
) -> np.ndarray:
    """DeepWalk's corpus: ``walks_per_vertex`` trajectories per vertex.

    Returns an (n_walks, walk_length + 1) int array padded with -1 where
    walks hit dead ends early — the token sequences fed to skip-gram.
    """
    if walks_per_vertex < 1:
        raise WalkError(f"walks_per_vertex must be >= 1, got {walks_per_vertex}")
    starts = np.tile(np.arange(graph.num_vertices, dtype=np.int64), walks_per_vertex)
    spec = WalkSpec(length=walk_length).validate(graph)
    res = reference_walks(graph, starts, spec, rng, record_trajectories=True)
    return res["trajectories"]


def personalized_pagerank(
    graph: CSRGraph,
    source: int,
    rng: np.random.Generator,
    num_walks: int = 10_000,
    stop_probability: float = 0.15,
    max_length: int = 64,
) -> np.ndarray:
    """Monte-Carlo PPR: stationary visit frequency of restarting walks.

    Each walk starts at ``source`` and terminates with probability
    ``stop_probability`` per hop (termination condition 2).  The estimate
    is the normalized count of walk *endpoints*, the classic
    Fogaras-style estimator.
    """
    if not 0 <= source < graph.num_vertices:
        raise WalkError(f"source {source} out of range")
    if num_walks < 1:
        raise WalkError(f"num_walks must be >= 1, got {num_walks}")
    spec = WalkSpec(
        length=max_length, stop_probability=stop_probability
    ).validate(graph)
    starts = np.full(num_walks, source, dtype=np.int64)
    res = reference_walks(graph, starts, spec, rng)
    counts = np.bincount(res["final"], minlength=graph.num_vertices)
    return counts / counts.sum()


def personalized_pagerank_in_storage(
    engine,
    source: int,
    num_walks: int = 10_000,
    stop_probability: float = 0.15,
    max_length: int = 64,
):
    """PPR executed *on the FlashWalker engine* (Section I's use case).

    Runs the restart-walk workload through the in-storage simulator with
    final-position recording and derives the endpoint estimator from the
    completed walk records.  Returns ``(scores, run_result)`` so callers
    get both the ranking and the execution profile.

    ``engine`` is a :class:`repro.core.FlashWalker` (typed loosely to
    avoid a layering cycle).
    """
    graph = engine.graph
    if not 0 <= source < graph.num_vertices:
        raise WalkError(f"source {source} out of range")
    if num_walks < 1:
        raise WalkError(f"num_walks must be >= 1, got {num_walks}")
    starts = np.full(num_walks, source, dtype=np.int64)
    res = engine.run(
        starts=starts,
        spec=WalkSpec(
            length=max_length, stop_probability=stop_probability
        ).validate(graph),
        record_finals=True,
    )
    counts = np.bincount(res.finals.cur, minlength=graph.num_vertices)
    return counts / counts.sum(), res


def node2vec_corpus(
    graph: CSRGraph,
    rng: np.random.Generator,
    walks_per_vertex: int = 4,
    walk_length: int = 6,
    p: float = 1.0,
    q: float = 1.0,
) -> np.ndarray:
    """Node2Vec trajectories with return parameter ``p`` / in-out ``q``.

    Second-order (dynamic) walks: the step distribution depends on the
    previous vertex, the paper's example of a *dynamic* random walk
    algorithm.  Implemented per-walk (the bias must inspect each
    candidate's relation to prev), so intended for moderate sizes.
    """
    if p <= 0 or q <= 0:
        raise WalkError(f"p and q must be positive, got p={p} q={q}")
    if walks_per_vertex < 1 or walk_length < 1:
        raise WalkError("walks_per_vertex and walk_length must be >= 1")
    n = graph.num_vertices
    n_walks = n * walks_per_vertex
    traj = np.full((n_walks, walk_length + 1), -1, dtype=np.int64)
    traj[:, 0] = np.tile(np.arange(n, dtype=np.int64), walks_per_vertex)
    # Pre-sorted adjacency views for fast membership checks.
    sorted_adj = {v: np.sort(graph.neighbors(v)) for v in range(n)}
    for w in range(n_walks):
        prev = -1
        cur = int(traj[w, 0])
        for step in range(1, walk_length + 1):
            nbrs = graph.neighbors(cur)
            if nbrs.size == 0:
                break
            if prev < 0:
                nxt = int(nbrs[rng.integers(nbrs.size)])
            else:
                weights = np.ones(nbrs.size)
                weights[nbrs == prev] = 1.0 / p
                prev_adj = sorted_adj[prev]
                pos = np.searchsorted(prev_adj, nbrs)
                pos = np.minimum(pos, prev_adj.size - 1)
                is_common = prev_adj.size > 0
                common = (
                    prev_adj[pos] == nbrs if is_common else np.zeros(nbrs.size, bool)
                )
                far = ~common & (nbrs != prev)
                weights[far] = 1.0 / q
                weights /= weights.sum()
                nxt = int(nbrs[rng.choice(nbrs.size, p=weights)])
            traj[w, step] = nxt
            prev, cur = cur, nxt
    return traj


def simrank_sampled(
    graph: CSRGraph,
    u: int,
    v: int,
    rng: np.random.Generator,
    num_pairs: int = 2_000,
    decay: float = 0.8,
    max_length: int = 10,
) -> float:
    """Sampled SimRank s(u, v): expected ``decay**t`` of first meeting.

    Runs paired walks from ``u`` and ``v`` on the *reversed* graph and
    scores the first time step at which they coincide (Jeh & Widom's
    random-surfer interpretation).
    """
    if not (0 <= u < graph.num_vertices and 0 <= v < graph.num_vertices):
        raise WalkError("u or v out of range")
    if not 0 < decay < 1:
        raise WalkError(f"decay must be in (0, 1), got {decay}")
    if u == v:
        return 1.0
    src, dst = graph.to_edge_list()
    reverse = CSRGraph.from_edge_list(dst, src, num_vertices=graph.num_vertices)
    sampler = make_sampler(reverse)
    a = np.full(num_pairs, u, dtype=np.int64)
    b = np.full(num_pairs, v, dtype=np.int64)
    score = np.zeros(num_pairs)
    alive = np.ones(num_pairs, dtype=bool)
    for t in range(1, max_length + 1):
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        na = sampler(a[idx], rng)
        nb = sampler(b[idx], rng)
        dead = (na < 0) | (nb < 0)
        alive[idx[dead]] = False
        ok = idx[~dead]
        a[ok] = na[~dead]
        b[ok] = nb[~dead]
        met = a[ok] == b[ok]
        score[ok[met]] = decay**t
        alive[ok[met]] = False
    return float(score.mean())


def random_walk_sample(
    graph: CSRGraph,
    rng: np.random.Generator,
    target_vertices: int,
    num_walks: int = 256,
    walk_length: int = 32,
) -> np.ndarray:
    """Representative vertex sample by random walks (Section I's use case).

    Launches walks from uniform starts and returns the first
    ``target_vertices`` distinct vertices touched, ordered by first
    visit (a standard RW-based graph sampling scheme).
    """
    if target_vertices < 1:
        raise WalkError(f"target_vertices must be >= 1, got {target_vertices}")
    spec = WalkSpec(length=walk_length).validate(graph)
    starts = start_vertices(graph, num_walks, rng)
    res = reference_walks(graph, starts, spec, rng, record_trajectories=True)
    seen: list[int] = []
    seen_set: set[int] = set()
    for step in range(walk_length + 1):
        for vtx in res["trajectories"][:, step]:
            if vtx >= 0 and int(vtx) not in seen_set:
                seen_set.add(int(vtx))
                seen.append(int(vtx))
                if len(seen) >= target_vertices:
                    return np.array(seen, dtype=np.int64)
    return np.array(seen, dtype=np.int64)
