"""Neighbor sampling: uniform, Inverse Transform Sampling, alias method.

Unbiased walks pick a uniform out-edge (paper Section III-B steps 3-6);
biased walks use ITS over the cumulative weight list CL.  For batch
simulation we also provide a per-graph :class:`AliasSampler` whose draws
follow *exactly* the same weighted distribution as ITS but cost O(1)
per sample and vectorize; the engines use it for speed while charging
ITS's binary-search cycle cost in their timing models (DESIGN.md 4).

All samplers return ``-1`` for walks sitting on zero-out-degree vertices
(dead ends), which the engines treat as forced termination.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import GraphError, WalkError
from ..graph.csr import CSRGraph

__all__ = [
    "uniform_next",
    "its_next_single",
    "its_search_steps",
    "AliasSampler",
    "make_sampler",
]


def uniform_next(
    graph: CSRGraph, cur: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly sample one out-neighbor per walk (vectorized).

    Mirrors the updater datapath: rnd0 -> rnd1 in [0, outDegree) -> edge
    fetch at offset rnd1.  Dead ends yield -1.
    """
    cur = np.asarray(cur, dtype=np.int64)
    if cur.size == 0:
        return np.zeros(0, dtype=np.int64)
    if cur.min() < 0 or cur.max() >= graph.num_vertices:
        raise WalkError("walk position out of vertex range")
    starts = graph.offsets[cur]
    degs = graph.offsets[cur + 1] - starts
    out = np.full(cur.shape, -1, dtype=np.int64)
    alive = degs > 0
    if alive.any():
        rnd1 = (rng.random(int(alive.sum())) * degs[alive]).astype(np.int64)
        # guard the pathological rng.random() == 1.0 edge
        np.minimum(rnd1, degs[alive] - 1, out=rnd1)
        out[alive] = graph.edges[starts[alive] + rnd1]
    return out


def its_next_single(graph: CSRGraph, v: int, rng: np.random.Generator) -> int:
    """One biased next-hop via Inverse Transform Sampling (Section III-B).

    Generates ``rnd`` in [0, sumWeight) and binary-searches the vertex's
    cumulative list CL for the first entry exceeding it.  Reference
    implementation used by tests and by the timing model.
    """
    if graph.weights is None:
        raise GraphError("ITS requires a weighted graph")
    if not 0 <= v < graph.num_vertices:
        raise WalkError(f"vertex {v} out of range")
    lo, hi = int(graph.offsets[v]), int(graph.offsets[v + 1])
    if lo == hi:
        return -1
    cl = graph.cumulative_weights()[lo:hi]
    rnd = rng.random() * cl[-1]
    idx = int(np.searchsorted(cl, rnd, side="right"))
    if idx >= cl.size:  # rnd == total weight edge case
        idx = cl.size - 1
    return int(graph.edges[lo + idx])


def its_search_steps(out_degree: np.ndarray | int) -> np.ndarray | int:
    """Binary-search step count ITS performs for given out-degree(s).

    ceil(log2(d)) comparisons, minimum 1 — the extra updater cycles the
    paper attributes to biased walks.
    """
    d = np.maximum(np.atleast_1d(np.asarray(out_degree, dtype=np.int64)), 1)
    steps = np.ceil(np.log2(np.maximum(d, 2))).astype(np.int64)
    steps = np.maximum(steps, 1)
    # 0-d ndarrays are scalars too (np.isscalar(np.array(5)) is False, so
    # dispatching on it would wrongly return a length-1 array for them).
    if np.ndim(out_degree) == 0:
        return int(steps[0])
    return steps


class AliasSampler:
    """Walker's alias method over every vertex's out-edge weights.

    Construction is O(|E|); sampling is two RNG draws + two gathers per
    walk, fully vectorized.  Distribution is identical to ITS.
    """

    def __init__(self, graph: CSRGraph):
        if graph.weights is None:
            raise GraphError("AliasSampler requires a weighted graph")
        self.graph = graph
        m = graph.num_edges
        self.prob = np.ones(m, dtype=np.float64)
        self.alias = np.arange(m, dtype=np.int64)
        offsets = graph.offsets
        weights = graph.weights
        for v in range(graph.num_vertices):
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            deg = hi - lo
            if deg <= 1:
                continue
            w = weights[lo:hi]
            scaled = w * (deg / w.sum())
            small = [i for i in range(deg) if scaled[i] < 1.0]
            large = [i for i in range(deg) if scaled[i] >= 1.0]
            scaled = scaled.copy()
            while small and large:
                s = small.pop()
                l = large.pop()
                self.prob[lo + s] = scaled[s]
                self.alias[lo + s] = lo + l
                scaled[l] -= 1.0 - scaled[s]
                if scaled[l] < 1.0:
                    small.append(l)
                else:
                    large.append(l)
            for i in large + small:
                self.prob[lo + i] = 1.0
                self.alias[lo + i] = lo + i

    def next_vertices(self, cur: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Weighted next-hop per walk; -1 at dead ends."""
        cur = np.asarray(cur, dtype=np.int64)
        if cur.size == 0:
            return np.zeros(0, dtype=np.int64)
        g = self.graph
        starts = g.offsets[cur]
        degs = g.offsets[cur + 1] - starts
        out = np.full(cur.shape, -1, dtype=np.int64)
        alive = degs > 0
        n = int(alive.sum())
        if n:
            slot = (rng.random(n) * degs[alive]).astype(np.int64)
            np.minimum(slot, degs[alive] - 1, out=slot)
            j = starts[alive] + slot
            take_alias = rng.random(n) >= self.prob[j]
            j = np.where(take_alias, self.alias[j], j)
            out[alive] = g.edges[j]
        return out


def make_sampler(graph: CSRGraph):
    """Sampler function ``(cur, rng) -> next`` fitting the graph.

    Unweighted graphs sample uniformly; weighted graphs get an
    :class:`AliasSampler` (ITS-equivalent distribution).
    """
    if graph.weights is None:
        return lambda cur, rng: uniform_next(graph, cur, rng)
    alias = AliasSampler(graph)
    return alias.next_vertices
