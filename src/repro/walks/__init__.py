"""Walk layer: state, sampling, specs, algorithms, reference walker."""

from .algorithms import (
    deepwalk_corpus,
    node2vec_corpus,
    personalized_pagerank,
    personalized_pagerank_in_storage,
    random_walk_sample,
    simrank_sampled,
)
from .reference import reference_walks, visit_counts
from .sampling import (
    AliasSampler,
    its_next_single,
    its_search_steps,
    make_sampler,
    uniform_next,
)
from .spec import WalkSpec, start_vertices
from .state import WalkSet

__all__ = [
    "deepwalk_corpus",
    "node2vec_corpus",
    "personalized_pagerank",
    "personalized_pagerank_in_storage",
    "random_walk_sample",
    "simrank_sampled",
    "reference_walks",
    "visit_counts",
    "AliasSampler",
    "its_next_single",
    "its_search_steps",
    "make_sampler",
    "uniform_next",
    "WalkSpec",
    "start_vertices",
    "WalkSet",
]
