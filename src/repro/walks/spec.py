"""Walk specifications: how walks start, step, and terminate.

Section II-A taxonomy: *unbiased* vs *biased* (edge weights via ITS),
*static* vs *dynamic* (sampling distribution depends on walk state), and
two termination conditions (fixed hop count, or stop probability per
hop).  A :class:`WalkSpec` bundles these for both engines and the
reference walker; algorithm presets live in
:mod:`repro.walks.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import WalkError
from ..graph.csr import CSRGraph

__all__ = ["WalkSpec", "start_vertices"]


@dataclass(frozen=True)
class WalkSpec:
    """Parameters of one random-walk workload.

    ``length``: hop budget per walk (the paper fixes 6 in all
    experiments).  ``stop_probability``: if > 0, each completed hop
    additionally terminates the walk with this probability (termination
    condition 2 of Section II-A; used by PPR).  ``biased``: sample next
    hops by edge weight via ITS instead of uniformly (requires a
    weighted graph).
    """

    length: int = 6
    stop_probability: float = 0.0
    biased: bool = False

    def validate(self, graph: CSRGraph | None = None) -> "WalkSpec":
        if self.length < 1:
            raise WalkError(f"walk length must be >= 1, got {self.length}")
        if not 0.0 <= self.stop_probability < 1.0:
            raise WalkError(
                f"stop_probability must be in [0, 1), got {self.stop_probability}"
            )
        if self.biased and graph is not None and graph.weights is None:
            raise WalkError("biased walks require a weighted graph")
        return self

    def apply_stop_probability(
        self, hop: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Decrement-to-zero mask for probabilistic termination.

        Given remaining-hop counts after a step, returns the mask of
        walks that terminate *now* due to ``stop_probability``.
        """
        if self.stop_probability <= 0.0 or hop.size == 0:
            return np.zeros(hop.shape, dtype=bool)
        return rng.random(hop.shape[0]) < self.stop_probability


def start_vertices(
    graph: CSRGraph,
    num_walks: int,
    rng: np.random.Generator,
    sources: np.ndarray | None = None,
) -> np.ndarray:
    """Choose start vertices for ``num_walks`` walks.

    With ``sources`` given, walks cycle through them (DeepWalk-style
    "walks per vertex"); otherwise starts are uniform over all vertices
    (the paper's "massive vertices" initialization).
    """
    if num_walks < 0:
        raise WalkError(f"negative walk count {num_walks}")
    if sources is not None:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size == 0:
            raise WalkError("empty sources array")
        if sources.min() < 0 or sources.max() >= graph.num_vertices:
            raise WalkError("source vertex out of range")
        reps = -(-num_walks // sources.size)
        return np.tile(sources, reps)[:num_walks]
    return rng.integers(0, graph.num_vertices, size=num_walks, dtype=np.int64)
