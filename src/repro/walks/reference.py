"""Reference in-memory random walker.

The ground truth the engines are validated against: a straightforward
vectorized walker that keeps the whole graph in memory and records full
trajectories.  No I/O model, no buffers — just the walk semantics of
Section II-A.  Tests compare engine visit distributions against this.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import WalkError
from ..graph.csr import CSRGraph
from .sampling import make_sampler
from .spec import WalkSpec

__all__ = ["reference_walks", "visit_counts"]


def reference_walks(
    graph: CSRGraph,
    starts: np.ndarray,
    spec: WalkSpec,
    rng: np.random.Generator,
    record_trajectories: bool = False,
) -> dict:
    """Run ``spec`` walks from ``starts`` to completion in memory.

    Returns a dict with:

    * ``final`` — final vertex per walk (int64; the vertex where the walk
      ended, possibly a dead end).
    * ``hops`` — hops actually taken per walk.
    * ``visits`` — visit count per vertex (start vertices included).
    * ``trajectories`` — (num_walks, length+1) array padded with -1,
      only when ``record_trajectories``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= graph.num_vertices):
        raise WalkError("start vertex out of range")
    spec.validate(graph)
    sampler = make_sampler(graph if not spec.biased else graph)
    if spec.biased and graph.weights is None:
        raise WalkError("biased spec on unweighted graph")

    n = starts.size
    cur = starts.copy()
    hops_taken = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    visits = np.bincount(starts, minlength=graph.num_vertices).astype(np.int64)
    traj = None
    if record_trajectories:
        traj = np.full((n, spec.length + 1), -1, dtype=np.int64)
        traj[:, 0] = starts

    for step in range(spec.length):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        nxt = sampler(cur[idx], rng)
        dead = nxt < 0
        # dead ends: walk stops where it is
        active[idx[dead]] = False
        moved = idx[~dead]
        cur[moved] = nxt[~dead]
        hops_taken[moved] += 1
        visits += np.bincount(cur[moved], minlength=graph.num_vertices)
        if traj is not None:
            traj[moved, step + 1] = cur[moved]
        if spec.stop_probability > 0 and moved.size:
            stop = spec.apply_stop_probability(
                np.zeros(moved.size, dtype=np.int64), rng
            )
            active[moved[stop]] = False

    out = {"final": cur, "hops": hops_taken, "visits": visits}
    if traj is not None:
        out["trajectories"] = traj
    return out


def visit_counts(
    graph: CSRGraph,
    num_walks: int,
    spec: WalkSpec,
    rng: np.random.Generator,
    sources: np.ndarray | None = None,
) -> np.ndarray:
    """Convenience: visit histogram over ``num_walks`` uniform-start walks."""
    from .spec import start_vertices

    starts = start_vertices(graph, num_walks, rng, sources)
    return reference_walks(graph, starts, spec, rng)["visits"]
