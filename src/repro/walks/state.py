"""Walk state in structure-of-arrays layout.

A walk record is exactly the paper's (Section III-B): ``src`` (origin
vertex), ``cur`` (current vertex), ``hop`` (remaining hops).  Batches of
walks are a :class:`WalkSet` of three parallel NumPy arrays, so the
engines advance thousands of walks per vectorized operation instead of
object-per-walk (hpc-parallel guide: SoA + vectorize the hot loop).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import WalkError

__all__ = ["WalkSet"]


class WalkSet:
    """A batch of walk records (SoA: ``src``, ``cur``, ``hop``)."""

    __slots__ = ("src", "cur", "hop")

    def __init__(self, src: np.ndarray, cur: np.ndarray, hop: np.ndarray):
        src = np.asarray(src, dtype=np.int64)
        cur = np.asarray(cur, dtype=np.int64)
        hop = np.asarray(hop, dtype=np.int64)
        if not (src.shape == cur.shape == hop.shape) or src.ndim != 1:
            raise WalkError(
                f"walk arrays must be 1-D and aligned, got shapes "
                f"{src.shape}/{cur.shape}/{hop.shape}"
            )
        if hop.size and hop.min() < 0:
            raise WalkError("negative remaining hop count")
        self.src = src
        self.cur = cur
        self.hop = hop

    # -- constructors -----------------------------------------------------------

    @classmethod
    def empty(cls) -> "WalkSet":
        z = np.zeros(0, dtype=np.int64)
        return cls(z, z.copy(), z.copy())

    @classmethod
    def start(cls, starts: np.ndarray, length: int) -> "WalkSet":
        """Fresh walks at ``starts`` with ``length`` hops to go."""
        starts = np.asarray(starts, dtype=np.int64)
        if length < 0:
            raise WalkError(f"negative walk length {length}")
        return cls(
            starts.copy(),
            starts.copy(),
            np.full(starts.shape, length, dtype=np.int64),
        )

    @classmethod
    def concat(cls, sets: list["WalkSet"]) -> "WalkSet":
        """Concatenate walk sets (empty-safe)."""
        sets = [s for s in sets if len(s)]
        if not sets:
            return cls.empty()
        if len(sets) == 1:
            return sets[0]
        return cls(
            np.concatenate([s.src for s in sets]),
            np.concatenate([s.cur for s in sets]),
            np.concatenate([s.hop for s in sets]),
        )

    # -- basics ---------------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.src.size)

    def select(self, mask_or_idx: np.ndarray) -> "WalkSet":
        """Subset by boolean mask or index array (copies)."""
        return WalkSet(
            self.src[mask_or_idx], self.cur[mask_or_idx], self.hop[mask_or_idx]
        )

    def split(self, mask: np.ndarray) -> tuple["WalkSet", "WalkSet"]:
        """(walks where mask, walks where ~mask)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.src.shape:
            raise WalkError(
                f"mask shape {mask.shape} != walk count {self.src.shape}"
            )
        return self.select(mask), self.select(~mask)

    def copy(self) -> "WalkSet":
        return WalkSet(self.src.copy(), self.cur.copy(), self.hop.copy())

    def nbytes(self, walk_bytes: int) -> int:
        """Buffer footprint at ``walk_bytes`` per record."""
        if walk_bytes <= 0:
            raise WalkError(f"walk_bytes must be positive, got {walk_bytes}")
        return len(self) * walk_bytes

    @property
    def finished(self) -> np.ndarray:
        """Mask of walks with no hops remaining."""
        return self.hop == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalkSet(n={len(self)})"
