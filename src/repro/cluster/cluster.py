"""Cluster coordinator: the front-end router over N FlashWalker shards.

:class:`ClusterService` serves walk queries against a fleet of
simulated devices.  Execution is barrier-synchronized: each *epoch*
the router admits arrivals, leases walk segments (``segment_hops``
hops each) to the shards that own their current vertices, steps every
loaded shard's local simulator to drain, then — at the barrier —
collects completed segments, migrates walks whose vertices now live
elsewhere over the fault-injected :class:`~repro.cluster.link.NetworkLink`,
credits finished walks to their queries, and sweeps deadlines.  The
cluster clock is the max of the stepped shards' local clocks, so all
router-level times (latencies, deadlines, failover timestamps) are
epoch-granular while each shard's internal timing stays event-exact.

Determinism and fault-tolerance by construction:

* every per-shard seed is sha256-derived from the root seed;
* all cross-shard processing happens in the coordinator, in sorted
  ``(shard, walk)`` order, so serial and process-pool execution are
  byte-identical;
* shard kills (seeded power loss) are recovered *inside* the epoch by
  replica promotion — restore the epoch-start checkpoint (what the
  durable checkpoint + walk journal reconstruct) and replay — so a
  killed run's report matches the uninterrupted baseline everywhere
  outside the ``cluster.failovers`` timeline;
* walks are owned by exactly one table entry from admission to
  completion; the online :class:`~repro.cluster.audit.ClusterAuditor`
  proves none is lost or duplicated at every barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ConfigError, SimulationError
from ..common.rng import derive_seed
from ..obs.alerts import default_cluster_rules
from ..obs.metrics import MetricsRegistry
from ..service.queue import AdmissionQueue
from ..service.request import QueryRequest, QueryResult
from ..walks.spec import start_vertices
from .audit import ClusterAuditor
from .config import ClusterConfig
from .health import HealthBoard
from .link import NetworkLink
from .placement import VertexPlacement
from .pool import ShardHosts
from .resize import ResizeController
from .shard import ShardStepCommand

__all__ = ["ClusterOutcome", "ClusterService"]

CLUSTER_SCHEMA = "repro.obs.cluster-report"
CLUSTER_SCHEMA_VERSION = 1

#: Failover-RTO histogram bounds (simulated seconds of replica
#: catch-up: checkpoint restore + journal replay + epoch re-run).
_RTO_BUCKETS = (1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3)


class _Walk:
    """One logical walk, owned by the router from admission to done."""

    __slots__ = (
        "wid", "query_id", "vertex", "remaining", "state", "shard",
        "eligible_at", "leased_hops", "migrations", "handoffs",
        "hedge_shard",
    )

    def __init__(self, wid, query_id, vertex, remaining, shard, eligible_at):
        self.wid = wid
        self.query_id = query_id
        self.vertex = vertex
        self.remaining = remaining
        self.state = "queued"
        self.shard = shard
        self.eligible_at = eligible_at
        self.leased_hops = 0
        self.migrations = 0
        self.handoffs = 0
        #: Second executing shard while a hedged lease is in flight
        #: (None outside the lease — the duplicate-suppression audit
        #: checks exactly that at every barrier).
        self.hedge_shard = None


@dataclass
class _QueryState:
    req: QueryRequest
    t_arrival: float
    deadline_abs: float
    walks_done: int = 0
    admitted: bool = False
    injected: bool = False
    responded: bool = False
    #: Remaining per-query retry budget (link retransmits + hedges
    #: charged against it); None = unlimited (budget knob off).
    retry_budget: int | None = None
    budget_exhausted: bool = False


@dataclass
class ClusterOutcome:
    """What one cluster run produced."""

    report: dict
    responses: list[QueryResult] = field(default_factory=list)

    def by_id(self) -> dict[int, QueryResult]:
        return {r.query_id: r for r in self.responses}


class ClusterService:
    """Route queries across sharded engines with failover built in."""

    def __init__(self, graph, shard_cfgs, ccfg: ClusterConfig | None = None,
                 *, seed: int = 3, jobs: int = 1,
                 start_method: str | None = None):
        self.graph = graph
        self.ccfg = (ccfg or ClusterConfig()).validate()
        n = self.ccfg.n_shards
        if not isinstance(shard_cfgs, (list, tuple)):
            shard_cfgs = [shard_cfgs] * n
        if len(shard_cfgs) != n:
            raise ConfigError(
                f"{len(shard_cfgs)} shard configs for {n} shards"
            )
        self.shard_cfgs = list(shard_cfgs)
        self.seed = int(seed)
        self.jobs = int(jobs)
        self.start_method = start_method
        self.placement = VertexPlacement(
            self.ccfg.placement, n, graph.num_vertices
        )
        self.link = NetworkLink(self.ccfg, self.seed)
        self.svc_cfg = self.ccfg.service_cfg().validate()
        self.queue = AdmissionQueue(
            self.svc_cfg.queue_capacity,
            self.svc_cfg.admission_policy,
            self.svc_cfg.rate_limit_qps,
            self.svc_cfg.rate_limit_burst,
        )
        self.health = HealthBoard(
            self.svc_cfg, n,
            load_window_epochs=self.ccfg.rebalance_window_epochs,
            straggler_window_epochs=(
                self.ccfg.straggler_window_epochs
                if self.ccfg.straggler_detection else 0
            ),
            straggler_min_epochs=self.ccfg.straggler_min_epochs,
            straggler_median_multiple=self.ccfg.straggler_median_multiple,
        )
        self.auditor = ClusterAuditor(self, self.ccfg.audit_interval_epochs)
        self.resizer = ResizeController(self, self.ccfg)
        self._start_rng = np.random.default_rng(
            derive_seed(self.seed, "cluster:starts")
        )
        # -- run state (the auditor reads these) ---------------------------
        self.walks: dict[int, _Walk] = {}
        self.states: dict[int, _QueryState] = {}
        self.responses: list[QueryResult] = []
        self.now = 0.0
        self.epoch = 0
        self.arrivals = 0
        self.ok_count = 0
        self.timed_out_count = 0
        self.shed_count = 0
        self.walks_created = 0
        self.walks_done = 0
        self.zombie_walks = 0
        self.deferrals = 0
        self.walks_sacrificed = 0
        self.engine_totals = [0] * n
        self.engine_completed = [0] * n
        self.segments_injected = [0] * n
        self.segments_collected = [0] * n
        self.migrations_out = [0] * n
        self.migrations_in = [0] * n
        self.epochs_stepped = [0] * n
        self.handoffs_out = [0] * n
        self.handoffs_in = [0] * n
        self.prev_duration = [0.0] * n
        self.failovers: list[dict] = []
        self.kills_unfired: list = []
        # -- gray-failure run state ---------------------------------------
        self.hedges_issued = 0
        self.hedge_wins_primary = 0
        self.hedge_wins_hedge = 0
        self.hedge_wasted_segments = 0
        self.hedges_deferred = 0
        self.segments_committed = 0
        self.retry_budget_exhausted = 0
        self.ramp_epochs = 0
        if self.ccfg.brownout_enabled:
            from ..service.brownout import BrownoutController

            self.brownout = BrownoutController(
                enter_pressure=self.ccfg.brownout_enter_pressure,
                exit_pressure=self.ccfg.brownout_exit_pressure,
                capacity_factor=self.ccfg.brownout_capacity_factor,
                rate_factor=self.ccfg.brownout_rate_factor,
            )
        else:
            self.brownout = None
        self._retired_reports: dict[int, dict] = {}
        self._expected_walks = 0
        self._shard_mcfg = None
        self._t0 = 0.0
        # -- telemetry (opt-in; None keeps every path at one is-None check)
        if self.ccfg.telemetry_enabled:
            self.telemetry = MetricsRegistry(self.ccfg.metrics_cfg().validate())
            self.telemetry.bind_clock(lambda: self.now)
            self.telemetry.add_rules(default_cluster_rules())
        else:
            self.telemetry = None
        # Per-shard breaker state last recorded into telemetry (points
        # only on transitions) and the link counters already credited.
        self._breaker_recorded = [False] * n
        self._link_retransmits_seen = 0
        self._link_messages_seen = 0

    # ------------------------------------------------------------------- run

    def run(self, requests: list[QueryRequest]) -> ClusterOutcome:
        """Serve ``requests`` to completion across the cluster."""
        if not requests:
            raise ConfigError("no requests to serve")
        seen: set[int] = set()
        for req in requests:
            req.validate()
            if req.query_id in seen:
                raise ConfigError(f"duplicate query_id {req.query_id}")
            seen.add(req.query_id)
            if req.length > self.ccfg.max_walk_length:
                raise ConfigError(
                    f"query {req.query_id}: length {req.length} exceeds "
                    f"max_walk_length {self.ccfg.max_walk_length}"
                )
        ordered = sorted(requests, key=lambda r: (r.arrival, r.query_id))
        n = self.ccfg.n_shards
        self._expected_walks = sum(r.num_walks for r in ordered) // n + 1
        self._shard_mcfg = (
            self.ccfg.metrics_cfg() if self.ccfg.telemetry_enabled else None
        )
        params = [self._shard_params(i) for i in range(n)]
        hosts = ShardHosts(
            params, jobs=self.jobs, start_method=self.start_method
        )
        try:
            t0s = hosts.setup()
            self._t0 = self.now = max(t0s.values())
            self._drive(hosts, ordered)
            self.auditor.audit(final=True)
            shard_reports = dict(self._retired_reports)
            shard_reports.update(hosts.finalize())
        finally:
            hosts.close()
        report = self._build_report(
            [shard_reports[i] for i in range(self.n_phys)], jobs=hosts.jobs
        )
        return ClusterOutcome(report=report, responses=list(self.responses))

    def _shard_params(self, shard_id: int) -> dict:
        """Runtime-construction params for one physical shard (also the
        template a live grow uses for shards minted mid-run)."""
        return {
            "shard_id": shard_id,
            "graph": self.graph,
            "cfg": self.shard_cfgs[shard_id % len(self.shard_cfgs)],
            "seed": derive_seed(self.seed, f"shard:{shard_id}"),
            "spec_length": self.ccfg.max_walk_length,
            "expected_walks": self._expected_walks,
            "telemetry": self._shard_mcfg,
        }

    # ------------------------------------------------------------ membership

    @property
    def n_phys(self) -> int:
        """Physical shards ever created (live + retired); all per-shard
        arrays are indexed by physical id and only ever grow."""
        return len(self.engine_totals)

    def add_shards(self, count: int, hosts: ShardHosts) -> list[int]:
        """Live grow: mint ``count`` fresh shards (new physical ids),
        open their engine sessions, and register router-side state.
        Returns the new ids; the caller folds them into the placement."""
        added = []
        for _ in range(int(count)):
            sid = self.n_phys
            hosts.add_shard(self._shard_params(sid))
            self.health.add_shard()
            for arr in (
                self.engine_totals, self.engine_completed,
                self.segments_injected, self.segments_collected,
                self.migrations_out, self.migrations_in,
                self.epochs_stepped, self.handoffs_out, self.handoffs_in,
            ):
                arr.append(0)
            self.prev_duration.append(0.0)
            self._breaker_recorded.append(False)
            added.append(sid)
        return added

    def retire_shard(self, shard_id: int, hosts: ShardHosts) -> None:
        """Live removal of an emptied shard: finalize its engine, stash
        its run report, and retire health/breaker/link state so nothing
        stale can reroute to or report for it."""
        sid = int(shard_id)
        resident = [
            w.wid for w in self.walks.values()
            if w.state != "done" and w.shard == sid
        ]
        if resident:
            raise SimulationError(
                f"cannot retire shard {sid}: {len(resident)} walks resident"
            )
        self._retired_reports[sid] = hosts.remove_shard(sid)
        self.health.retire(sid)
        self.link.retire_shard(sid)

    # ------------------------------------------------------------ epoch loop

    def _drive(self, hosts: ShardHosts, ordered: list[QueryRequest]) -> None:
        ccfg = self.ccfg
        arrivals = [(self._t0 + r.arrival, r) for r in ordered]
        next_arrival = 0
        kills = sorted(
            ((float(t), int(s)) for t, s in ccfg.kill_schedule),
            key=lambda ts: (ts[0], ts[1]),
        )
        while True:
            if self.epoch >= ccfg.max_epochs:
                raise SimulationError(
                    f"cluster exceeded max_epochs={ccfg.max_epochs}; "
                    "possible livelock"
                )
            T = self.now
            # 1. Arrivals up to the barrier, in (arrival, query_id) order.
            while next_arrival < len(arrivals) and arrivals[next_arrival][0] <= T:
                t_arr, req = arrivals[next_arrival]
                next_arrival += 1
                self._arrive(req, t_arr)
            # 2. Health poll + breaker-driven replica promotion.
            open_now = self.health.poll(T)
            if ccfg.promote_after_open_epochs > 0:
                for sid in range(len(open_now)):
                    if (
                        self.health.consecutive_open[sid]
                        >= ccfg.promote_after_open_epochs
                    ):
                        self.health.promote(sid, epoch=self.epoch, now=T)
                        open_now[sid] = False
            mx = self.telemetry
            if mx is not None:
                for sid in range(len(open_now)):
                    if open_now[sid] != self._breaker_recorded[sid]:
                        self._breaker_recorded[sid] = open_now[sid]
                        mx.gauge("cluster_breaker_open", shard=str(sid)).set(
                            1.0 if open_now[sid] else 0.0, T
                        )
            # 3. Elastic membership barrier step: fire due resizes, hand
            #    off wrong-owner residents, commit / roll back.  Runs
            #    after the health poll (so deferrals see fresh breaker
            #    state) and before leasing (so a walk is never leased
            #    and handed off in the same barrier).  Shards added this
            #    barrier join `open_now` closed; they are polled from
            #    the next barrier on.
            self.resizer.tick(T, hosts, open_now)
            if len(open_now) < self.n_phys:
                open_now.extend([False] * (self.n_phys - len(open_now)))
            # 4. Admit queued queries under the healthy-capacity budget.
            self._admit(T, open_now)
            # 5. Lease eligible walks to shards.
            cmds = self._lease(T, open_now)
            leased = [0] * self.n_phys
            for sid, cmd in cmds.items():
                leased[sid] = sum(len(b[1]) for b in cmd.batches)
            self.health.note_loads(leased)
            # 6. Attach due kills to victims that have work this epoch.
            for i, (t_kill, sid) in enumerate(kills):
                if t_kill <= T and sid in cmds and cmds[sid].kill_delay is None:
                    cmds[sid].kill_delay = (
                        ccfg.kill_epoch_frac * self.prev_duration[sid]
                    )
                    kills[i] = None
            kills = [k for k in kills if k is not None]
            # 7. Nothing to step: finish, or advance the clock to the
            #    next actionable instant (arrival, delivery, reopen).
            if not cmds:
                if self._finished(next_arrival, len(arrivals)):
                    self.kills_unfired = list(kills)
                    return
                self.now = self._advance_clock(
                    T, arrivals, next_arrival, open_now
                )
                self.epoch += 1
                continue
            # 8. Step the loaded shards (concurrently when pooled).
            results = hosts.step(cmds)
            t_next = T
            for sid in sorted(results):
                r = results[sid]
                self.prev_duration[sid] = r.t_end - r.t_start
                if not ccfg.hedging_enabled:
                    # Hedged mode barriers on the winning commit times
                    # instead (below): a hedge loser still draining on
                    # a straggler must not hold the cluster clock back.
                    t_next = max(t_next, r.t_end)
                self.epochs_stepped[sid] += 1
                if ccfg.straggler_detection:
                    # Busy time between completions, not wall span or
                    # per-walk sojourn: requeues spread injections
                    # across the epoch (so t_end - t_start measures
                    # the injection schedule), and sojourn times grow
                    # with batch size (so a fast shard handed a big
                    # batch would look slow).  Summing completion gaps
                    # while work was boarded isolates the shard's
                    # drain rate.  Boarding is exactly max(t_start,
                    # batch t_min) -- batches are scheduled while the
                    # engine clock reads t_start.
                    board = {}
                    for t_min, ids, _, _ in cmds[sid].batches:
                        t_b = max(r.t_start, float(t_min))
                        for wid in ids:
                            board[int(wid)] = t_b
                    busy, n_done, prev = 0.0, 0, r.t_start
                    for t_done, ids, _ in r.completions:
                        start = max(
                            prev,
                            min(board[int(wid)] for wid in ids),
                        )
                        if t_done > start:
                            busy += t_done - start
                        prev = max(prev, float(t_done))
                        n_done += len(ids)
                    self.health.note_epoch_latency(sid, busy, n_done)
                self.engine_totals[sid] = r.engine_total
                self.engine_completed[sid] = r.engine_completed
                self.health.update(sid, r.health)
                if r.failover is not None:
                    self.failovers.append(
                        {"kind": "kill", "cluster_epoch": self.epoch,
                         "t_barrier": T, **r.failover}
                    )
                    self.resizer.note_failover(r.failover)
                    if mx is not None:
                        mx.counter("cluster_failovers").inc(1.0, T)
                        rto = r.failover.get("rto_time")
                        if rto is not None:
                            mx.histogram(
                                "cluster_failover_rto_seconds", _RTO_BUCKETS,
                                shard=str(sid),
                            ).observe(float(rto), T)
            # 9. Barrier: collect completions, migrate, credit, sweep.
            if ccfg.hedging_enabled:
                t_next = self._collect_hedged(results, t_next)
            else:
                self._collect(results, t_next)
            if ccfg.straggler_detection:
                suspects = self.health.refresh_suspects(
                    epoch=self.epoch, now=t_next
                )
                if mx is not None:
                    mx.gauge("cluster_suspect_shards").set(
                        float(sum(suspects)), t_next
                    )
                if self.brownout is not None:
                    was = self.brownout.active
                    self.brownout.observe(
                        self.health.straggler_pressure(),
                        epoch=self.epoch, now=t_next,
                    )
                    if mx is not None and self.brownout.active != was:
                        mx.gauge("cluster_brownout_active").set(
                            1.0 if self.brownout.active else 0.0, t_next
                        )
            self.now = t_next
            self._sweep_deadlines(t_next)
            self.epoch += 1
            self.auditor.maybe_audit(self.epoch)

    # ------------------------------------------------------------ admission

    def _arrive(self, req: QueryRequest, t: float) -> None:
        self.arrivals += 1
        mx = self.telemetry
        if mx is not None:
            mx.counter("cluster_arrivals").inc(1.0, t)
        st = _QueryState(req=req, t_arrival=t, deadline_abs=t + req.deadline)
        if self.ccfg.query_retry_budget > 0:
            st.retry_budget = self.ccfg.query_retry_budget
        self.states[req.query_id] = st
        admitted, evicted, refusal = self.queue.offer(req, t)
        if evicted is not None:
            ev = self.states[evicted.query_id]
            self._respond(ev, "shed", t, shed_reason="shed-oldest")
        if not admitted:
            self._respond(st, "shed", t, shed_reason=refusal)
            return
        st.admitted = True
        if mx is not None:
            mx.gauge("cluster_queue_depth").set(float(len(self.queue)), t)

    def _admit(self, T: float, open_now: list[bool]) -> None:
        """Create walks for queued queries while capacity lasts.

        Cluster capacity is the healthy shards' inflight budget; open
        breakers shrink it, the queue backs up, and the admission
        policy sheds — the router's graceful-degradation path.
        """
        live = self.resizer.routing_placement().shard_ids
        healthy = sum(1 for sid in live if not open_now[sid])
        capacity = healthy * self.ccfg.max_inflight_walks_per_shard
        rate_factor = 1.0
        if self.ccfg.resize_admission_ramp:
            # Mid-transfer, interpolate between the committed and target
            # placements' healthy capacity by handoff progress, instead
            # of stepping to the target's full budget at prepare.
            progress = self.resizer.transfer_progress()
            if progress < 1.0:
                old_ids = self.resizer.old.shard_ids
                old_healthy = sum(
                    1 for sid in old_ids
                    if sid < len(open_now) and not open_now[sid]
                )
                old_cap = old_healthy * self.ccfg.max_inflight_walks_per_shard
                ramped = old_cap + (capacity - old_cap) * progress
                if capacity > 0:
                    rate_factor *= ramped / capacity
                capacity = ramped
                self.ramp_epochs += 1
        if self.brownout is not None and self.brownout.active:
            capacity *= self.brownout.capacity_factor
            rate_factor *= self.brownout.rate_factor
        if self.ccfg.resize_admission_ramp or self.brownout is not None:
            self.queue.rate_factor = rate_factor
        inflight = self.walks_created - self.walks_done
        while len(self.queue):
            head = self.queue.peek()
            st = self.states[head.query_id]
            if st.responded:
                self.queue.pop()
                continue
            if healthy == 0 or inflight + head.num_walks > capacity:
                self.deferrals += 1
                break
            self.queue.pop()
            self._create_walks(st, T)
            inflight += head.num_walks
        mx = self.telemetry
        if mx is not None:
            mx.gauge("cluster_queue_depth").set(float(len(self.queue)), T)

    def _create_walks(self, st: _QueryState, T: float) -> None:
        req = st.req
        if req.starts is not None:
            starts = np.asarray(req.starts, dtype=np.int64)
        else:
            starts = start_vertices(self.graph, req.num_walks, self._start_rng)
        # Mid-resize, new walks go straight to their *future* owners.
        owners = self.resizer.routing_placement().shard_of(starts)
        t_eligible = max(T, st.t_arrival)
        for v, owner in zip(starts.tolist(), owners.tolist()):
            wid = self.walks_created
            self.walks_created += 1
            self.walks[wid] = _Walk(
                wid, req.query_id, int(v), int(req.length), int(owner),
                t_eligible,
            )
        st.injected = True

    # -------------------------------------------------------------- leasing

    def _route(self, owner: int, open_now: list[bool]) -> int | None:
        """Executing shard for a lease owned by ``owner``.

        A degraded owner's leases go to its ring successor — the shard
        modeled as holding its read replica — when rerouting is on;
        with every shard open (or rerouting off) the lease defers.
        """
        if not open_now[owner]:
            return owner
        if not self.ccfg.reroute_to_replica:
            return None
        # Ring order follows the placement's slot table; a departing
        # shard (still executing mid-transfer but absent from the
        # routing target) falls back to the committed placement's ring.
        placement = self.resizer.routing_placement()
        if owner not in placement.shard_ids:
            placement = self.placement
        if owner not in placement.shard_ids:
            return None
        for candidate in placement.ring_successors(owner):
            if not open_now[candidate]:
                self.health.reroutes[owner] += 1
                return candidate
        return None

    def _hedge_target(self, w: _Walk, host: int, open_now: list[bool],
                      suspects: list[bool]) -> int | None:
        """Ring successor to issue a hedge on.

        Eligible successors are the shards after ``host`` in ring
        order that are neither breaker-open nor themselves suspect;
        the walk id rotates deterministically through them so a
        suspect shard's duplicated load spreads across the healthy
        ring instead of turning its immediate successor into the next
        straggler."""
        placement = self.resizer.routing_placement()
        if host not in placement.shard_ids:
            placement = self.placement
        if host not in placement.shard_ids:
            return None
        eligible = [
            candidate
            for candidate in placement.ring_successors(host)
            if candidate != host
            and not (candidate < len(open_now) and open_now[candidate])
            and not (candidate < len(suspects) and suspects[candidate])
        ]
        if not eligible:
            return None
        return eligible[w.wid % len(eligible)]

    def _lease(self, T: float, open_now: list[bool]) -> dict[int, ShardStepCommand]:
        ccfg = self.ccfg
        budget = [ccfg.max_inflight_walks_per_shard] * self.n_phys
        # (host, t_min) -> [walk ...]; filled in deterministic wid order.
        groups: dict[tuple[int, float], list[_Walk]] = {}
        dead_prop = ccfg.deadline_propagation
        hedge_on = ccfg.hedging_enabled
        suspects = self.health.suspect if hedge_on else None
        eligible = sorted(
            (
                w for w in self.walks.values()
                if w.state in ("queued", "migrating") and w.eligible_at <= T
            ),
            key=lambda w: (w.eligible_at, w.wid),
        )
        for w in eligible:
            if dead_prop and self.states[w.query_id].responded:
                # The deadline already passed (or the query was shed):
                # stepping this walk can no longer change any answer, so
                # sacrifice it instead of burning shard time on it.
                w.state = "done"
                self.walks_done += 1
                self.walks_sacrificed += 1
                self._credit(w, T, sacrificed=True)
                continue
            host = self._route(w.shard, open_now)
            if host is None or budget[host] <= 0:
                if host is None:
                    self.deferrals += 1
                continue
            hedge = None
            if hedge_on and host < len(suspects) and suspects[host]:
                plan, hedge = self._plan_hedge(w, host, open_now,
                                               suspects, budget)
                if plan == "defer":
                    # The successor's lease budget is full this epoch;
                    # an unhedged lease would let the straggler drag
                    # the commit barrier, so wait one epoch instead.
                    self.hedges_deferred += 1
                    continue
            budget[host] -= 1
            w.state = "leased"
            w.leased_hops = min(ccfg.segment_hops, w.remaining)
            w.shard = host
            groups.setdefault((host, w.eligible_at), []).append(w)
            if hedge is not None:
                self._issue_hedge(w, hedge, groups, budget)
        cmds: dict[int, ShardStepCommand] = {}
        for (host, t_min) in sorted(groups):
            batch = groups[(host, t_min)]
            ids = np.array([w.wid for w in batch], dtype=np.int64)
            verts = np.array([w.vertex for w in batch], dtype=np.int64)
            hops = np.array([w.leased_hops for w in batch], dtype=np.int64)
            cmd = cmds.setdefault(host, ShardStepCommand(epoch=self.epoch))
            cmd.batches.append((t_min, ids, verts, hops))
            self.segments_injected[host] += len(batch)
        return cmds

    def _plan_hedge(
        self, w: _Walk, host: int, open_now: list[bool],
        suspects: list[bool], budget: list[int],
    ) -> tuple[str, int | None]:
        """Decide how to lease to a suspect shard.

        Returns ``("hedge", successor)`` when a duplicate can be
        issued, ``("defer", None)`` when the successor's lease budget
        is exhausted for this epoch (transient — retry next barrier),
        and ``("bare", None)`` when hedging is permanently pointless
        for this walk (no viable successor, the hedge cannot beat the
        query deadline, or the query's retry budget ran out) — then
        the lease proceeds unhedged so the walk still makes progress.
        """
        ccfg = self.ccfg
        st = self.states[w.query_id]
        if ccfg.deadline_propagation and (
            w.eligible_at + ccfg.hedge_delay > st.deadline_abs
        ):
            # The hedge could not finish in time anyway; don't pay for it.
            self.hedges_deferred += 1
            return "bare", None
        if st.retry_budget is not None and st.retry_budget <= 0:
            self._note_budget_exhausted(st)
            self.hedges_deferred += 1
            return "bare", None
        hedge = self._hedge_target(w, host, open_now, suspects)
        if hedge is None:
            self.hedges_deferred += 1
            return "bare", None
        if budget[hedge] <= 0:
            return "defer", None
        return "hedge", hedge

    def _issue_hedge(self, w: _Walk, hedge: int,
                     groups: dict[tuple[int, float], list[_Walk]],
                     budget: list[int]) -> None:
        """Speculatively re-issue a suspect shard's lease to its ring
        successor.  The duplicate boards ``hedge_delay`` after the
        primary; the barrier commits whichever completion lands first
        and discards the other (exactly-one-commit, audited)."""
        st = self.states[w.query_id]
        budget[hedge] -= 1
        if st.retry_budget is not None:
            st.retry_budget -= 1
            if st.retry_budget <= 0:
                self._note_budget_exhausted(st)
        w.hedge_shard = hedge
        self.hedges_issued += 1
        groups.setdefault((hedge, w.eligible_at + self.ccfg.hedge_delay),
                          []).append(w)
        mx = self.telemetry
        if mx is not None:
            mx.counter("cluster_hedges_issued").inc(1.0, w.eligible_at)

    def _note_budget_exhausted(self, st: _QueryState) -> None:
        if not st.budget_exhausted:
            st.budget_exhausted = True
            self.retry_budget_exhausted += 1
            mx = self.telemetry
            if mx is not None:
                mx.counter("cluster_retry_budget_exhausted").inc(1.0, self.now)

    # -------------------------------------------------------------- barrier

    def _collect(self, results: dict, t_next: float) -> None:
        """Process completed segments and launch migrations, all in
        deterministic (shard, event) order at the barrier."""
        migrating: dict[tuple[int, int], list[_Walk]] = {}
        # Mid-resize the routing (target) placement decides migration
        # destinations, so collected walks flow to their future owners
        # instead of bouncing through the outgoing map.
        placement = self.resizer.routing_placement()
        dead_prop = self.ccfg.deadline_propagation
        for sid in sorted(results):
            for t_done, ids, verts in results[sid].completions:
                owners = placement.shard_of(verts)
                self.segments_collected[sid] += len(ids)
                for wid, v, owner in zip(
                    ids.tolist(), verts.tolist(), owners.tolist()
                ):
                    w = self.walks[wid]
                    if w.state != "leased" or w.shard != sid:
                        raise SimulationError(
                            f"walk {wid} completed on shard {sid} but is "
                            f"{w.state} on shard {w.shard}"
                        )
                    w.remaining -= w.leased_hops
                    w.leased_hops = 0
                    w.vertex = int(v)
                    self.segments_committed += 1
                    if w.remaining <= 0:
                        w.state = "done"
                        self.walks_done += 1
                        self._credit(w, t_next)
                    elif dead_prop and self.states[w.query_id].responded:
                        # Deadline propagation: the query is already
                        # answered, so don't requeue (or worse, migrate)
                        # a walk whose result nobody will read.
                        w.state = "done"
                        self.walks_done += 1
                        self.walks_sacrificed += 1
                        self._credit(w, t_next, sacrificed=True)
                    elif int(owner) == sid:
                        w.state = "queued"
                        w.eligible_at = t_next
                    else:
                        w.state = "migrating"
                        w.migrations += 1
                        migrating.setdefault((sid, int(owner)), []).append(w)
        self._transmit_migrations(migrating, t_next)
        self._note_barrier_telemetry(t_next)

    def _collect_hedged(self, results: dict, t_next: float) -> float:
        """Hedging-mode barrier: gather every lease's completions,
        commit exactly one per walk (earliest ``(t_done, shard)``),
        discard the loser as hedge-wasted work, and answer queries at
        the winning completion's time instead of the barrier's.

        Both copies of a hedged lease always land in the same barrier —
        engines drain fully each epoch (audited) — so first-completion-
        wins is a deterministic min over fully-known candidates, not a
        race.  Returns the barrier time the cluster clock advances to:
        the latest *winning* commit, not the latest engine drain, so a
        hedge loser still grinding on a straggler never stalls the
        admission/lease cadence (its discarded work keeps accruing in
        that shard's local timeline and is billed as hedge waste).
        """
        placement = self.resizer.routing_placement()
        dead_prop = self.ccfg.deadline_propagation
        # Pass 1: candidates per walk, in deterministic (shard, event)
        # order.  Each entry is (t_done, executing shard, end vertex).
        pending: dict[int, list[tuple[float, int, int]]] = {}
        for sid in sorted(results):
            for t_done, ids, verts in results[sid].completions:
                self.segments_collected[sid] += len(ids)
                for wid, v in zip(ids.tolist(), verts.tolist()):
                    w = self.walks[wid]
                    if w.state != "leased" or (
                        sid != w.shard and sid != w.hedge_shard
                    ):
                        raise SimulationError(
                            f"walk {wid} completed on shard {sid} but is "
                            f"{w.state} on shard {w.shard} "
                            f"(hedge {w.hedge_shard})"
                        )
                    pending.setdefault(wid, []).append(
                        (float(t_done), sid, int(v))
                    )
        # Winner per walk, and the commit barrier they imply.
        winners: dict[int, tuple[float, int, int]] = {}
        for wid, cands in pending.items():
            w = self.walks[wid]
            expected = 2 if w.hedge_shard is not None else 1
            if len(cands) != expected:
                raise SimulationError(
                    f"walk {wid}: {len(cands)} completions for "
                    f"{expected} outstanding leases"
                )
            winners[wid] = min(cands)
            t_next = max(t_next, winners[wid][0])
        # Pass 2: state transitions in wid order.
        migrating: dict[tuple[int, int], list[_Walk]] = {}
        for wid in sorted(pending):
            w = self.walks[wid]
            cands = pending[wid]
            t_win, sid_win, v_win = winners[wid]
            if w.hedge_shard is not None:
                self.hedge_wasted_segments += len(cands) - 1
                if sid_win == w.shard:
                    self.hedge_wins_primary += 1
                else:
                    self.hedge_wins_hedge += 1
                w.hedge_shard = None
            w.remaining -= w.leased_hops
            w.leased_hops = 0
            w.vertex = v_win
            w.shard = sid_win
            self.segments_committed += 1
            owner = int(placement.shard_of(np.int64(v_win)))
            if w.remaining <= 0:
                w.state = "done"
                self.walks_done += 1
                self._credit(w, t_win)
            elif dead_prop and self.states[w.query_id].responded:
                w.state = "done"
                self.walks_done += 1
                self.walks_sacrificed += 1
                self._credit(w, t_win, sacrificed=True)
            elif owner == sid_win:
                w.state = "queued"
                w.eligible_at = t_win
            else:
                w.state = "migrating"
                w.migrations += 1
                migrating.setdefault((sid_win, owner), []).append(w)
        self._transmit_migrations(migrating, t_next)
        self._note_barrier_telemetry(t_next)
        return t_next

    def _transmit_migrations(
        self, migrating: dict[tuple[int, int], list[_Walk]], t_next: float
    ) -> None:
        mx = self.telemetry
        budgeted = (
            self.ccfg.deadline_propagation and self.ccfg.query_retry_budget > 0
        )
        for (src, dst) in sorted(migrating):
            batch = migrating[(src, dst)]
            cap = None
            if budgeted:
                # The batch retries as one message, so its retransmit
                # allowance is the tightest member query's remainder.
                rems = [
                    self.states[w.query_id].retry_budget
                    for w in batch
                    if self.states[w.query_id].retry_budget is not None
                ]
                if rems:
                    cap = max(0, min(rems))
            delivery = self.link.transmit(t_next, len(batch), max_retries=cap)
            if budgeted and self.link.last_retransmits:
                used = self.link.last_retransmits
                for w in batch:
                    st = self.states[w.query_id]
                    if st.retry_budget is None:
                        continue
                    st.retry_budget = max(0, st.retry_budget - used)
                    if st.retry_budget <= 0:
                        self._note_budget_exhausted(st)
            self.migrations_out[src] += len(batch)
            self.migrations_in[dst] += len(batch)
            if mx is not None:
                mx.counter("cluster_migrations", shard=str(src)).inc(
                    float(len(batch)), t_next
                )
            for w in batch:
                w.shard = dst
                w.eligible_at = delivery

    def _note_barrier_telemetry(self, t_next: float) -> None:
        mx = self.telemetry
        if mx is not None:
            # Link counters are cumulative on the link; credit the
            # barrier's delta so the series shows retransmit storms.
            d_msg = self.link.messages - self._link_messages_seen
            d_rtx = self.link.retransmits - self._link_retransmits_seen
            self._link_messages_seen = self.link.messages
            self._link_retransmits_seen = self.link.retransmits
            if d_msg:
                mx.counter("cluster_link_messages").inc(float(d_msg), t_next)
            if d_rtx:
                mx.counter("cluster_link_retransmits").inc(float(d_rtx), t_next)
            mx.gauge("cluster_walks_inflight").set(
                float(self.walks_created - self.walks_done), t_next
            )

    def _credit(self, w: _Walk, t: float, *, sacrificed: bool = False) -> None:
        st = self.states[w.query_id]
        st.walks_done += 1
        if st.responded:
            if not sacrificed:
                self.zombie_walks += 1
        elif st.walks_done >= st.req.num_walks and t <= st.deadline_abs:
            self._respond(st, "ok", t)

    def _sweep_deadlines(self, t: float) -> None:
        for qid in sorted(self.states):
            st = self.states[qid]
            if not st.responded and st.deadline_abs <= t:
                # Answered *at* the deadline with whatever finished.
                self._respond(st, "timed_out", st.deadline_abs)

    def _respond(self, st: _QueryState, status: str, t: float, *,
                 shed_reason: str | None = None) -> None:
        st.responded = True
        latency = 0.0 if status == "shed" else t - st.t_arrival
        self.responses.append(
            QueryResult(
                query_id=st.req.query_id,
                arrival=st.req.arrival,
                admitted=st.admitted,
                status=status,
                walks_requested=st.req.num_walks,
                walks_completed=st.walks_done,
                finish_time=t,
                latency=latency,
                shed_reason=shed_reason,
            )
        )
        if status == "ok":
            self.ok_count += 1
        elif status == "timed_out":
            self.timed_out_count += 1
        else:
            self.shed_count += 1
        mx = self.telemetry
        if mx is not None:
            mx.counter("cluster_responses").inc(1.0, t)
            mx.counter("cluster_status", status=status).inc(1.0, t)
            if status == "timed_out":
                mx.counter("cluster_deadline_misses").inc(1.0, t)
            elif status == "shed":
                mx.counter("cluster_shed").inc(1.0, t)

    # ------------------------------------------------------------- idle time

    def _finished(self, next_arrival: int, n_arrivals: int) -> bool:
        if next_arrival < n_arrivals or len(self.queue):
            return False
        if self.resizer.active():
            return False
        if any(w.state != "done" for w in self.walks.values()):
            return False
        return all(st.responded for st in self.states.values())

    def _advance_clock(self, T: float, arrivals, next_arrival: int,
                       open_now: list[bool]) -> float:
        candidates: list[float] = []
        if next_arrival < len(arrivals):
            candidates.append(arrivals[next_arrival][0])
        t_resize = self.resizer.next_event_after(T)
        if t_resize is not None:
            candidates.append(t_resize)
        for w in self.walks.values():
            if w.state in ("queued", "migrating") and w.eligible_at > T:
                candidates.append(w.eligible_at)
        if any(open_now):
            # A mid-resize deferred handoff batch is blocked work too:
            # its destination's breaker reopening is the next event.
            blocked = any(
                w.state in ("queued", "migrating") and w.eligible_at <= T
                for w in self.walks.values()
            ) or len(self.queue) or self.resizer.active()
            if blocked:
                candidates.extend(
                    b.open_until
                    for b, o in zip(self.health.breakers, open_now)
                    if o and b.open_until > T
                )
        candidates = [c for c in candidates if c > T]
        if not candidates:
            raise SimulationError(
                f"cluster deadlock at t={T:.6g}s: no step commands and "
                "no future event to advance to"
            )
        return min(candidates)

    # --------------------------------------------------------------- report

    def _service_section(self) -> dict:
        ok_lat = np.asarray(
            [r.latency for r in self.responses if r.status == "ok"],
            dtype=float,
        )
        if ok_lat.size:
            p50, p95, p99 = (
                float(np.percentile(ok_lat, q)) for q in (50.0, 95.0, 99.0)
            )
            lat = {
                "n": int(ok_lat.size),
                "mean": float(ok_lat.mean()),
                "max": float(ok_lat.max()),
                "p50": p50,
                "p95": p95,
                "p99": p99,
            }
        else:
            lat = {
                "n": 0, "mean": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        arrivals = max(self.arrivals, 1)
        return {
            "requests": {
                "arrivals": self.arrivals,
                "ok": self.ok_count,
                "timed_out": self.timed_out_count,
                "shed": self.shed_count,
            },
            "walks": {
                "created": self.walks_created,
                "done": self.walks_done,
                "zombie": self.zombie_walks,
            },
            "latency": lat,
            "shed_rate": self.shed_count / arrivals,
            "deadline_miss_rate": self.timed_out_count / arrivals,
            "queue": self.queue.stats(),
            "deferrals": self.deferrals,
        }

    def _build_report(self, shard_reports: list[dict], *, jobs: int) -> dict:
        rtos = [f["rto_time"] for f in self.failovers if "rto_time" in f]
        migrations_total = int(sum(self.migrations_out))
        per_walk = [w.migrations for w in self.walks.values()]
        # Elastic sections (and per-shard handoff keys) appear only when
        # the elastic machinery is configured, so no-resize reports stay
        # byte-identical to the pre-elastic schema.
        elastic = bool(self.ccfg.resize_schedule) or self.ccfg.rebalance_enabled
        shard_rows = []
        for i in range(self.n_phys):
            row = {
                "shard": i,
                "epochs_stepped": self.epochs_stepped[i],
                "segments_injected": self.segments_injected[i],
                "migrations_out": self.migrations_out[i],
                "migrations_in": self.migrations_in[i],
            }
            if elastic:
                row["handoffs_out"] = self.handoffs_out[i]
                row["handoffs_in"] = self.handoffs_in[i]
                row["retired"] = i in self.health.retired
            shard_rows.append(row)
        cluster = {
            "epochs": self.epoch,
            "placement": self.ccfg.placement,
            "segment_hops": self.ccfg.segment_hops,
            "barrier_time": self.now,
            "shards": shard_rows,
            "migrations": {
                "total": migrations_total,
                "max_per_walk": int(max(per_walk, default=0)),
                "mean_per_walk": (
                    float(sum(per_walk)) / len(per_walk) if per_walk else 0.0
                ),
            },
            "link": self.link.stats(),
            "health": self.health.stats(),
            "failovers": self.failovers,
            "promotions": self.health.promotions,
            "kills_unfired": [list(k) for k in self.kills_unfired],
            "rto": {
                "count": len(rtos),
                "max": float(max(rtos, default=0.0)),
                "mean": float(sum(rtos) / len(rtos)) if rtos else 0.0,
            },
            "audit": self.auditor.stats(),
        }
        if elastic:
            rz = self.resizer.stats()
            cluster["membership"] = {
                "initial_shards": self.ccfg.n_shards,
                "live_shards": list(self.placement.shard_ids),
                "retired_shards": sorted(self.health.retired),
                "placement": self.placement.describe(),
                "window_loads": self.health.window_loads(range(self.n_phys)),
            }
            cluster["resizes"] = rz["resizes"]
            cluster["resizes_unfired"] = rz["unfired"]
            cluster["handoff"] = rz["handoff"]
        gray = self.ccfg.gray_enabled()
        if gray:
            section = {
                "walks_sacrificed": self.walks_sacrificed,
                "retry_budget_exhausted": self.retry_budget_exhausted,
            }
            if self.ccfg.straggler_detection:
                section["stragglers"] = {
                    "suspect_epochs": list(self.health.suspect_epochs),
                    "transitions": self.health.suspect_transitions,
                }
            if self.ccfg.hedging_enabled:
                section["hedging"] = {
                    "issued": self.hedges_issued,
                    "wins_primary": self.hedge_wins_primary,
                    "wins_hedge": self.hedge_wins_hedge,
                    "wasted_segments": self.hedge_wasted_segments,
                    "deferred": self.hedges_deferred,
                    "segments_committed": self.segments_committed,
                    "wasted_work_rate": (
                        self.hedge_wasted_segments / self.segments_committed
                        if self.segments_committed else 0.0
                    ),
                }
            if self.brownout is not None:
                section["brownout"] = self.brownout.stats()
            if self.ccfg.resize_admission_ramp:
                section["admission_ramp"] = {"epochs": self.ramp_epochs}
            cluster["gray"] = section
        if self.telemetry is not None:
            # Inside the "cluster" section on purpose: the baseline gate
            # compares killed vs uninterrupted runs with this section
            # dropped, and failover telemetry legitimately differs.
            cluster["telemetry"] = self.telemetry.section(self.now)
        return {
            "schema": CLUSTER_SCHEMA,
            "schema_version": (
                3 if gray else 2 if elastic else CLUSTER_SCHEMA_VERSION
            ),
            "seed": self.seed,
            "n_shards": self.ccfg.n_shards,
            "jobs": jobs,
            "t0": self._t0,
            "service": self._service_section(),
            "responses": [
                {
                    "query_id": r.query_id,
                    "status": r.status,
                    "walks_requested": r.walks_requested,
                    "walks_completed": r.walks_completed,
                    "finish_time": r.finish_time,
                    "latency": r.latency,
                    "shed_reason": r.shed_reason,
                }
                for r in self.responses
            ],
            "shards": shard_reports,
            "cluster": cluster,
        }
