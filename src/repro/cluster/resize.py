"""Failure-safe elastic membership: live shard add/remove/rebalance.

A membership change is an ordinary, interruptible operation here — the
cluster keeps serving while it runs, and every step is survivable:

* **prepare** (one barrier): build the epoch+1 target
  :class:`~repro.cluster.placement.VertexPlacement`.  A grow spins up
  fresh :class:`~repro.cluster.shard.ShardRuntime`\\ s through the live
  :class:`~repro.cluster.pool.ShardHosts`; a shrink marks a departing
  shard; a rebalance recuts range bounds from the
  :class:`~repro.cluster.health.HealthBoard`'s trailing per-shard load
  window.  The target placement is *not* yet authoritative — it is the
  routing map, so newly-collected segments and new walks flow to their
  future owners while existing residents are handed off.
* **transfer** (one or more barriers): at each barrier, every resident
  walk whose target owner differs from its current shard is handed off
  over the existing :class:`~repro.cluster.link.NetworkLink` — same
  latency/bandwidth charges, same seeded loss/corruption faults, same
  :class:`~repro.common.backoff.RetryPolicy` retransmits and
  reliable-fallback escalation, so a handoff batch is *delayed, never
  dropped*.  A batch whose destination breaker is open defers (the walk
  keeps executing where it is and retries next barrier).  A shard
  killed mid-handoff promotes its replica inside its epoch step and
  replays the identical injection schedule from its epoch checkpoint —
  including the handoff deliveries — so conservation survives the kill.
* **commit** (one barrier): once no walk is resident on a wrong shard
  and nothing is in handoff flight, the target becomes the committed
  placement (epoch bump), departing shards are retired (engine
  finalized, health/breaker/link state retired), and the resize record
  closes with its measured RTO (prepare → commit wall in cluster time)
  and RPO (walk segments replayed from epoch checkpoints by kills that
  landed during the window).
* **abort → rollback**: a transfer that exceeds
  ``resize_transfer_budget_epochs`` barriers (e.g. a permanently
  breaker-open target) aborts: the *old* placement becomes the routing
  target again and the same transfer machinery drains every walk back
  (rollback ignores breaker deferrals so it always terminates); shards
  added by the aborted grow are removed once empty, and the committed
  placement — never swapped — is untouched.

The controller is driven synchronously by the coordinator at every
epoch barrier, draws no randomness of its own (the link's seeded
stream is the only RNG touched, and only when a handoff actually
transmits), and does nothing at all when no resize is scheduled or
active — which is why no-resize runs stay byte-identical.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigError, SimulationError

__all__ = ["ResizeRequest", "ResizeController", "rebalanced_bounds"]

IDLE, TRANSFER, ROLLBACK = "idle", "transfer", "rollback"

#: ``cluster_resize_phase`` gauge encoding (0 also means "no resize").
PHASE_GAUGE = {IDLE: 0.0, TRANSFER: 2.0, ROLLBACK: 3.0}


@dataclass(frozen=True)
class ResizeRequest:
    """One scheduled membership change.

    ``kind`` is ``grow`` (``arg`` = shards to add), ``shrink``
    (``arg`` = physical shard id to remove), or ``rebalance``
    (``bounds`` = explicit range cuts, or None to recut from the
    health board's load window at prepare time).  ``auto`` marks
    requests the load-driven trigger enqueued itself.
    """

    at: float
    kind: str
    arg: int = 0
    bounds: tuple | None = None
    auto: bool = False


def rebalanced_bounds(bounds, loads) -> tuple[int, ...]:
    """Recut range bounds so each slot gets ~equal observed load.

    ``loads[slot]`` is the trailing-window walk load of the shard in
    that slot.  Load is assumed uniform *within* each current range
    (the only density estimate the per-shard counters support), so the
    new cut for slot ``k`` lands where the piecewise-linear cumulative
    load crosses ``k/n`` of the total.  Pure integer/float arithmetic —
    deterministic, no RNG — and the result is clamped to strictly
    increasing cuts with at least one vertex per slot.
    """
    n = len(loads)
    if len(bounds) != n + 1:
        raise ConfigError(f"{len(bounds)} bounds for {n} loads")
    total = float(sum(loads))
    n_vertices = bounds[-1]
    if total <= 0.0 or n_vertices < n:
        return tuple(bounds)
    cum = [0.0]
    for load in loads:
        cum.append(cum[-1] + float(load))
    new = [int(bounds[0])]
    for k in range(1, n):
        tgt = total * k / n
        seg = min(bisect_right(cum, tgt) - 1, n - 1)
        lo, hi = int(bounds[seg]), int(bounds[seg + 1])
        seg_load = float(loads[seg])
        frac = 0.0 if seg_load <= 0.0 else (tgt - cum[seg]) / seg_load
        cut = lo + int(round(frac * (hi - lo)))
        cut = max(cut, new[-1] + 1)          # ≥1 vertex per earlier slot
        cut = min(cut, int(n_vertices) - (n - k))  # room for later slots
        new.append(cut)
    new.append(int(n_vertices))
    return tuple(new)


class ResizeController:
    """Barrier-synchronous two-phase handoff state machine.

    Owned by :class:`~repro.cluster.cluster.ClusterService`; ``tick``
    runs at every epoch barrier between the health poll and leasing,
    so a walk is never simultaneously leased and handed off.
    """

    def __init__(self, cluster, ccfg):
        self.cl = cluster
        self.ccfg = ccfg
        self.pending: list[ResizeRequest] = sorted(
            (
                ResizeRequest(at=float(t), kind=str(kind), arg=int(arg))
                for t, kind, arg in ccfg.resize_schedule
            ),
            key=lambda r: r.at,
        )
        self.phase = IDLE
        #: Routing placement while a transfer/rollback is in flight.
        self.target = None
        #: Committed placement snapshot the active resize started from.
        self.old = None
        self.record: dict | None = None
        self.records: list[dict] = []
        self.aborts = 0
        self.rebalances = 0
        self.handoff_walks = 0
        self.handoff_batches = 0
        self.deferred_batches = 0
        self._transfer_epochs = 0
        # Wrong-owner walk counts backing :meth:`transfer_progress`
        # (resize-aware admission ramp).  ``-1`` = not yet measured.
        self._wrong_initial = -1
        self._wrong_now = 0
        self._rollback_remove: list[int] = []
        self._cooldown_until_epoch = 0
        self._phase_recorded = 0.0
        #: (epoch, record) of the most recently finished resize, so a
        #: kill whose failover is processed later in the same barrier
        #: (the commit epoch steps handoff-delivered walks) is still
        #: attributed to the resize it interrupted.
        self._last_finished: tuple[int, dict] | None = None

    # ------------------------------------------------------------- queries

    def routing_placement(self):
        """The ownership map the router must use *right now*: the
        resize target mid-transition, the committed placement
        otherwise.  Epoch-versioned, so shards/auditor/router agree."""
        return self.target if self.target is not None else self.cl.placement

    def active(self) -> bool:
        return self.phase != IDLE

    def transfer_progress(self) -> float:
        """Fraction of the active transfer's initial wrong-owner walks
        already redirected, in [0, 1].  1.0 when idle or rolling back
        (rollback routes by the committed placement, whose capacity
        needs no ramp).  Drives the resize-aware admission ramp."""
        if self.phase != TRANSFER or self._wrong_initial <= 0:
            return 1.0
        done = 1.0 - self._wrong_now / self._wrong_initial
        return min(1.0, max(0.0, done))

    def next_event_after(self, T: float) -> float | None:
        """Next scheduled prepare time beyond ``T`` (idle-clock hook)."""
        if self.phase == IDLE and self.pending:
            t = self.pending[0].at
            if t > T:
                return t
        return None

    def note_failover(self, failover: dict) -> None:
        """A shard kill landed; if a handoff window is open, account
        its replayed segments as the resize's RPO exposure.  A kill
        processed in the same barrier the resize finished (the commit
        epoch still steps handoff-delivered walks) counts too."""
        rec = self.record
        if (
            rec is None
            and self._last_finished is not None
            and self._last_finished[0] == self.cl.epoch
        ):
            rec = self._last_finished[1]
        if rec is not None:
            rec["kills_during"] += 1
            rec["rpo_walks"] += int(
                failover.get("segments_discarded", 0)
            )

    # ---------------------------------------------------------------- tick

    def tick(self, T: float, hosts, open_now: list[bool]) -> None:
        """Advance the protocol one barrier step at cluster time ``T``."""
        if self.phase == IDLE:
            self._maybe_rebalance(T)
            if self.pending and self.pending[0].at <= T:
                self._prepare(self.pending.pop(0), T, hosts)
        if self.phase != IDLE:
            self._transfer_step(T, hosts, open_now)
        self._record_phase(T)

    def _record_phase(self, T: float) -> None:
        mx = self.cl.telemetry
        if mx is None:
            return
        value = PHASE_GAUGE[self.phase]
        if value != self._phase_recorded:
            self._phase_recorded = value
            mx.gauge("cluster_resize_phase").set(value, T)

    # ------------------------------------------------------------- prepare

    def _prepare(self, req: ResizeRequest, T: float, hosts) -> None:
        cl = self.cl
        old = cl.placement
        added: list[int] = []
        removed: list[int] = []
        if req.kind == "grow":
            added = cl.add_shards(req.arg, hosts)
            target = old.grown(added)
        elif req.kind == "shrink":
            sid = int(req.arg)
            if sid not in old.shard_ids:
                raise SimulationError(
                    f"resize: cannot shrink shard {sid}: not in live "
                    f"placement {old.shard_ids}"
                )
            target = old.shrunk(sid)
            removed = [sid]
        elif req.kind == "rebalance":
            bounds = req.bounds
            if bounds is None:
                loads = cl.health.window_loads(old.shard_ids)
                bounds = rebalanced_bounds(old.bounds, loads)
            if tuple(bounds) == tuple(old.bounds):
                return  # no-op recut; stay idle, no record
            target = old.rebalanced(bounds)
        else:  # pragma: no cover - config validation rejects earlier
            raise SimulationError(f"unknown resize kind {req.kind!r}")
        cl.auditor.check_placement(target)
        self.old = old
        self.target = target
        self.phase = TRANSFER
        self._transfer_epochs = 0
        self.record = {
            "kind": req.kind,
            "auto": req.auto,
            "requested_at": req.at,
            "prepare_t": T,
            "prepare_epoch": cl.epoch,
            "from_epoch": old.epoch,
            "to_epoch": target.epoch,
            "added": added,
            "removed": removed,
            "walks_handed_off": 0,
            "handoff_batches": 0,
            "deferred_batches": 0,
            "kills_during": 0,
            "rpo_walks": 0,
        }
        mx = cl.telemetry
        if mx is not None:
            mx.counter("cluster_resizes", kind=req.kind).inc(1.0, T)

    # ------------------------------------------------------------ transfer

    def _handoff_candidates(self, T: float):
        """Resident walks on target-foreign shards, plus the count of
        wrong-bound walks still in link flight (can't be redirected)."""
        target = self.target
        movable = []
        in_flight_wrong = 0
        for wid in sorted(self.cl.walks):
            w = self.cl.walks[wid]
            if w.state == "done":
                continue
            dst = int(target.shard_of(np.int64(w.vertex)))
            if dst == w.shard:
                continue
            if w.state == "migrating" and w.eligible_at > T:
                in_flight_wrong += 1  # redirected once it lands
            else:
                movable.append((w, dst))
        return movable, in_flight_wrong

    def _transfer_step(self, T: float, hosts, open_now: list[bool]) -> None:
        cl = self.cl
        rec = self.record
        movable, in_flight_wrong = self._handoff_candidates(T)
        self._wrong_now = len(movable) + in_flight_wrong
        if self._wrong_initial < 0:
            self._wrong_initial = self._wrong_now
        batches: dict[tuple[int, int], list] = {}
        for w, dst in movable:
            batches.setdefault((w.shard, dst), []).append(w)
        deferred = 0
        for (src, dst) in sorted(batches):
            # A breaker-open destination defers the batch — unless this
            # is a rollback, which must always make progress home.
            if self.phase == TRANSFER and dst < len(open_now) and open_now[dst]:
                deferred += 1
                continue
            batch = batches[(src, dst)]
            delivery = cl.link.transmit(T, len(batch), src=src, dst=dst)
            for w in batch:
                w.state = "migrating"
                w.shard = dst
                w.eligible_at = delivery
                w.handoffs += 1
            cl.handoffs_out[src] += len(batch)
            cl.handoffs_in[dst] += len(batch)
            self.handoff_walks += len(batch)
            self.handoff_batches += 1
            rec["walks_handed_off"] += len(batch)
            rec["handoff_batches"] += 1
            mx = cl.telemetry
            if mx is not None:
                mx.counter("cluster_handoff_walks").inc(float(len(batch)), T)
        if deferred:
            self.deferred_batches += deferred
            rec["deferred_batches"] += deferred
            mx = cl.telemetry
            if mx is not None:
                mx.counter("cluster_handoff_deferrals").inc(float(deferred), T)
        if deferred == 0 and in_flight_wrong == 0 and not batches:
            # Every walk already sits with (or is flying to) its target
            # owner: the barrier is clean — finish the protocol.
            if self.phase == TRANSFER:
                self._commit(T, hosts)
            else:
                self._finish_rollback(T, hosts)
            return
        self._transfer_epochs += 1
        # Rollback is exempt from the budget: it ignores breaker
        # deferrals and link deliveries are finite, so it always
        # terminates (max_epochs is the runaway backstop).
        if (
            self.phase == TRANSFER
            and self._transfer_epochs > self.ccfg.resize_transfer_budget_epochs
        ):
            self._abort(T)

    # ------------------------------------------------------- commit / abort

    def _commit(self, T: float, hosts) -> None:
        cl = self.cl
        rec = self.record
        departing = [s for s in self.old.shard_ids
                     if s not in self.target.shard_ids]
        cl.placement = self.target
        cl.auditor.check_placement(cl.placement)
        for sid in sorted(departing):
            cl.retire_shard(sid, hosts)
        rec.update(
            committed=True,
            commit_t=T,
            commit_epoch=cl.epoch,
            transfer_epochs=self._transfer_epochs,
            rto_time=T - rec["prepare_t"],
        )
        self._finish(rec, T)

    def _abort(self, T: float) -> None:
        """Budget exhausted: turn around and drain everything home."""
        rec = self.record
        rec.update(aborted=True, abort_t=T, abort_epoch=self.cl.epoch)
        self.aborts += 1
        # Shards the aborted grow added must be emptied, then removed.
        self._rollback_remove = sorted(
            s for s in self.target.shard_ids if s not in self.old.shard_ids
        )
        self.target = self.old  # route everything back where it was
        self.phase = ROLLBACK
        self._transfer_epochs = 0
        mx = self.cl.telemetry
        if mx is not None:
            mx.counter("cluster_resize_aborts").inc(1.0, T)

    def _finish_rollback(self, T: float, hosts) -> None:
        cl = self.cl
        rec = self.record
        for sid in self._rollback_remove:
            cl.retire_shard(sid, hosts)
        self._rollback_remove = []
        rec.update(
            committed=False,
            rolled_back_t=T,
            rollback_epochs=self._transfer_epochs,
        )
        # Committed placement was never swapped: the old map, same
        # epoch, is still authoritative — the clean abort guarantee.
        self._finish(rec, T)

    def _finish(self, rec: dict, T: float) -> None:
        self._last_finished = (self.cl.epoch, rec)
        self.records.append(rec)
        self.record = None
        self.target = None
        self.old = None
        self.phase = IDLE
        self._transfer_epochs = 0
        self._wrong_initial = -1
        self._wrong_now = 0
        self._cooldown_until_epoch = (
            self.cl.epoch + self.ccfg.rebalance_cooldown_epochs
        )

    # ----------------------------------------------------------- rebalance

    def _maybe_rebalance(self, T: float) -> None:
        ccfg = self.ccfg
        cl = self.cl
        if not ccfg.rebalance_enabled or cl.placement.mode != "range":
            return
        if cl.epoch == 0 or cl.epoch < self._cooldown_until_epoch:
            return
        if cl.epoch % ccfg.rebalance_check_epochs != 0:
            return
        loads = cl.health.window_loads(cl.placement.shard_ids)
        total = sum(loads)
        if total < ccfg.rebalance_min_walks:
            return
        mean = total / len(loads)
        if max(loads) < ccfg.rebalance_imbalance_ratio * mean:
            return
        bounds = rebalanced_bounds(cl.placement.bounds, loads)
        if tuple(bounds) == tuple(cl.placement.bounds):
            return
        self.rebalances += 1
        self._cooldown_until_epoch = cl.epoch + ccfg.rebalance_cooldown_epochs
        mx = cl.telemetry
        if mx is not None:
            mx.counter("cluster_rebalances").inc(1.0, T)
        self.pending.insert(
            0,
            ResizeRequest(at=T, kind="rebalance", bounds=tuple(bounds),
                          auto=True),
        )

    # --------------------------------------------------------------- report

    def stats(self) -> dict:
        records = list(self.records)
        if self.record is not None:
            records = records + [dict(self.record, unfinished=True)]
        rtos = [r["rto_time"] for r in records if "rto_time" in r]
        return {
            "resizes": records,
            "unfired": [
                [r.at, r.kind, r.arg] for r in self.pending
            ],
            "handoff": {
                "walks": self.handoff_walks,
                "batches": self.handoff_batches,
                "deferred_batches": self.deferred_batches,
                "aborts": self.aborts,
                "rebalances": self.rebalances,
                "rpo_walks": sum(r["rpo_walks"] for r in records),
                "rto": {
                    "count": len(rtos),
                    "max": float(max(rtos, default=0.0)),
                    "mean": float(sum(rtos) / len(rtos)) if rtos else 0.0,
                },
            },
        }
