"""Per-shard health and load tracking for the cluster router.

Each shard gets its own :class:`~repro.service.breaker.CircuitBreaker`
— the *same* class the single-device service uses — fed through a
:class:`ShardHealthProxy` that mirrors the engine-shaped attributes
(``fault_model`` counters, ``integrity.detected``) from the health
signals each epoch's :class:`~repro.cluster.shard.ShardStepResult`
carries back.  The proxy exists because in process-pool mode the
engine object lives in a worker; the coordinator polls the mirrored
counters instead, and serial mode uses the identical path so the two
execution modes cannot diverge.

Elastic membership adds two responsibilities: a trailing per-shard
*load window* (walk segments leased per epoch) that the load-driven
rebalance trigger reads, and shard lifecycle — :meth:`add_shard` for a
live grow, :meth:`retire` for a removal, which permanently silences
the departed shard's breaker and freezes its counters so stale state
cannot pollute reports or reroute decisions.
"""

from __future__ import annotations

from collections import deque
from types import SimpleNamespace

from ..service.breaker import CircuitBreaker

__all__ = ["ShardHealthProxy", "HealthBoard"]


class ShardHealthProxy:
    """Engine look-alike the reused circuit breaker polls."""

    def __init__(self):
        self.fault_model = SimpleNamespace(chip_failures=0, reads_exhausted=0)
        self.integrity = SimpleNamespace(detected=0)

    def update(self, health: dict) -> None:
        self.fault_model.chip_failures = int(health.get("chip_failures", 0))
        self.fault_model.reads_exhausted = int(health.get("reads_exhausted", 0))
        self.integrity.detected = int(health.get("corruption_detected", 0))


class HealthBoard:
    """Breakers + degradation + load bookkeeping for every shard.

    All per-shard sequences are indexed by *physical* shard id and only
    ever grow — a retired shard keeps its slot (frozen) so report and
    audit indexing stay stable across membership changes.
    """

    def __init__(self, svc_cfg, n_shards: int, *, load_window_epochs: int = 8):
        self._svc_cfg = svc_cfg
        self._window = max(1, int(load_window_epochs))
        self.proxies = [ShardHealthProxy() for _ in range(n_shards)]
        self.breakers = [CircuitBreaker(svc_cfg, p) for p in self.proxies]
        self.open_epochs = [0] * n_shards
        self.consecutive_open = [0] * n_shards
        self.reroutes = [0] * n_shards
        self.loads = [deque(maxlen=self._window) for _ in range(n_shards)]
        self.retired: set[int] = set()
        self.promotions: list[dict] = []

    @property
    def n_shards(self) -> int:
        return len(self.breakers)

    # ------------------------------------------------------------ lifecycle

    def add_shard(self) -> int:
        """Register a freshly-added shard; returns its physical id."""
        proxy = ShardHealthProxy()
        self.proxies.append(proxy)
        self.breakers.append(CircuitBreaker(self._svc_cfg, proxy))
        self.open_epochs.append(0)
        self.consecutive_open.append(0)
        self.reroutes.append(0)
        self.loads.append(deque(maxlen=self._window))
        return len(self.breakers) - 1

    def retire(self, shard_id: int) -> None:
        """A departed shard's health state is frozen, not polled: its
        breaker is permanently silenced, its load window cleared, so
        it can never trip, reroute, or skew a rebalance again."""
        self.retired.add(int(shard_id))
        self.breakers[shard_id].retire()
        self.consecutive_open[shard_id] = 0
        self.loads[shard_id].clear()

    # --------------------------------------------------------------- health

    def update(self, shard_id: int, health: dict) -> None:
        self.proxies[shard_id].update(health)

    def poll(self, now: float) -> list[bool]:
        """Breaker state per shard at cluster time ``now``; updates the
        consecutive-open counters the promotion policy watches.
        Retired shards report closed without touching any counter."""
        state = []
        for i, brk in enumerate(self.breakers):
            if i in self.retired:
                state.append(False)
                continue
            is_open = brk.is_open(now)
            if is_open:
                self.open_epochs[i] += 1
                self.consecutive_open[i] += 1
            else:
                self.consecutive_open[i] = 0
            state.append(is_open)
        return state

    def promote(self, shard_id: int, *, epoch: int, now: float) -> None:
        """Breaker-driven replica promotion: the fresh replica takes
        over, so the breaker's degradation baseline resets to the
        current counters and the circuit closes."""
        brk = self.breakers[shard_id]
        proxy = self.proxies[shard_id]
        brk.open_until = 0.0
        brk._seen_chip_failures = proxy.fault_model.chip_failures
        brk._seen_exhausted = proxy.fault_model.reads_exhausted
        brk._seen_corruption = proxy.integrity.detected
        self.consecutive_open[shard_id] = 0
        self.promotions.append(
            {"kind": "breaker", "shard": shard_id, "epoch": epoch, "t": now}
        )

    # ----------------------------------------------------------------- load

    def note_loads(self, leased: list[int]) -> None:
        """Record one epoch's leased-segment count per shard (the
        rebalance trigger's trailing window).  ``leased`` is indexed by
        physical id and must cover every registered shard."""
        for sid, n in enumerate(leased):
            if sid not in self.retired:
                self.loads[sid].append(int(n))

    def window_load(self, shard_id: int) -> int:
        return sum(self.loads[shard_id])

    def window_loads(self, shard_ids) -> list[int]:
        """Trailing-window loads for ``shard_ids``, in their order
        (slot order when called with a placement's id table)."""
        return [self.window_load(sid) for sid in shard_ids]

    # ---------------------------------------------------------------- report

    def stats(self) -> dict:
        # Keys kept identical to the pre-elastic board: retired/load
        # details live in the report's elastic-only ``membership``
        # section so no-resize reports stay byte-identical.
        return {
            "breaker_trips": [b.trips for b in self.breakers],
            "open_epochs": list(self.open_epochs),
            "reroutes": list(self.reroutes),
            "breaker_promotions": len(self.promotions),
        }
