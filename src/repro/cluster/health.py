"""Per-shard health tracking for the cluster router.

Each shard gets its own :class:`~repro.service.breaker.CircuitBreaker`
— the *same* class the single-device service uses — fed through a
:class:`ShardHealthProxy` that mirrors the engine-shaped attributes
(``fault_model`` counters, ``integrity.detected``) from the health
signals each epoch's :class:`~repro.cluster.shard.ShardStepResult`
carries back.  The proxy exists because in process-pool mode the
engine object lives in a worker; the coordinator polls the mirrored
counters instead, and serial mode uses the identical path so the two
execution modes cannot diverge.
"""

from __future__ import annotations

from types import SimpleNamespace

from ..service.breaker import CircuitBreaker

__all__ = ["ShardHealthProxy", "HealthBoard"]


class ShardHealthProxy:
    """Engine look-alike the reused circuit breaker polls."""

    def __init__(self):
        self.fault_model = SimpleNamespace(chip_failures=0, reads_exhausted=0)
        self.integrity = SimpleNamespace(detected=0)

    def update(self, health: dict) -> None:
        self.fault_model.chip_failures = int(health.get("chip_failures", 0))
        self.fault_model.reads_exhausted = int(health.get("reads_exhausted", 0))
        self.integrity.detected = int(health.get("corruption_detected", 0))


class HealthBoard:
    """Breakers + degradation bookkeeping for every shard."""

    def __init__(self, svc_cfg, n_shards: int):
        self.proxies = [ShardHealthProxy() for _ in range(n_shards)]
        self.breakers = [CircuitBreaker(svc_cfg, p) for p in self.proxies]
        self.open_epochs = [0] * n_shards
        self.consecutive_open = [0] * n_shards
        self.reroutes = [0] * n_shards
        self.promotions: list[dict] = []

    def update(self, shard_id: int, health: dict) -> None:
        self.proxies[shard_id].update(health)

    def poll(self, now: float) -> list[bool]:
        """Breaker state per shard at cluster time ``now``; updates the
        consecutive-open counters the promotion policy watches."""
        state = []
        for i, brk in enumerate(self.breakers):
            is_open = brk.is_open(now)
            if is_open:
                self.open_epochs[i] += 1
                self.consecutive_open[i] += 1
            else:
                self.consecutive_open[i] = 0
            state.append(is_open)
        return state

    def promote(self, shard_id: int, *, epoch: int, now: float) -> None:
        """Breaker-driven replica promotion: the fresh replica takes
        over, so the breaker's degradation baseline resets to the
        current counters and the circuit closes."""
        brk = self.breakers[shard_id]
        proxy = self.proxies[shard_id]
        brk.open_until = 0.0
        brk._seen_chip_failures = proxy.fault_model.chip_failures
        brk._seen_exhausted = proxy.fault_model.reads_exhausted
        brk._seen_corruption = proxy.integrity.detected
        self.consecutive_open[shard_id] = 0
        self.promotions.append(
            {"kind": "breaker", "shard": shard_id, "epoch": epoch, "t": now}
        )

    def stats(self) -> dict:
        return {
            "breaker_trips": [b.trips for b in self.breakers],
            "open_epochs": list(self.open_epochs),
            "reroutes": list(self.reroutes),
            "breaker_promotions": len(self.promotions),
        }
