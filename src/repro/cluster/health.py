"""Per-shard health and load tracking for the cluster router.

Each shard gets its own :class:`~repro.service.breaker.CircuitBreaker`
— the *same* class the single-device service uses — fed through a
:class:`ShardHealthProxy` that mirrors the engine-shaped attributes
(``fault_model`` counters, ``integrity.detected``) from the health
signals each epoch's :class:`~repro.cluster.shard.ShardStepResult`
carries back.  The proxy exists because in process-pool mode the
engine object lives in a worker; the coordinator polls the mirrored
counters instead, and serial mode uses the identical path so the two
execution modes cannot diverge.

Elastic membership adds two responsibilities: a trailing per-shard
*load window* (walk segments leased per epoch) that the load-driven
rebalance trigger reads, and shard lifecycle — :meth:`add_shard` for a
live grow, :meth:`retire` for a removal, which permanently silences
the departed shard's breaker and freezes its counters so stale state
cannot pollute reports or reroute decisions.
"""

from __future__ import annotations

from collections import deque
from types import SimpleNamespace

from ..service.breaker import CircuitBreaker

__all__ = ["ShardHealthProxy", "HealthBoard"]


class ShardHealthProxy:
    """Engine look-alike the reused circuit breaker polls."""

    def __init__(self):
        self.fault_model = SimpleNamespace(chip_failures=0, reads_exhausted=0)
        self.integrity = SimpleNamespace(detected=0)

    def update(self, health: dict) -> None:
        self.fault_model.chip_failures = int(health.get("chip_failures", 0))
        self.fault_model.reads_exhausted = int(health.get("reads_exhausted", 0))
        self.integrity.detected = int(health.get("corruption_detected", 0))


class HealthBoard:
    """Breakers + degradation + load bookkeeping for every shard.

    All per-shard sequences are indexed by *physical* shard id and only
    ever grow — a retired shard keeps its slot (frozen) so report and
    audit indexing stay stable across membership changes.
    """

    def __init__(self, svc_cfg, n_shards: int, *, load_window_epochs: int = 8,
                 straggler_window_epochs: int = 0,
                 straggler_min_epochs: int = 3,
                 straggler_median_multiple: float = 3.0):
        self._svc_cfg = svc_cfg
        self._window = max(1, int(load_window_epochs))
        self.proxies = [ShardHealthProxy() for _ in range(n_shards)]
        self.breakers = [CircuitBreaker(svc_cfg, p) for p in self.proxies]
        self.open_epochs = [0] * n_shards
        self.consecutive_open = [0] * n_shards
        self.reroutes = [0] * n_shards
        self.loads = [deque(maxlen=self._window) for _ in range(n_shards)]
        self.retired: set[int] = set()
        self.promotions: list[dict] = []
        # Straggler detection (0 window = off, zero extra state touched
        # on the legacy path).  ``suspect`` is a third health state
        # between closed and breaker-open: the shard still serves, but
        # it has been slow relative to its peers for a trailing window.
        self._straggler_window = max(0, int(straggler_window_epochs))
        self._straggler_min = max(1, int(straggler_min_epochs))
        self._straggler_multiple = float(straggler_median_multiple)
        self.latencies = [
            deque(maxlen=self._straggler_window or 1) for _ in range(n_shards)
        ]
        self.suspect = [False] * n_shards
        self.suspect_epochs = [0] * n_shards
        self.suspect_transitions: list[dict] = []

    @property
    def n_shards(self) -> int:
        return len(self.breakers)

    # ------------------------------------------------------------ lifecycle

    def add_shard(self) -> int:
        """Register a freshly-added shard; returns its physical id."""
        proxy = ShardHealthProxy()
        self.proxies.append(proxy)
        self.breakers.append(CircuitBreaker(self._svc_cfg, proxy))
        self.open_epochs.append(0)
        self.consecutive_open.append(0)
        self.reroutes.append(0)
        self.loads.append(deque(maxlen=self._window))
        self.latencies.append(deque(maxlen=self._straggler_window or 1))
        self.suspect.append(False)
        self.suspect_epochs.append(0)
        return len(self.breakers) - 1

    def retire(self, shard_id: int) -> None:
        """A departed shard's health state is frozen, not polled: its
        breaker is permanently silenced, its load window cleared, so
        it can never trip, reroute, or skew a rebalance again."""
        self.retired.add(int(shard_id))
        self.breakers[shard_id].retire()
        self.consecutive_open[shard_id] = 0
        self.loads[shard_id].clear()
        self.latencies[shard_id].clear()
        self.suspect[shard_id] = False

    # --------------------------------------------------------------- health

    def update(self, shard_id: int, health: dict) -> None:
        self.proxies[shard_id].update(health)

    def poll(self, now: float) -> list[bool]:
        """Breaker state per shard at cluster time ``now``; updates the
        consecutive-open counters the promotion policy watches.
        Retired shards report closed without touching any counter."""
        state = []
        for i, brk in enumerate(self.breakers):
            if i in self.retired:
                state.append(False)
                continue
            is_open = brk.is_open(now)
            if is_open:
                self.open_epochs[i] += 1
                self.consecutive_open[i] += 1
            else:
                self.consecutive_open[i] = 0
            state.append(is_open)
        return state

    def promote(self, shard_id: int, *, epoch: int, now: float) -> None:
        """Breaker-driven replica promotion: the fresh replica takes
        over, so the breaker's degradation baseline resets to the
        current counters and the circuit closes."""
        brk = self.breakers[shard_id]
        proxy = self.proxies[shard_id]
        brk.open_until = 0.0
        brk._seen_chip_failures = proxy.fault_model.chip_failures
        brk._seen_exhausted = proxy.fault_model.reads_exhausted
        brk._seen_corruption = proxy.integrity.detected
        self.consecutive_open[shard_id] = 0
        self.promotions.append(
            {"kind": "breaker", "shard": shard_id, "epoch": epoch, "t": now}
        )

    # ----------------------------------------------------------------- load

    def note_loads(self, leased: list[int]) -> None:
        """Record one epoch's leased-segment count per shard (the
        rebalance trigger's trailing window).  ``leased`` is indexed by
        physical id and must cover every registered shard."""
        for sid, n in enumerate(leased):
            if sid not in self.retired:
                self.loads[sid].append(int(n))

    def window_load(self, shard_id: int) -> int:
        return sum(self.loads[shard_id])

    def window_loads(self, shard_ids) -> list[int]:
        """Trailing-window loads for ``shard_ids``, in their order
        (slot order when called with a placement's id table)."""
        return [self.window_load(sid) for sid in shard_ids]

    # ----------------------------------------------------------- stragglers

    @staticmethod
    def _median(values: list[float]) -> float:
        vals = sorted(values)
        n = len(vals)
        mid = n // 2
        return vals[mid] if n % 2 else 0.5 * (vals[mid - 1] + vals[mid])

    def note_epoch_latency(self, shard_id: int, duration: float,
                           leased: int) -> None:
        """Record one epoch's normalized step latency for a shard
        (summed per-walk service time divided by the walks served, so
        a shard that was simply handed more work is not mistaken for a
        slow one).  Only epochs where the shard actually completed
        work are sampled."""
        if self._straggler_window <= 0 or shard_id in self.retired:
            return
        if leased <= 0:
            return
        self.latencies[shard_id].append(float(duration) / float(leased))

    def refresh_suspects(self, *, epoch: int, now: float) -> list[bool]:
        """Recompute the suspect flag per shard from the trailing
        latency windows: a shard is suspect when its window median is at
        least ``straggler_median_multiple`` times the median of the
        *other* live shards' window medians.  Deterministic — pure
        function of the recorded durations, no wall clock, no sampling.
        """
        if self._straggler_window <= 0:
            return list(self.suspect)
        medians: dict[int, float] = {}
        for sid, window in enumerate(self.latencies):
            if sid in self.retired:
                continue
            if len(window) >= self._straggler_min:
                medians[sid] = self._median(list(window))
        for sid in range(len(self.suspect)):
            if sid in self.retired:
                continue
            own = medians.get(sid)
            peers = [m for other, m in medians.items() if other != sid]
            was = self.suspect[sid]
            if own is None or not peers:
                is_suspect = False
            else:
                is_suspect = own >= self._straggler_multiple * self._median(peers)
            if is_suspect != was:
                self.suspect_transitions.append({
                    "shard": sid,
                    "suspect": is_suspect,
                    "epoch": int(epoch),
                    "t": float(now),
                })
            self.suspect[sid] = is_suspect
            if is_suspect:
                self.suspect_epochs[sid] += 1
        return list(self.suspect)

    def straggler_pressure(self) -> float:
        """Fraction of live shards currently suspect (the brownout
        controller's input signal)."""
        live = [sid for sid in range(len(self.suspect))
                if sid not in self.retired]
        if not live:
            return 0.0
        return sum(1 for sid in live if self.suspect[sid]) / len(live)

    # ---------------------------------------------------------------- report

    def stats(self) -> dict:
        # Keys kept identical to the pre-elastic board: retired/load
        # details live in the report's elastic-only ``membership``
        # section, straggler keys appear only with detection on, so
        # legacy reports stay byte-identical.
        out = {
            "breaker_trips": [b.trips for b in self.breakers],
            "open_epochs": list(self.open_epochs),
            "reroutes": list(self.reroutes),
            "breaker_promotions": len(self.promotions),
        }
        if self._straggler_window > 0:
            out["suspect_epochs"] = list(self.suspect_epochs)
            out["suspect_transitions"] = len(self.suspect_transitions)
        return out
