"""Shard execution hosts: in-process or across a process pool.

The coordinator talks to shards through one interface
(:class:`ShardHosts`) whether they live in this process (``jobs <= 1``)
or in persistent worker processes (``jobs > 1``, shards assigned
round-robin).  Workers run the *same* :class:`ShardRuntime` code the
serial path runs, and every epoch's results are collected keyed by
shard id before the coordinator proceeds — so serial and process-pool
cluster runs are byte-identical, the same equivalence the campaign
pool guarantees per point (and CI gates the same way).

Per-shard seeds are sha256-derived by the coordinator before hosts are
built, so seeding is independent of worker assignment.
"""

from __future__ import annotations

import traceback

from ..common.errors import SimulationError
from ..parallel.campaign import _default_start_method
from .shard import ShardRuntime, ShardStepCommand

__all__ = ["ShardHosts"]


def _build_runtime(params: dict) -> ShardRuntime:
    return ShardRuntime(
        params["shard_id"],
        params["graph"],
        params["cfg"],
        params["seed"],
        spec_length=params["spec_length"],
        expected_walks=params["expected_walks"],
        telemetry=params.get("telemetry"),
    )


def _worker_main(conn, shard_params: list[dict]) -> None:
    """Worker loop: owns a subset of shard runtimes for the whole run."""
    runtimes = {p["shard_id"]: _build_runtime(p) for p in shard_params}
    while True:
        try:
            op, payload = conn.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        try:
            if op == "setup":
                out = [(sid, rt.setup()) for sid, rt in sorted(runtimes.items())]
            elif op == "step":
                out = [(sid, runtimes[sid].step(cmd)) for sid, cmd in payload]
            elif op == "add":
                sid = payload["shard_id"]
                runtimes[sid] = _build_runtime(payload)
                out = [(sid, runtimes[sid].setup())]
            elif op == "remove":
                out = [(payload, runtimes.pop(payload).finalize())]
            elif op == "finalize":
                out = [
                    (sid, rt.finalize()) for sid, rt in sorted(runtimes.items())
                ]
            elif op == "close":
                conn.send(("ok", None))
                return
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown shard-host op {op!r}")
            conn.send(("ok", out))
        except BaseException:
            conn.send(("error", traceback.format_exc()))


class ShardHosts:
    """Uniform front over local or pooled shard runtimes."""

    def __init__(self, shard_params: list[dict], *, jobs: int = 1,
                 start_method: str | None = None):
        self.n_shards = len(shard_params)
        self.jobs = max(1, min(int(jobs), self.n_shards))
        self._local: dict[int, ShardRuntime] = {}
        self._conns: list = []
        self._procs: list = []
        #: shard id -> owning worker index (round-robin).
        self._worker_of: dict[int, int] = {}
        if self.jobs <= 1:
            self._local = {
                p["shard_id"]: _build_runtime(p) for p in shard_params
            }
            self.start_method = None
            return
        import multiprocessing

        self.start_method = start_method or _default_start_method()
        mpc = multiprocessing.get_context(self.start_method)
        groups: list[list[dict]] = [[] for _ in range(self.jobs)]
        for i, p in enumerate(shard_params):
            groups[i % self.jobs].append(p)
            self._worker_of[p["shard_id"]] = i % self.jobs
        for group in groups:
            parent, child = mpc.Pipe()
            proc = mpc.Process(
                target=_worker_main, args=(child, group), daemon=True
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    # ---------------------------------------------------------------- helpers

    def _broadcast(self, op: str, payloads=None) -> dict:
        """Send ``op`` to every worker, gather ``{shard_id: value}``."""
        for w, conn in enumerate(self._conns):
            conn.send((op, None if payloads is None else payloads[w]))
        out: dict = {}
        for conn in self._conns:
            status, value = conn.recv()
            if status == "error":
                raise SimulationError(f"shard worker failed:\n{value}")
            if value is not None:
                out.update(dict(value))
        return out

    def _call(self, worker: int, op: str, payload) -> dict:
        """Send ``op`` to one worker, gather ``{shard_id: value}``."""
        conn = self._conns[worker]
        conn.send((op, payload))
        status, value = conn.recv()
        if status == "error":
            raise SimulationError(f"shard worker failed:\n{value}")
        return dict(value)

    # -------------------------------------------------------------- lifecycle

    def setup(self) -> dict[int, float]:
        """Open every shard's session; returns shard id -> ready time."""
        if self._local:
            return {sid: rt.setup() for sid, rt in sorted(self._local.items())}
        return self._broadcast("setup")

    def step(self, cmds: dict[int, ShardStepCommand]) -> dict:
        """Run one epoch on the shards named in ``cmds`` (concurrently
        across workers when pooled); returns shard id -> result."""
        if self._local:
            return {sid: self._local[sid].step(cmd) for sid, cmd in cmds.items()}
        payloads: list[list] = [[] for _ in self._conns]
        for sid, cmd in cmds.items():
            payloads[self._worker_of[sid]].append((sid, cmd))
        # Workers without commands this epoch get an empty step list.
        return self._broadcast("step", payloads)

    def add_shard(self, params: dict) -> float:
        """Live grow: build + set up one new shard runtime (in-process,
        or on the worker its physical id hashes to); returns its ready
        time on the shard's local clock."""
        sid = params["shard_id"]
        self.n_shards += 1
        if not self._conns:
            rt = _build_runtime(params)
            self._local[sid] = rt
            return rt.setup()
        worker = sid % self.jobs
        self._worker_of[sid] = worker
        return self._call(worker, "add", params)[sid]

    def remove_shard(self, shard_id: int) -> dict:
        """Live removal: finalize and drop one shard runtime; returns
        its engine run report."""
        sid = int(shard_id)
        self.n_shards -= 1
        if not self._conns:
            return self._local.pop(sid).finalize()
        worker = self._worker_of.pop(sid)
        return self._call(worker, "remove", sid)[sid]

    def finalize(self) -> dict[int, dict]:
        """Close sessions; returns shard id -> engine run report."""
        if self._local:
            return {
                sid: rt.finalize() for sid, rt in sorted(self._local.items())
            }
        return self._broadcast("finalize")

    def close(self) -> None:
        if self._local:
            self._local = {}
            return
        for conn in self._conns:
            try:
                conn.send(("close", None))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):  # pragma: no cover
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._conns = []
        self._procs = []
