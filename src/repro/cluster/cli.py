"""Cluster CLI: one seeded kill-a-shard chaos scenario.

::

    python -m repro.cluster --quick --shards 4 --jobs 4
    python -m repro.cluster --kill 60e-6:1 --kill 140e-6:2 --loss 0.05 \\
        --verify-identity --verify-baseline --out cluster_report.json
    python -m repro.cluster --quick --shards 2 --placement range \\
        --grow 50e-6:2 --shrink 250e-6:0 --kill 60e-6:2 --verify-identity
    python -m repro.cluster --quick --no-kills --slow-faults --hedging

Runs an open-loop query stream against an N-shard cluster while the
kill schedule power-fails shards mid-epoch (each recovers by replica
promotion — checkpoint restore + walk-journal replay) and the network
link drops/corrupts migration messages.  The online cluster auditor
runs at every epoch barrier; a violation exits nonzero with the
violation list.  ``--verify-identity`` re-runs the scenario serially
and across a process pool and gates on byte-identical reports;
``--verify-baseline`` re-runs without kills and gates on the report
matching outside the ``cluster`` section.  The CI chaos-soak job runs
all three gates.

Elastic membership: ``--grow TIME:N`` adds N shards live at TIME,
``--shrink TIME:SHARD`` removes a shard live (its resident walks hand
off first), ``--rebalance`` enables the load-driven range recut
trigger.  Resizes run the prepare → transfer → commit protocol with
walk conservation audited at every barrier.

Gray failures: ``--slow-faults`` degrades shard 1 (override with
``--slow-shard``) with a sustained seeded slow-fault model — correct
answers, stretched latencies, no breaker signal; ``--hedging``
switches on the resilience layer (straggler detection, hedged walk
leases with first-completion-wins, deadline propagation, per-query
retry budgets) that is expected to recover most of the p99 damage.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def _canonical(report: dict, *, drop: tuple[str, ...] = (),
               shard_drop: tuple[str, ...] = ()) -> str:
    slim = {k: v for k, v in report.items() if k not in drop}
    if shard_drop and "shards" in slim:
        slim["shards"] = [
            {k: v for k, v in s.items() if k not in shard_drop}
            for s in slim["shards"]
        ]
    return json.dumps(slim, sort_keys=True)


def _parse_kill(text: str) -> tuple[float, int]:
    try:
        t, shard = text.split(":")
        return float(t), int(shard)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected TIME:SHARD (e.g. 60e-6:1), got {text!r}"
        ) from None


def _parse_resize(kind: str):
    def parse(text: str) -> tuple[float, str, int]:
        try:
            t, arg = text.split(":")
            return float(t), kind, int(arg)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected TIME:{'COUNT' if kind == 'grow' else 'SHARD'} "
                f"(e.g. 50e-6:2), got {text!r}"
            ) from None

    return parse


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--dataset", default="TT", help="dataset name (default: TT)")
    parser.add_argument("--shards", type=int, default=4,
                        help="number of FlashWalker shards (default: 4)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes hosting shards (default: 1, serial)")
    parser.add_argument("--requests", type=int, default=12,
                        help="number of open-loop queries (default: 12)")
    parser.add_argument("--rate", type=float, default=20e3,
                        help="mean arrival rate, queries/sec (default: 20000)")
    parser.add_argument("--seed", type=int, default=3, help="root seed")
    parser.add_argument("--policy", default="reject",
                        choices=("reject", "shed-oldest", "token-bucket"),
                        help="admission policy (default: reject)")
    parser.add_argument("--kill", type=_parse_kill, action="append",
                        default=None, metavar="TIME:SHARD",
                        help="kill SHARD at cluster TIME (repeatable; "
                             "default: 60e-6:1 and 140e-6:2)")
    parser.add_argument("--no-kills", action="store_true",
                        help="disable the kill schedule")
    parser.add_argument("--placement", default="hash",
                        choices=("hash", "range"),
                        help="vertex placement mode (default: hash)")
    parser.add_argument("--grow", type=_parse_resize("grow"),
                        action="append", default=None, metavar="TIME:COUNT",
                        help="add COUNT shards live at cluster TIME "
                             "(repeatable)")
    parser.add_argument("--shrink", type=_parse_resize("shrink"),
                        action="append", default=None, metavar="TIME:SHARD",
                        help="remove SHARD live at cluster TIME (repeatable)")
    parser.add_argument("--rebalance", action="store_true",
                        help="enable the load-driven range rebalance "
                             "trigger (requires --placement range)")
    parser.add_argument("--slow-faults", action="store_true",
                        help="degrade shard 1's engine with a sustained "
                             "slow-fault model (gray failure: correct but "
                             "slow, no fault counter moves)")
    parser.add_argument("--slow-shard", type=int, action="append",
                        default=None, metavar="SHARD",
                        help="shard(s) to degrade with --slow-faults "
                             "(repeatable; default: 1)")
    parser.add_argument("--slow-factor", type=float, default=6.0,
                        help="slow-fault latency multiplier (default: 6.0)")
    parser.add_argument("--hedging", action="store_true",
                        help="enable the gray-resilience layer: straggler "
                             "detection, hedged walk leases, deadline "
                             "propagation, per-query retry budgets")
    parser.add_argument("--loss", type=float, default=0.05,
                        help="migration-link loss probability (default: 0.05)")
    parser.add_argument("--corrupt", type=float, default=0.02,
                        help="migration-link corruption probability (default: 0.02)")
    parser.add_argument("--quick", action="store_true",
                        help="scale the dataset down (CI-sized run)")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable deterministic metrics + alert rules "
                             "(router and per-shard engines)")
    parser.add_argument("--verify-identity", action="store_true",
                        help="also run serial AND pooled; fail unless the "
                             "reports are byte-identical")
    parser.add_argument("--verify-baseline", action="store_true",
                        help="also run without kills; fail unless the report "
                             "matches outside the 'cluster' section")
    parser.add_argument("--out", default=None,
                        help="write the cluster report JSON here")
    args = parser.parse_args(argv)

    # Imports deferred so --help works in stripped environments.
    from ..common.errors import InvariantViolation
    from ..experiments.harness import ExperimentContext
    from .campaign import (
        DEFAULT_KILLS,
        GRAY_DEFAULTS,
        run_scenario,
        sustained_slow_faults,
    )

    ctx = (
        ExperimentContext.quick(seed=args.seed)
        if args.quick
        else ExperimentContext(seed=args.seed)
    )
    kills = () if args.no_kills else tuple(args.kill or DEFAULT_KILLS)
    resizes = tuple(sorted(
        (args.grow or []) + (args.shrink or []), key=lambda r: r[0]
    ))
    slow_shards = (
        tuple(args.slow_shard or (1,)) if args.slow_faults else ()
    )
    slow = (
        sustained_slow_faults(factor=args.slow_factor)
        if args.slow_faults
        else None
    )
    gray = dict(GRAY_DEFAULTS) if args.hedging else None

    def scenario(*, jobs: int, kills=kills):
        return run_scenario(
            ctx,
            args.dataset,
            n_shards=args.shards,
            n_requests=args.requests,
            rate_qps=args.rate,
            kills=kills,
            loss=args.loss,
            corrupt=args.corrupt,
            policy=args.policy,
            jobs=jobs,
            telemetry=args.telemetry,
            placement=args.placement,
            resizes=resizes,
            rebalance=args.rebalance,
            slow_shards=slow_shards,
            slow=slow,
            gray=gray,
        )

    try:
        outcome = scenario(jobs=args.jobs)
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION [{exc.context}] at t={exc.at:.6g}s:",
              file=sys.stderr)
        for v in exc.violations:
            print(f"  - {v}", file=sys.stderr)
        print(f"state: {json.dumps(exc.state, sort_keys=True, default=str)}",
              file=sys.stderr)
        return 2

    report = outcome.report
    svc, cluster = report["service"], report["cluster"]
    req, lat = svc["requests"], svc["latency"]
    print(
        f"{args.dataset} shards={args.shards} jobs={report['jobs']} "
        f"kills={len(cluster['failovers'])}: {req['arrivals']} arrivals -> "
        f"{req['ok']} ok, {req['timed_out']} timed out, {req['shed']} shed"
    )
    print(
        f"walks created={svc['walks']['created']} done={svc['walks']['done']} "
        f"migrations={cluster['migrations']['total']} "
        f"(mean {cluster['migrations']['mean_per_walk']:.2f}/walk)"
    )
    link = cluster["link"]
    print(
        f"link: {link['messages']} messages, {link['losses']} lost, "
        f"{link['corruptions']} corrupted, {link['retransmits']} retransmits, "
        f"{link['escalations']} escalations"
    )
    rto = cluster["rto"]
    print(
        f"failovers={rto['count']} rto_max={rto['max'] * 1e3:.3f}ms "
        f"p99={lat['p99'] * 1e3:.3f}ms  audits={cluster['audit']['audits']} "
        f"violations={cluster['audit']['violations']}"
    )
    if "gray" in cluster:
        gray_s = cluster["gray"]
        hedge = gray_s.get("hedging", {})
        straggle = gray_s.get("stragglers", {})
        print(
            f"gray: suspect_epochs={straggle.get('suspect_epochs')} "
            f"hedges={hedge.get('issued', 0)} "
            f"(wins primary={hedge.get('wins_primary', 0)} "
            f"hedge={hedge.get('wins_hedge', 0)}, "
            f"wasted_work_rate={hedge.get('wasted_work_rate', 0.0):.3f}) "
            f"sacrificed={gray_s['walks_sacrificed']} "
            f"budget_exhausted={gray_s['retry_budget_exhausted']}"
        )
    if "handoff" in cluster:
        ho, mem = cluster["handoff"], cluster["membership"]
        committed = sum(1 for r in cluster["resizes"] if r.get("committed"))
        print(
            f"resizes={len(cluster['resizes'])} committed={committed} "
            f"aborted={ho['aborts']} live={mem['live_shards']} "
            f"handoff_walks={ho['walks']} deferred={ho['deferred_batches']} "
            f"rpo_walks={ho['rpo_walks']} "
            f"resize_rto_max={ho['rto']['max'] * 1e3:.3f}ms"
        )

    rc = 0
    if args.verify_identity:
        serial = report if args.jobs <= 1 else scenario(jobs=1).report
        pooled = (
            report
            if args.jobs > 1
            else scenario(jobs=min(args.shards, 4)).report
        )
        if _canonical(serial, drop=("jobs",)) == _canonical(pooled, drop=("jobs",)):
            print("identity: serial and pooled reports are byte-identical")
        else:
            print("IDENTITY FAILURE: serial vs pooled reports differ",
                  file=sys.stderr)
            rc = 3
    if args.verify_baseline and kills:
        baseline = scenario(jobs=args.jobs, kills=()).report
        # A promoted replica's monitoring restarts from the restore
        # point, so killed-run shard telemetry legitimately differs
        # from the uninterrupted baseline; the walk results must not.
        shard_drop = ("telemetry",) if args.telemetry else ()
        if _canonical(report, drop=("cluster",), shard_drop=shard_drop) == \
                _canonical(baseline, drop=("cluster",), shard_drop=shard_drop):
            print("baseline: killed run matches uninterrupted run outside "
                  "the cluster section")
        else:
            print("BASELINE FAILURE: killed run diverged from the "
                  "uninterrupted baseline", file=sys.stderr)
            rc = 4

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote report to {args.out}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
