"""Vertex -> shard placement maps.

Two modes, both pure functions of ``(vertex, n_shards, n_vertices)`` so
the router, the auditor, and every shard agree on ownership without
any shared state:

* ``hash`` — consistent hashing via a splitmix64 finalizer.  Spreads
  hot vertices uniformly; adjacent vertices land on different shards,
  so most hops migrate (worst-case traffic, best balance).
* ``range`` — partition-aware contiguous ranges.  The CSR partitioner
  numbers subgraph blocks in vertex-ID order, so equal ID ranges align
  with block locality: hops inside a community usually stay home
  (best traffic, load follows the graph's skew).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ConfigError

__all__ = ["VertexPlacement"]

_U64 = np.uint64


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (public-domain constants)."""
    z = x.astype(_U64, copy=True)
    with np.errstate(over="ignore"):
        z += _U64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        z ^= z >> _U64(31)
    return z


class VertexPlacement:
    """Deterministic ownership map over one graph's vertex space."""

    def __init__(self, mode: str, n_shards: int, n_vertices: int):
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        if n_vertices < 1:
            raise ConfigError(f"n_vertices must be >= 1, got {n_vertices}")
        if mode not in ("hash", "range"):
            raise ConfigError(f"unknown placement mode {mode!r}")
        self.mode = mode
        self.n_shards = int(n_shards)
        self.n_vertices = int(n_vertices)

    def shard_of(self, vertices) -> np.ndarray:
        """Owner shard id(s) for ``vertices`` (scalar or array)."""
        v = np.asarray(vertices, dtype=np.int64)
        if v.size and (int(v.min()) < 0 or int(v.max()) >= self.n_vertices):
            raise ConfigError(
                f"vertex id out of range [0, {self.n_vertices}) in placement"
            )
        if self.mode == "hash":
            owners = _splitmix64(v) % _U64(self.n_shards)
            return owners.astype(np.int64)
        # range: contiguous vertex-ID spans, block-locality preserving.
        return (v * self.n_shards) // self.n_vertices

    def counts(self, vertices) -> np.ndarray:
        """Histogram of owners over ``vertices`` (length ``n_shards``)."""
        owners = self.shard_of(vertices)
        return np.bincount(owners, minlength=self.n_shards)
