"""Epoch-versioned vertex -> shard placement maps.

Two modes, both pure functions of the placement's *frozen* parameters
(mode, cut points, shard-id table) so the router, the auditor, and
every shard agree on ownership without any shared mutable state:

* ``hash`` — consistent hashing via a splitmix64 finalizer.  Spreads
  hot vertices uniformly; adjacent vertices land on different shards,
  so most hops migrate (worst-case traffic, best balance).
* ``range`` — partition-aware contiguous ranges.  The CSR partitioner
  numbers subgraph blocks in vertex-ID order, so equal ID ranges align
  with block locality: hops inside a community usually stay home
  (best traffic, load follows the graph's skew).

Elastic membership (PR 9) versions the map: every placement carries an
``epoch`` counter, and the derived constructors (:meth:`grown`,
:meth:`shrunk`, :meth:`rebalanced`) return an ``epoch + 1`` placement
over an explicit ``shard_ids`` table — physical shard ids per placement
*slot* — so live shard sets need not be contiguous after a removal.
Range mode stores its cut points as Python-int ``bounds`` and resolves
owners with a ``searchsorted`` over them: that is what makes weighted
(load-driven) rebalancing expressible, and it also removes the int64
overflow the old ``(v * n_shards) // n_vertices`` formula hit once
``n_vertices * n_shards`` exceeded 2**63.  The default even-split
bounds reproduce that legacy formula bit-for-bit for every in-range
vertex (``bounds[s] = ceil(s * n_vertices / n_shards)``).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ConfigError

__all__ = ["VertexPlacement", "even_bounds"]

_U64 = np.uint64


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (public-domain constants)."""
    z = x.astype(_U64, copy=True)
    with np.errstate(over="ignore"):
        z += _U64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        z ^= z >> _U64(31)
    return z


def even_bounds(n_shards: int, n_vertices: int) -> tuple[int, ...]:
    """Even-split range cut points, computed with exact Python ints.

    ``bounds[s] = ceil(s * n_vertices / n_shards)``: the smallest vertex
    the legacy ``(v * n_shards) // n_vertices`` formula assigned to slot
    ``s``, so searchsorted over these bounds matches it exactly.
    """
    return tuple(
        -(-s * n_vertices // n_shards) for s in range(n_shards)
    ) + (n_vertices,)


class VertexPlacement:
    """Deterministic, versioned ownership map over one vertex space.

    ``shard_ids[slot]`` maps a placement slot (what the hash / range
    arithmetic produces) to a *physical* shard id; the identity table is
    the default, so a never-resized cluster behaves exactly like the
    pre-elastic one.
    """

    def __init__(self, mode: str, n_shards: int, n_vertices: int, *,
                 shard_ids=None, bounds=None, epoch: int = 0):
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        if n_vertices < 1:
            raise ConfigError(f"n_vertices must be >= 1, got {n_vertices}")
        if mode not in ("hash", "range"):
            raise ConfigError(f"unknown placement mode {mode!r}")
        self.mode = mode
        self.n_shards = int(n_shards)
        self.n_vertices = int(n_vertices)
        self.epoch = int(epoch)
        if shard_ids is None:
            shard_ids = range(n_shards)
        self.shard_ids = tuple(int(s) for s in shard_ids)
        if len(self.shard_ids) != self.n_shards:
            raise ConfigError(
                f"{len(self.shard_ids)} shard ids for {self.n_shards} slots"
            )
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ConfigError(f"duplicate shard ids in {self.shard_ids}")
        if any(s < 0 for s in self.shard_ids):
            raise ConfigError(f"negative shard id in {self.shard_ids}")
        self._ids = np.asarray(self.shard_ids, dtype=np.int64)
        if self.mode == "range":
            if bounds is None:
                bounds = even_bounds(self.n_shards, self.n_vertices)
            self.bounds = tuple(int(b) for b in bounds)
            self._validate_bounds()
            self._cuts = np.asarray(self.bounds, dtype=np.int64)
        else:
            if bounds is not None:
                raise ConfigError("bounds are only meaningful in range mode")
            self.bounds = None
            self._cuts = None

    def _validate_bounds(self) -> None:
        b = self.bounds
        if len(b) != self.n_shards + 1:
            raise ConfigError(
                f"range bounds need {self.n_shards + 1} cut points, got {len(b)}"
            )
        if b[0] != 0 or b[-1] != self.n_vertices:
            raise ConfigError(
                f"range bounds must span [0, {self.n_vertices}], got "
                f"[{b[0]}, {b[-1]}]"
            )
        if any(lo >= hi for lo, hi in zip(b, b[1:])):
            raise ConfigError(
                f"range bounds must be strictly increasing, got {b}"
            )

    # -------------------------------------------------------------- queries

    def slot_of(self, vertices) -> np.ndarray:
        """Placement *slot* (0..n_shards-1) for ``vertices``."""
        v = np.asarray(vertices, dtype=np.int64)
        if v.size and (int(v.min()) < 0 or int(v.max()) >= self.n_vertices):
            raise ConfigError(
                f"vertex id out of range [0, {self.n_vertices}) in placement"
            )
        if self.mode == "hash":
            return (_splitmix64(v) % _U64(self.n_shards)).astype(np.int64)
        # range: rightmost cut <= v.  No multiplication, so no overflow
        # for huge n_vertices x n_shards products.
        return np.searchsorted(self._cuts, v, side="right") - 1

    def shard_of(self, vertices) -> np.ndarray:
        """Owner *physical* shard id(s) for ``vertices``."""
        return self._ids[self.slot_of(vertices)]

    def counts(self, vertices) -> np.ndarray:
        """Per-slot owner histogram over ``vertices`` (length
        ``n_shards``, aligned with :attr:`shard_ids`)."""
        return np.bincount(self.slot_of(vertices), minlength=self.n_shards)

    def slot_of_shard(self, shard_id: int) -> int:
        """Slot a physical shard occupies (ConfigError if not placed)."""
        try:
            return self.shard_ids.index(int(shard_id))
        except ValueError:
            raise ConfigError(
                f"shard {shard_id} is not in placement {self.shard_ids}"
            ) from None

    def ring_successors(self, shard_id: int):
        """Physical ids after ``shard_id`` in slot-ring order (the
        reroute path walks this to find a healthy replica host)."""
        slot = self.slot_of_shard(shard_id)
        n = self.n_shards
        for k in range(1, n):
            yield self.shard_ids[(slot + k) % n]

    # ------------------------------------------------- derived placements

    def grown(self, new_ids) -> "VertexPlacement":
        """Epoch+1 placement with ``new_ids`` appended as fresh slots
        (range mode re-splits evenly over the wider cluster)."""
        ids = self.shard_ids + tuple(int(s) for s in new_ids)
        return VertexPlacement(
            self.mode, len(ids), self.n_vertices,
            shard_ids=ids, epoch=self.epoch + 1,
        )

    def shrunk(self, shard_id: int) -> "VertexPlacement":
        """Epoch+1 placement with physical ``shard_id`` removed."""
        self.slot_of_shard(shard_id)  # membership check
        ids = tuple(s for s in self.shard_ids if s != int(shard_id))
        if not ids:
            raise ConfigError("cannot shrink the last shard away")
        return VertexPlacement(
            self.mode, len(ids), self.n_vertices,
            shard_ids=ids, epoch=self.epoch + 1,
        )

    def rebalanced(self, bounds) -> "VertexPlacement":
        """Epoch+1 range placement over the same shards, new cuts."""
        if self.mode != "range":
            raise ConfigError("only range placements can be rebalanced")
        return VertexPlacement(
            self.mode, self.n_shards, self.n_vertices,
            shard_ids=self.shard_ids, bounds=bounds, epoch=self.epoch + 1,
        )

    # --------------------------------------------------------------- report

    def describe(self) -> dict:
        out = {
            "mode": self.mode,
            "epoch": self.epoch,
            "n_shards": self.n_shards,
            "shard_ids": list(self.shard_ids),
        }
        if self.bounds is not None:
            out["bounds"] = list(self.bounds)
        return out
