"""Cluster-layer configuration.

Like :class:`~repro.service.config.ServiceConfig`, deliberately outside
the engine's ``FlashWalkerConfig``: the per-shard engines keep their
own fingerprinted hardware configs, and the cluster knobs (placement,
link model, failover policy) describe the *deployment* around them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.backoff import RetryPolicy
from ..common.errors import ConfigError
from ..service.config import ServiceConfig

__all__ = ["ClusterConfig"]

_PLACEMENTS = ("hash", "range")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the sharded serving cluster (:class:`ClusterService`).

    ``n_shards`` simulated FlashWalker devices serve one logical graph;
    every device holds the full graph image (its subgraph replica set),
    but each *owns* the vertices the ``placement`` map assigns it and
    only advances walks currently resident on it.  Walks advance in
    leases of ``segment_hops`` hops; when a walk's vertex lands on
    another shard's territory it migrates there over the modeled
    network link.

    The link charges ``link_latency + bytes / link_bandwidth`` per
    migration message and draws seeded loss/corruption faults per
    attempt; failed attempts retransmit under the shared
    :class:`~repro.common.backoff.RetryPolicy` and, once
    ``rpc_max_attempts`` is exhausted, escalate to a slow reliable
    fallback path (``reliable_fallback_latency``) — a migration is
    *never* dropped, only delayed, which is half of the walk
    conservation argument.

    ``kill_schedule`` is the shard-kill injector: ``(t, shard)`` pairs
    in cluster time; each kill power-fails the shard mid-epoch and the
    read replica is promoted by replaying the shard's walk journal
    (measured RTO lands in the report's failover timeline).

    Degradation: arrivals pass an admission queue sized by
    ``queue_capacity`` under ``admission_policy``; per-shard circuit
    breakers (fed by each shard's fault/integrity counters) mark shards
    degraded, and leases for a degraded shard go to its ring successor
    when ``reroute_to_replica`` is set, else defer until the breaker
    closes.
    """

    n_shards: int = 4
    placement: str = "hash"
    segment_hops: int = 1
    # -- network link ------------------------------------------------------
    link_latency: float = 5e-6
    link_bandwidth: float = 2e9
    walk_bytes: int = 16
    link_loss_prob: float = 0.0
    link_corrupt_prob: float = 0.0
    rpc_base_delay: float = 10e-6
    rpc_backoff_factor: float = 2.0
    rpc_backoff_cap: float = 200e-6
    rpc_max_attempts: int = 5
    rpc_jitter_frac: float = 0.25
    reliable_fallback_latency: float = 500e-6
    # -- shard kills (power loss + replica promotion) ----------------------
    kill_schedule: tuple[tuple[float, int], ...] = ()
    #: Where inside the victim's epoch the cut lands, as a fraction of
    #: its previous epoch's local duration.
    kill_epoch_frac: float = 0.5
    # -- admission / serving ----------------------------------------------
    queue_capacity: int = 64
    admission_policy: str = "reject"
    rate_limit_qps: float = 0.0
    rate_limit_burst: int = 8
    max_walk_length: int = 6
    max_inflight_walks_per_shard: int = 4096
    # -- health / degradation ----------------------------------------------
    breaker_enabled: bool = True
    breaker_cooldown: float = 2e-3
    breaker_exhausted_threshold: int = 1
    breaker_corruption_threshold: int = 1
    reroute_to_replica: bool = True
    #: Promote a degraded shard's replica after this many consecutive
    #: breaker-open epochs (0 disables; kills always promote).
    promote_after_open_epochs: int = 0
    audit_interval_epochs: int = 1
    #: Hard cap on coordination rounds (runaway guard, like max_events).
    max_epochs: int = 100_000
    # -- elastic membership -------------------------------------------------
    #: Scheduled membership changes: ``(t, kind, arg)`` triples in
    #: cluster time.  ``kind`` is ``"grow"`` (arg = shard count to add),
    #: ``"shrink"`` (arg = physical shard id to remove) or
    #: ``"rebalance"`` (arg ignored; recuts range bounds from the load
    #: window).  Requests execute strictly one at a time, in time order.
    resize_schedule: tuple[tuple[float, str, int], ...] = ()
    #: Abort a resize whose transfer phase has not drained after this
    #: many barriers (rollback to the old placement, tested path).
    resize_transfer_budget_epochs: int = 64
    #: Load-driven automatic rebalancing (range placement only).
    rebalance_enabled: bool = False
    rebalance_check_epochs: int = 8
    rebalance_window_epochs: int = 8
    rebalance_imbalance_ratio: float = 2.0
    rebalance_cooldown_epochs: int = 16
    rebalance_min_walks: int = 32
    # -- telemetry ----------------------------------------------------------
    #: Enable the router's deterministic metrics registry plus per-shard
    #: engine telemetry (:mod:`repro.obs.metrics`).  Off by default so
    #: cluster reports stay byte-identical to pre-telemetry runs.
    telemetry_enabled: bool = False
    telemetry_sample_interval: float = 20e-6
    telemetry_max_samples: int = 2048
    # -- gray-failure resilience --------------------------------------------
    #: Per-link delay-inflation windows ``(t_start, t_end, factor)`` in
    #: cluster time: every migration/handoff attempt sent inside an
    #: active window pays ``factor``x the nominal link span.  The link
    #: stays lossless-looking — no fault counter moves, no breaker sees
    #: it — which is exactly the gray-failure pathology.
    link_slow_windows: tuple[tuple[float, float, float], ...] = ()
    #: Straggler detection: keep a trailing window of each shard's
    #: per-epoch normalized step latency and mark a shard *suspect* when
    #: its window median exceeds ``straggler_median_multiple`` times the
    #: median of the other live shards' medians.  Suspect is a state
    #: between healthy and breaker-open: the shard keeps serving, but
    #: hedging (below) stops trusting it to be fast.
    straggler_detection: bool = False
    straggler_window_epochs: int = 8
    straggler_min_epochs: int = 3
    straggler_median_multiple: float = 3.0
    #: Hedged walk leases: a lease executing on a *suspect* shard is
    #: speculatively re-issued to its ring successor, injected
    #: ``hedge_delay`` after the primary copy; the first completion wins
    #: (deterministic ``(t_done, shard)`` tie-break) and the loser is
    #: counted as hedge-wasted work.  Requires ``straggler_detection``.
    #: Hedged mode also answers queries at segment completion time
    #: instead of the epoch barrier — the point of hedging is that the
    #: fast copy's finish time is not dragged to the slow shard's.
    hedging_enabled: bool = False
    hedge_delay: float = 20e-6
    #: End-to-end deadline propagation: walks of already-responded
    #: (timed-out / shed) queries are sacrificed at the next barrier
    #: instead of running to completion as zombies, dead queries are
    #: never hedged, and migrations of dead walks skip the link.
    deadline_propagation: bool = False
    #: Per-query retry budget: link retransmits on a query's migrations
    #: and hedges issued for its walks are charged against this; an
    #: exhausted query escalates straight to the reliable fallback path
    #: (0 = unlimited, the legacy behavior).
    query_retry_budget: int = 0
    # -- brownout admission --------------------------------------------------
    #: Degraded admission driven by straggler pressure (suspect share of
    #: live shards): while active, admission capacity and the token-
    #: bucket refill rate are scaled down so load is shed *before*
    #: queues blow deadlines.  Requires ``straggler_detection``.
    brownout_enabled: bool = False
    brownout_enter_pressure: float = 0.25
    brownout_exit_pressure: float = 0.0
    brownout_capacity_factor: float = 0.5
    brownout_rate_factor: float = 0.5
    # -- resize-aware admission ---------------------------------------------
    #: Ramp admission capacity (and the token-bucket rate) linearly with
    #: transfer progress during a resize window instead of stepping to
    #: the target placement's capacity at prepare.
    resize_admission_ramp: bool = False

    def validate(self) -> "ClusterConfig":
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.placement not in _PLACEMENTS:
            raise ConfigError(
                f"unknown placement {self.placement!r}; "
                f"expected one of {_PLACEMENTS}"
            )
        if self.segment_hops < 1:
            raise ConfigError(f"segment_hops must be >= 1, got {self.segment_hops}")
        if self.link_latency < 0:
            raise ConfigError(f"negative link_latency {self.link_latency}")
        if self.link_bandwidth <= 0:
            raise ConfigError(f"link_bandwidth must be > 0, got {self.link_bandwidth}")
        if self.walk_bytes < 1:
            raise ConfigError(f"walk_bytes must be >= 1, got {self.walk_bytes}")
        for name in ("link_loss_prob", "link_corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {p}")
        if self.reliable_fallback_latency < 0:
            raise ConfigError(
                f"negative reliable_fallback_latency {self.reliable_fallback_latency}"
            )
        _RESIZE_KINDS = ("grow", "shrink", "rebalance")
        for entry in self.resize_schedule:
            if len(entry) != 3:
                raise ConfigError(
                    f"resize entries are (t, kind, arg) triples, got {entry!r}"
                )
            t, kind, arg = entry
            if t < 0:
                raise ConfigError(f"resize time must be >= 0, got {t}")
            if kind not in _RESIZE_KINDS:
                raise ConfigError(
                    f"unknown resize kind {kind!r}; expected one of {_RESIZE_KINDS}"
                )
            if kind == "grow" and int(arg) < 1:
                raise ConfigError(f"grow must add >= 1 shard, got {arg}")
            if kind == "shrink" and int(arg) < 0:
                raise ConfigError(f"shrink shard id must be >= 0, got {arg}")
            if kind == "rebalance" and self.placement != "range":
                raise ConfigError("rebalance requires range placement")
        if self.resize_transfer_budget_epochs < 1:
            raise ConfigError(
                "resize_transfer_budget_epochs must be >= 1, got "
                f"{self.resize_transfer_budget_epochs}"
            )
        if self.rebalance_enabled and self.placement != "range":
            raise ConfigError("rebalance_enabled requires range placement")
        for name in ("rebalance_check_epochs", "rebalance_window_epochs",
                     "rebalance_cooldown_epochs"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.rebalance_imbalance_ratio < 1.0:
            raise ConfigError(
                "rebalance_imbalance_ratio must be >= 1, got "
                f"{self.rebalance_imbalance_ratio}"
            )
        if self.rebalance_min_walks < 0:
            raise ConfigError(
                f"negative rebalance_min_walks {self.rebalance_min_walks}"
            )
        # Grows mint new physical ids above n_shards, so a scheduled
        # kill may legally target a not-yet-added shard.
        max_physical = self.n_shards + sum(
            int(arg) for _, kind, arg in self.resize_schedule if kind == "grow"
        )
        for t, shard in self.kill_schedule:
            if t < 0:
                raise ConfigError(f"kill time must be >= 0, got {t}")
            if not 0 <= int(shard) < max_physical:
                raise ConfigError(
                    f"kill shard {shard} out of range for {max_physical} "
                    "possible shards"
                )
        if not 0.0 <= self.kill_epoch_frac <= 1.0:
            raise ConfigError(
                f"kill_epoch_frac must be in [0, 1], got {self.kill_epoch_frac}"
            )
        if self.max_inflight_walks_per_shard < 1:
            raise ConfigError(
                "max_inflight_walks_per_shard must be >= 1, got "
                f"{self.max_inflight_walks_per_shard}"
            )
        if self.promote_after_open_epochs < 0:
            raise ConfigError(
                f"negative promote_after_open_epochs {self.promote_after_open_epochs}"
            )
        if self.audit_interval_epochs < 0:
            raise ConfigError(
                f"negative audit_interval_epochs {self.audit_interval_epochs}"
            )
        if self.max_epochs < 1:
            raise ConfigError(f"max_epochs must be >= 1, got {self.max_epochs}")
        if self.telemetry_enabled:
            self.metrics_cfg().validate()
        for entry in self.link_slow_windows:
            if len(entry) != 3:
                raise ConfigError(
                    "link_slow_windows entries are (t_start, t_end, factor) "
                    f"triples, got {entry!r}"
                )
            t0, t1, factor = entry
            if t0 < 0 or t1 <= t0:
                raise ConfigError(
                    f"link slow window must satisfy 0 <= t_start < t_end, "
                    f"got ({t0}, {t1})"
                )
            if factor < 1.0:
                raise ConfigError(
                    f"link slow factor must be >= 1, got {factor}"
                )
        for name in ("straggler_window_epochs", "straggler_min_epochs"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.straggler_min_epochs > self.straggler_window_epochs:
            raise ConfigError(
                "straggler_min_epochs cannot exceed straggler_window_epochs"
            )
        if self.straggler_median_multiple < 1.0:
            raise ConfigError(
                "straggler_median_multiple must be >= 1, got "
                f"{self.straggler_median_multiple}"
            )
        if self.hedging_enabled and not self.straggler_detection:
            raise ConfigError(
                "hedging_enabled requires straggler_detection (hedges are "
                "only issued against suspect shards)"
            )
        if self.hedge_delay < 0:
            raise ConfigError(f"negative hedge_delay {self.hedge_delay}")
        if self.query_retry_budget < 0:
            raise ConfigError(
                f"negative query_retry_budget {self.query_retry_budget}"
            )
        if self.brownout_enabled and not self.straggler_detection:
            raise ConfigError(
                "brownout_enabled requires straggler_detection (brownout is "
                "driven by straggler pressure)"
            )
        if not 0.0 < self.brownout_enter_pressure <= 1.0:
            raise ConfigError(
                "brownout_enter_pressure must be in (0, 1], got "
                f"{self.brownout_enter_pressure}"
            )
        if not 0.0 <= self.brownout_exit_pressure < self.brownout_enter_pressure:
            raise ConfigError(
                "brownout_exit_pressure must be in [0, enter_pressure), got "
                f"{self.brownout_exit_pressure}"
            )
        for name in ("brownout_capacity_factor", "brownout_rate_factor"):
            f = getattr(self, name)
            if not 0.0 < f <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {f}")
        self.rpc_policy(seed=0).validate()
        self.service_cfg().validate()
        return self

    def gray_enabled(self) -> bool:
        """True when any gray-failure-resilience layer is active.

        Gates the report's ``cluster["gray"]`` section and the schema
        version bump; with everything at defaults reports stay
        byte-identical to pre-gray runs.
        """
        return bool(
            self.link_slow_windows
            or self.straggler_detection
            or self.hedging_enabled
            or self.deadline_propagation
            or self.query_retry_budget
            or self.brownout_enabled
            or self.resize_admission_ramp
        )

    def metrics_cfg(self):
        """Telemetry knobs repackaged as a
        :class:`~repro.obs.metrics.MetricsConfig` (router registry and
        per-shard engines share the same grid)."""
        from ..obs.metrics import MetricsConfig

        return MetricsConfig(
            sample_interval=self.telemetry_sample_interval,
            max_samples=self.telemetry_max_samples,
        )

    def rpc_policy(self, seed: int) -> RetryPolicy:
        """Migration-RPC retransmit backoff (shared policy class)."""
        return RetryPolicy(
            base_delay=self.rpc_base_delay,
            factor=self.rpc_backoff_factor,
            max_delay=self.rpc_backoff_cap,
            max_attempts=self.rpc_max_attempts,
            jitter_frac=self.rpc_jitter_frac,
            seed=seed,
            salt="cluster-rpc",
        )

    def service_cfg(self) -> ServiceConfig:
        """Admission/breaker knobs repackaged for the reused
        :class:`~repro.service.queue.AdmissionQueue` and
        :class:`~repro.service.breaker.CircuitBreaker`."""
        return ServiceConfig(
            queue_capacity=self.queue_capacity,
            admission_policy=self.admission_policy,
            rate_limit_qps=self.rate_limit_qps,
            rate_limit_burst=self.rate_limit_burst,
            max_inflight_walks=self.max_inflight_walks_per_shard,
            max_walk_length=self.max_walk_length,
            breaker_enabled=self.breaker_enabled,
            breaker_cooldown=self.breaker_cooldown,
            breaker_exhausted_threshold=self.breaker_exhausted_threshold,
            breaker_corruption_threshold=self.breaker_corruption_threshold,
        )
