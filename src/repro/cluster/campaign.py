"""Cluster chaos-campaign points.

One point = one seeded kill-a-shard scenario: an open-loop query
stream served by an N-shard cluster while the kill schedule power-
fails shards mid-epoch and the network link drops/corrupts migration
messages.  Registered as the ``cluster_failover`` experiment so
``python -m repro.parallel --experiment cluster_failover`` sweeps
shard counts and fault intensities with the usual per-point
determinism guarantees.

The scenario builders here are shared by the CLI
(``python -m repro.cluster``), the failover benchmark, and the tests,
so every consumer runs the same code path.
"""

from __future__ import annotations

from ..common.config import DurabilityConfig, FaultConfig
from ..parallel.campaign import CampaignPoint, point_runner
from ..service.campaign import build_requests, walk_budget
from .cluster import ClusterService
from .config import ClusterConfig

__all__ = [
    "DEFAULT_KILLS",
    "DEFAULT_RESIZES",
    "cluster_config",
    "cluster_shard_config",
    "points",
    "resize_points",
    "run_point",
    "run_resize_point",
    "run_scenario",
]

#: Default kill schedule: two mid-run shard power failures.
DEFAULT_KILLS = ((60e-6, 1), (140e-6, 2))

#: Default elasticity schedule: grow 2 -> 4 early, shrink away the
#: first seed shard once the grown cluster is serving.
DEFAULT_RESIZES = ((50e-6, "grow", 2), (250e-6, "shrink", 0))


def cluster_shard_config(ctx, dataset: str, *, chaos: bool = True):
    """Per-shard engine config for cluster serving.

    Durability is mandatory (failover replays checkpoint + journal);
    periodic checkpoints stay off because the cluster checkpoints at
    every epoch boundary itself.  ``chaos`` adds background NAND read
    faults and CRC noise — the degraded-mode signals the per-shard
    circuit breakers watch.
    """
    faults = FaultConfig(
        enabled=chaos,
        page_error_rate=0.05 if chaos else 0.0,
        crc_error_rate=0.02 if chaos else 0.0,
    )
    return ctx.flashwalker_config(
        dataset,
        durability=DurabilityConfig(enabled=True, journal_interval=25e-6),
        faults=faults,
    )


def cluster_config(
    *,
    n_shards: int = 4,
    kills=DEFAULT_KILLS,
    loss: float = 0.05,
    corrupt: float = 0.02,
    policy: str = "reject",
    walks_per_query: int = 16,
    segment_hops: int = 2,
    length: int = 6,
    telemetry: bool = False,
    placement: str = "hash",
    resizes=(),
    rebalance: bool = False,
) -> ClusterConfig:
    """Deployment config for one chaos scenario."""
    resizes = tuple((float(t), str(k), int(a)) for t, k, a in resizes)
    # Grows mint physical ids above n_shards, so kill targets wrap at
    # the largest id the schedule can ever create.
    n_phys_max = n_shards + sum(a for _, k, a in resizes if k == "grow")
    kills = tuple((float(t), int(s) % n_phys_max) for t, s in kills)
    return ClusterConfig(
        n_shards=n_shards,
        placement=placement,
        segment_hops=segment_hops,
        max_walk_length=length,
        link_loss_prob=loss,
        link_corrupt_prob=corrupt,
        kill_schedule=kills,
        queue_capacity=8,
        admission_policy=policy,
        rate_limit_qps=30e3 if policy == "token-bucket" else 0.0,
        max_inflight_walks_per_shard=max(64, 4 * walks_per_query),
        breaker_cooldown=150e-6,
        telemetry_enabled=telemetry,
        resize_schedule=resizes,
        rebalance_enabled=rebalance,
    ).validate()


def run_scenario(
    ctx,
    dataset: str,
    *,
    n_shards: int = 4,
    n_requests: int = 12,
    rate_qps: float = 20e3,
    kills=DEFAULT_KILLS,
    loss: float = 0.05,
    corrupt: float = 0.02,
    policy: str = "reject",
    jobs: int = 1,
    chaos: bool = True,
    seed_offset: int = 0,
    telemetry: bool = False,
    placement: str = "hash",
    resizes=(),
    rebalance: bool = False,
):
    """Run one kill-a-shard scenario; returns a ClusterOutcome."""
    graph = ctx.graph(dataset)
    shard_cfg = cluster_shard_config(ctx, dataset, chaos=chaos)
    walks_per_query, _ = walk_budget(ctx, dataset)
    requests = build_requests(
        ctx, dataset, n_requests=n_requests, rate_qps=rate_qps,
        seed_offset=seed_offset,
    )
    ccfg = cluster_config(
        n_shards=n_shards, kills=kills, loss=loss, corrupt=corrupt,
        policy=policy, walks_per_query=walks_per_query,
        length=requests[0].length, telemetry=telemetry,
        placement=placement, resizes=resizes, rebalance=rebalance,
    )
    svc = ClusterService(
        graph, shard_cfg, ccfg, seed=ctx.seed + 20 + seed_offset, jobs=jobs
    )
    return svc.run(requests)


def points(ctx, datasets: list[str] | None = None) -> list[CampaignPoint]:
    return [
        CampaignPoint.make("cluster_failover", name, n_shards=n, kills=kills)
        for name in (datasets or ctx.datasets)
        for n, kills in ((2, 1), (4, 2))
    ]


@point_runner("cluster_failover")
def run_point(ctx, point: CampaignPoint):
    name = point.dataset
    n_shards = int(point.param("n_shards", 4))
    n_kills = int(point.param("kills", 2))
    outcome = run_scenario(
        ctx,
        name,
        n_shards=n_shards,
        n_requests=int(point.param("n_requests", 12)),
        rate_qps=float(point.param("rate_qps", 20e3)),
        kills=DEFAULT_KILLS[:n_kills],
        policy=str(point.param("policy", "reject")),
        seed_offset=int(point.param("seed_offset", 0)),
    )
    svc = outcome.report["service"]
    cluster = outcome.report["cluster"]
    row = {
        "dataset": name,
        "n_shards": n_shards,
        "kills": len(cluster["failovers"]),
        "arrivals": svc["requests"]["arrivals"],
        "ok": svc["requests"]["ok"],
        "timed_out": svc["requests"]["timed_out"],
        "shed": svc["requests"]["shed"],
        "migrations": cluster["migrations"]["total"],
        "rto_max_ms": cluster["rto"]["max"] * 1e3,
        "audit_violations": cluster["audit"]["violations"],
    }
    return row, outcome.report


def resize_points(ctx, datasets: list[str] | None = None) -> list[CampaignPoint]:
    return [
        CampaignPoint.make("cluster_resize", name, placement=placement)
        for name in (datasets or ctx.datasets)
        for placement in ("hash", "range")
    ]


@point_runner("cluster_resize")
def run_resize_point(ctx, point: CampaignPoint):
    """One elasticity scenario: grow 2 -> 4 with a kill landing on a
    freshly-added shard mid-handoff, then shrink 4 -> 3."""
    name = point.dataset
    placement = str(point.param("placement", "hash"))
    outcome = run_scenario(
        ctx,
        name,
        n_shards=int(point.param("n_shards", 2)),
        n_requests=int(point.param("n_requests", 12)),
        rate_qps=float(point.param("rate_qps", 20e3)),
        kills=((60e-6, 2),),
        placement=placement,
        resizes=DEFAULT_RESIZES,
        seed_offset=int(point.param("seed_offset", 0)),
    )
    svc = outcome.report["service"]
    cluster = outcome.report["cluster"]
    handoff = cluster["handoff"]
    committed = sum(1 for r in cluster["resizes"] if r.get("committed"))
    row = {
        "dataset": name,
        "placement": placement,
        "resizes": len(cluster["resizes"]),
        "committed": committed,
        "handoff_walks": handoff["walks"],
        "handoff_deferred": handoff["deferred_batches"],
        "rpo_walks": handoff["rpo_walks"],
        "resize_rto_max_ms": handoff["rto"]["max"] * 1e3,
        "live_shards": len(cluster["membership"]["live_shards"]),
        "ok": svc["requests"]["ok"],
        "arrivals": svc["requests"]["arrivals"],
        "audit_violations": cluster["audit"]["violations"],
    }
    return row, outcome.report
