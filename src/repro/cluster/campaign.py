"""Cluster chaos-campaign points.

One point = one seeded kill-a-shard scenario: an open-loop query
stream served by an N-shard cluster while the kill schedule power-
fails shards mid-epoch and the network link drops/corrupts migration
messages.  Registered as the ``cluster_failover`` experiment so
``python -m repro.parallel --experiment cluster_failover`` sweeps
shard counts and fault intensities with the usual per-point
determinism guarantees.

The scenario builders here are shared by the CLI
(``python -m repro.cluster``), the failover benchmark, and the tests,
so every consumer runs the same code path.
"""

from __future__ import annotations

from dataclasses import replace

from ..common.config import DurabilityConfig, FaultConfig, SlowFaultConfig
from ..parallel.campaign import CampaignPoint, point_runner
from ..service.campaign import build_requests, walk_budget
from .cluster import ClusterService
from .config import ClusterConfig

__all__ = [
    "DEFAULT_KILLS",
    "DEFAULT_RESIZES",
    "DEFAULT_SLOW_FAULTS",
    "GRAY_DEFAULTS",
    "sustained_slow_faults",
    "cluster_config",
    "cluster_shard_config",
    "points",
    "resize_points",
    "run_point",
    "run_resize_point",
    "run_scenario",
]

#: Default kill schedule: two mid-run shard power failures.
DEFAULT_KILLS = ((60e-6, 1), (140e-6, 2))

#: Default elasticity schedule: grow 2 -> 4 early, shrink away the
#: first seed shard once the grown cluster is serving.
DEFAULT_RESIZES = ((50e-6, "grow", 2), (250e-6, "shrink", 0))

#: Default slow-fault injection for gray scenarios: seeded random
#: chip-read and channel-bus degradation windows on the victim shards.
DEFAULT_SLOW_FAULTS = SlowFaultConfig(
    enabled=True,
    n_random=6,
    horizon=400e-6,
    factor_min=4.0,
    factor_max=10.0,
)


def sustained_slow_faults(
    *,
    factor: float = 6.0,
    t_start: float = 0.0,
    t_end: float = 1.0,
    n_chips: int = 256,
    n_channels: int = 64,
) -> SlowFaultConfig:
    """Whole-device sustained degradation: every chip's sense/program
    and every channel bus stretched by ``factor`` across the window.

    This is the canonical gray failure — the device still answers
    everything correctly, no fault counter moves, it is just uniformly
    slow — and what the straggler detector is expected to catch.
    ``n_chips``/``n_channels`` only need to cover the target geometry
    (windows for units the device doesn't have are never consulted).
    """
    windows = tuple(
        ("chip-read", u, t_start, t_end, factor) for u in range(n_chips)
    ) + tuple(
        ("chip-program", u, t_start, t_end, factor) for u in range(n_chips)
    ) + tuple(
        ("channel-bus", c, t_start, t_end, factor) for c in range(n_channels)
    )
    return SlowFaultConfig(enabled=True, windows=windows)

#: Gray-resilience knobs the ``--hedging`` paths switch on together:
#: straggler detection tuned for short scenarios, hedged leases,
#: deadline propagation, and per-query retry budgets.
GRAY_DEFAULTS = dict(
    straggler_detection=True,
    straggler_window_epochs=4,
    straggler_min_epochs=1,
    straggler_median_multiple=2.0,
    hedging_enabled=True,
    hedge_delay=10e-6,
    deadline_propagation=True,
    # Generous by default: the budget's job is to stop retransmit
    # storms and past-deadline retries, not to starve hedging (every
    # hedged walk-segment charges one unit, and a query can fan out
    # hundreds of walks).  Tests pin small budgets explicitly.
    query_retry_budget=4096,
)


def cluster_shard_config(ctx, dataset: str, *, chaos: bool = True,
                         slow: SlowFaultConfig | None = None):
    """Per-shard engine config for cluster serving.

    Durability is mandatory (failover replays checkpoint + journal);
    periodic checkpoints stay off because the cluster checkpoints at
    every epoch boundary itself.  ``chaos`` adds background NAND read
    faults and CRC noise — the degraded-mode signals the per-shard
    circuit breakers watch.  ``slow`` attaches a gray-failure slow-
    fault model (latent chip/bus degradation no breaker can see).
    """
    faults = FaultConfig(
        enabled=chaos,
        page_error_rate=0.05 if chaos else 0.0,
        crc_error_rate=0.02 if chaos else 0.0,
    )
    if slow is not None:
        faults = replace(faults, slow=slow)
    return ctx.flashwalker_config(
        dataset,
        durability=DurabilityConfig(enabled=True, journal_interval=25e-6),
        faults=faults,
    )


def cluster_config(
    *,
    n_shards: int = 4,
    kills=DEFAULT_KILLS,
    loss: float = 0.05,
    corrupt: float = 0.02,
    policy: str = "reject",
    walks_per_query: int = 16,
    segment_hops: int = 2,
    length: int = 6,
    telemetry: bool = False,
    placement: str = "hash",
    resizes=(),
    rebalance: bool = False,
    gray: dict | None = None,
) -> ClusterConfig:
    """Deployment config for one chaos scenario.

    ``gray`` is a dict of extra :class:`ClusterConfig` field overrides
    (straggler/hedging/deadline/brownout/ramp knobs); None leaves every
    gray layer off and the config byte-identical to pre-gray builds.
    """
    resizes = tuple((float(t), str(k), int(a)) for t, k, a in resizes)
    # Grows mint physical ids above n_shards, so kill targets wrap at
    # the largest id the schedule can ever create.
    n_phys_max = n_shards + sum(a for _, k, a in resizes if k == "grow")
    kills = tuple((float(t), int(s) % n_phys_max) for t, s in kills)
    return ClusterConfig(
        n_shards=n_shards,
        placement=placement,
        segment_hops=segment_hops,
        max_walk_length=length,
        link_loss_prob=loss,
        link_corrupt_prob=corrupt,
        kill_schedule=kills,
        queue_capacity=8,
        admission_policy=policy,
        rate_limit_qps=30e3 if policy == "token-bucket" else 0.0,
        max_inflight_walks_per_shard=max(64, 4 * walks_per_query),
        breaker_cooldown=150e-6,
        telemetry_enabled=telemetry,
        resize_schedule=resizes,
        rebalance_enabled=rebalance,
        **(gray or {}),
    ).validate()


def run_scenario(
    ctx,
    dataset: str,
    *,
    n_shards: int = 4,
    n_requests: int = 12,
    rate_qps: float = 20e3,
    kills=DEFAULT_KILLS,
    loss: float = 0.05,
    corrupt: float = 0.02,
    policy: str = "reject",
    jobs: int = 1,
    chaos: bool = True,
    seed_offset: int = 0,
    telemetry: bool = False,
    placement: str = "hash",
    resizes=(),
    rebalance: bool = False,
    slow_shards=(),
    slow: SlowFaultConfig | None = None,
    gray: dict | None = None,
):
    """Run one kill-a-shard scenario; returns a ClusterOutcome.

    ``slow_shards`` names the shard ids whose engines carry a slow-
    fault model (``slow`` or :data:`DEFAULT_SLOW_FAULTS`) — gray-
    degraded hardware the breakers cannot see; ``gray`` passes
    resilience overrides through to :func:`cluster_config`.
    """
    graph = ctx.graph(dataset)
    walks_per_query, _ = walk_budget(ctx, dataset)
    requests = build_requests(
        ctx, dataset, n_requests=n_requests, rate_qps=rate_qps,
        seed_offset=seed_offset,
    )
    ccfg = cluster_config(
        n_shards=n_shards, kills=kills, loss=loss, corrupt=corrupt,
        policy=policy, walks_per_query=walks_per_query,
        length=requests[0].length, telemetry=telemetry,
        placement=placement, resizes=resizes, rebalance=rebalance,
        gray=gray,
    )
    if slow_shards:
        slow_cfg = slow if slow is not None else DEFAULT_SLOW_FAULTS
        base = cluster_shard_config(ctx, dataset, chaos=chaos)
        degraded = cluster_shard_config(ctx, dataset, chaos=chaos, slow=slow_cfg)
        slow_set = {int(s) for s in slow_shards}
        shard_cfg = [
            degraded if i in slow_set else base for i in range(n_shards)
        ]
    else:
        shard_cfg = cluster_shard_config(ctx, dataset, chaos=chaos)
    svc = ClusterService(
        graph, shard_cfg, ccfg, seed=ctx.seed + 20 + seed_offset, jobs=jobs
    )
    return svc.run(requests)


def points(ctx, datasets: list[str] | None = None) -> list[CampaignPoint]:
    return [
        CampaignPoint.make("cluster_failover", name, n_shards=n, kills=kills)
        for name in (datasets or ctx.datasets)
        for n, kills in ((2, 1), (4, 2))
    ]


@point_runner("cluster_failover")
def run_point(ctx, point: CampaignPoint):
    name = point.dataset
    n_shards = int(point.param("n_shards", 4))
    n_kills = int(point.param("kills", 2))
    outcome = run_scenario(
        ctx,
        name,
        n_shards=n_shards,
        n_requests=int(point.param("n_requests", 12)),
        rate_qps=float(point.param("rate_qps", 20e3)),
        kills=DEFAULT_KILLS[:n_kills],
        policy=str(point.param("policy", "reject")),
        seed_offset=int(point.param("seed_offset", 0)),
    )
    svc = outcome.report["service"]
    cluster = outcome.report["cluster"]
    row = {
        "dataset": name,
        "n_shards": n_shards,
        "kills": len(cluster["failovers"]),
        "arrivals": svc["requests"]["arrivals"],
        "ok": svc["requests"]["ok"],
        "timed_out": svc["requests"]["timed_out"],
        "shed": svc["requests"]["shed"],
        "migrations": cluster["migrations"]["total"],
        "rto_max_ms": cluster["rto"]["max"] * 1e3,
        "audit_violations": cluster["audit"]["violations"],
    }
    return row, outcome.report


def resize_points(ctx, datasets: list[str] | None = None) -> list[CampaignPoint]:
    return [
        CampaignPoint.make("cluster_resize", name, placement=placement)
        for name in (datasets or ctx.datasets)
        for placement in ("hash", "range")
    ]


@point_runner("cluster_resize")
def run_resize_point(ctx, point: CampaignPoint):
    """One elasticity scenario: grow 2 -> 4 with a kill landing on a
    freshly-added shard mid-handoff, then shrink 4 -> 3."""
    name = point.dataset
    placement = str(point.param("placement", "hash"))
    outcome = run_scenario(
        ctx,
        name,
        n_shards=int(point.param("n_shards", 2)),
        n_requests=int(point.param("n_requests", 12)),
        rate_qps=float(point.param("rate_qps", 20e3)),
        kills=((60e-6, 2),),
        placement=placement,
        resizes=DEFAULT_RESIZES,
        seed_offset=int(point.param("seed_offset", 0)),
    )
    svc = outcome.report["service"]
    cluster = outcome.report["cluster"]
    handoff = cluster["handoff"]
    committed = sum(1 for r in cluster["resizes"] if r.get("committed"))
    row = {
        "dataset": name,
        "placement": placement,
        "resizes": len(cluster["resizes"]),
        "committed": committed,
        "handoff_walks": handoff["walks"],
        "handoff_deferred": handoff["deferred_batches"],
        "rpo_walks": handoff["rpo_walks"],
        "resize_rto_max_ms": handoff["rto"]["max"] * 1e3,
        "live_shards": len(cluster["membership"]["live_shards"]),
        "ok": svc["requests"]["ok"],
        "arrivals": svc["requests"]["arrivals"],
        "audit_violations": cluster["audit"]["violations"],
    }
    return row, outcome.report
