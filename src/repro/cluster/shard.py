"""One cluster shard: a FlashWalker engine driven in drain epochs.

The coordinator advances the cluster in barrier-synchronized epochs.
Each epoch a shard receives a :class:`ShardStepCommand` — walk-segment
batches to inject (global walk id in ``src``, current vertex in
``cur``, leased hops in ``hop``) plus an optional armed power loss —
runs its local simulator to drain, and returns a
:class:`ShardStepResult` with the completed segments, its local clock,
and its health signals.

Failover is built in: every epoch starts with a quiescent engine
checkpoint, so when the armed kill fires mid-epoch the read replica is
"promoted" by restoring that checkpoint (its state is exactly what the
shard's durable checkpoint + walk journal reconstruct — the measured
catch-up cost is the engine's journal-replay RTO accounting) and
replaying the identical injection schedule.  The replayed epoch is
bit-identical to the uninterrupted one, which is why a killed cluster
run's shard reports match the baseline's outside the failover
timeline.

Both the serial coordinator and the process-pool workers drive this
same class, so execution mode cannot change results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import PowerLossError, SimulationError
from ..walks.spec import WalkSpec
from ..walks.state import WalkSet

__all__ = ["ShardStepCommand", "ShardStepResult", "ShardRuntime"]


@dataclass
class ShardStepCommand:
    """One epoch of work for one shard."""

    epoch: int
    #: Injection batches: ``(t_inject_min, ids, verts, hops)`` — walks
    #: board at ``max(local_now, t_inject_min)`` (migration deliveries
    #: arrive later than local resident walks).
    batches: list = field(default_factory=list)
    #: Seconds after local now at which the armed power loss fires
    #: (None = no kill this epoch).
    kill_delay: float | None = None

    def walk_count(self) -> int:
        return sum(len(ids) for _, ids, _, _ in self.batches)


@dataclass
class ShardStepResult:
    """What one shard's epoch produced."""

    shard_id: int
    epoch: int
    t_start: float
    t_end: float
    injected: int
    #: Completed segments in engine event order: ``(t, ids, verts)``.
    completions: list = field(default_factory=list)
    #: Degradation signals the coordinator feeds its per-shard breaker.
    health: dict = field(default_factory=dict)
    engine_total: int = 0
    engine_completed: int = 0
    #: Replica-promotion record when the armed kill fired (else None).
    failover: dict | None = None


class ShardRuntime:
    """Owns one shard's engine; lives in-process or in a pool worker."""

    def __init__(self, shard_id: int, graph, cfg, seed: int, *,
                 spec_length: int, expected_walks: int, telemetry=None):
        from ..core.flashwalker import FlashWalker

        if not cfg.durability.enabled:
            raise SimulationError(
                f"shard {shard_id}: cluster shards need durability.enabled "
                "(failover replays from checkpoint + walk journal)"
            )
        if cfg.faults.checkpoint_interval > 0:
            raise SimulationError(
                f"shard {shard_id}: periodic checkpoints would land "
                "mid-epoch; the cluster checkpoints every epoch boundary "
                "itself (set faults.checkpoint_interval = 0)"
            )
        self.shard_id = int(shard_id)
        self.fw = FlashWalker(graph, cfg, seed=seed, telemetry=telemetry)
        self._spec_length = int(spec_length)
        self._expected = int(expected_walks)
        self._completions: list = []

    # ------------------------------------------------------------------ setup

    def setup(self) -> float:
        """Open the walk session; returns local readiness time."""
        t0 = self.fw.start_session(
            WalkSpec(length=self._spec_length), expected_walks=self._expected
        )
        self.fw._on_completed = self._collect
        return t0

    def _collect(self, t: float, walks: WalkSet) -> None:
        if len(walks):
            self._completions.append(
                (float(t), walks.src.copy(), walks.cur.copy())
            )

    # ------------------------------------------------------------------- step

    def _schedule_batches(self, batches) -> None:
        fw = self.fw
        for t_min, ids, verts, hops in batches:
            t_inj = max(fw.sim.now, float(t_min))
            # Copy: the engine advances walk arrays in place, and a
            # promotion replays these same batches — they must be as
            # pristine the second time as the first.
            walks = WalkSet(
                np.asarray(ids, dtype=np.int64).copy(),
                np.asarray(verts, dtype=np.int64).copy(),
                np.asarray(hops, dtype=np.int64).copy(),
            )
            fw.sim.at(t_inj, lambda w=walks: fw.inject_walks(w))

    def step(self, cmd: ShardStepCommand) -> ShardStepResult:
        """Run one epoch to drain; recover in place if the kill fires."""
        fw = self.fw
        self._completions = []
        t_start = fw.sim.now
        # Epoch-boundary snapshot: the replica's recovery point.
        fw.checkpoint_now()
        if cmd.kill_delay is not None:
            fw.arm_power_loss(fw.sim.now + float(cmd.kill_delay))
        self._schedule_batches(cmd.batches)
        failover = None
        try:
            fw.sim.run()
        except PowerLossError as err:
            failover = self._promote(cmd, err)
        if not fw._quiescent():
            raise SimulationError(
                f"shard {self.shard_id}: engine not drained at epoch "
                f"{cmd.epoch} barrier (in_transit={fw.in_transit})"
            )
        return ShardStepResult(
            shard_id=self.shard_id,
            epoch=cmd.epoch,
            t_start=t_start,
            t_end=fw.sim.now,
            injected=cmd.walk_count(),
            completions=self._completions,
            health=self._health(),
            engine_total=int(fw.total_walks),
            engine_completed=int(fw.completed_walks),
            failover=failover,
        )

    def _promote(self, cmd: ShardStepCommand, err: PowerLossError) -> dict:
        """Promote the read replica: restore the epoch-start state and
        replay the identical injection schedule.

        The replica's catch-up cost is the engine's RPO/RTO accounting
        (checkpoint restore + journal replay + torn-page repair),
        computed against the crashed timeline *before* the restore
        wipes it.
        """
        fw = self.fw
        snap = fw.latest_checkpoint
        ctx = fw._crash_context(snap)
        pre_crash = len(self._completions)
        fw.restore_for_resume(snap)
        # restore resets the completion hook and discards the crashed
        # timeline's partial epoch; the replay re-produces it exactly.
        fw._on_completed = self._collect
        self._completions = []
        self._schedule_batches(cmd.batches)
        fw.sim.run()
        assert float(err.at) == ctx["t_crash"]
        return {
            "shard": self.shard_id,
            "epoch": cmd.epoch,
            "segments_discarded": pre_crash,
            **ctx,
        }

    # ----------------------------------------------------------------- health

    def _health(self) -> dict:
        """Degradation counters the coordinator's breaker polls."""
        fw = self.fw
        fm = fw.fault_model
        it = getattr(fw, "integrity", None)
        return {
            "chip_failures": int(fm.chip_failures) if fm is not None else 0,
            "reads_exhausted": int(fm.reads_exhausted) if fm is not None else 0,
            "corruption_detected": int(it.detected) if it is not None else 0,
        }

    # ----------------------------------------------------------------- report

    def finalize(self) -> dict:
        """Close the session; returns the shard's engine run report."""
        result = self.fw._finalize_run()
        self.fw._on_completed = None
        return result.to_report(extra={"shard": self.shard_id})
