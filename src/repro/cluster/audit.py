"""Cluster-wide walk/query conservation auditor.

Extends the single-device service auditor's invariants
(:mod:`repro.service.audit`) across shards: every walk the router
created is, at every epoch barrier, in exactly one of QUEUED, LEASED,
MIGRATING, or DONE; per-shard engine totals match the segments the
router leased there; walks credited to queries equal the walks that
finished; queries conserve across ok/timed-out/shed/pending.  The
auditor runs online — every ``audit_interval_epochs`` barriers and
once at the end — so a kill or link fault that loses or duplicates a
walk is caught at the barrier where it happens, not at the end of the
campaign.

Violations raise :class:`~repro.common.errors.InvariantViolation` with
``context="cluster"`` and a *bounded* state dump (walk tables truncate
past ``InvariantViolation.MAX_STATE_ITEMS`` entries), so a 4-shard
chaos soak failing in CI stays readable.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import InvariantViolation

__all__ = ["ClusterAuditor"]

_STATES = ("queued", "leased", "migrating", "done")

#: Above this vertex count ownership is spot-checked at the cut
#: boundaries instead of exhaustively (placements near the int64
#: overflow regime would otherwise need 2**60-element scans).
_EXHAUSTIVE_VERTS = 1 << 20


class ClusterAuditor:
    """Barrier-time consistency checker over one cluster run."""

    def __init__(self, cluster, interval_epochs: int):
        self.cluster = cluster
        self.interval_epochs = interval_epochs
        self.audits = 0
        self.violations_found = 0
        self._last_t = 0.0

    def check_placement(self, placement) -> None:
        """Prove a placement is a partition of the vertex space: every
        vertex owned by exactly one *live* slot, histogram summing to
        ``n_vertices``.  Called at resize prepare and commit barriers so
        router/shards/auditor can never adopt a torn ownership map."""
        violations: list[str] = []
        V = placement.n_vertices
        if V <= _EXHAUSTIVE_VERTS:
            vertices = np.arange(V, dtype=np.int64)
        else:
            probes = [0, V - 1]
            for b in (placement.bounds or ()):
                for v in (b - 1, b):
                    if 0 <= v < V:
                        probes.append(int(v))
            vertices = np.asarray(sorted(set(probes)), dtype=np.int64)
        slots = placement.slot_of(vertices)
        if slots.size and (
            int(slots.min()) < 0 or int(slots.max()) >= placement.n_shards
        ):
            violations.append(
                f"placement epoch {placement.epoch}: slot out of range "
                f"[{int(slots.min())}, {int(slots.max())}] for "
                f"{placement.n_shards} slots"
            )
        else:
            counts = np.bincount(slots, minlength=placement.n_shards)
            if int(counts.sum()) != int(vertices.size):
                violations.append(
                    f"placement epoch {placement.epoch}: {int(counts.sum())} "
                    f"owned of {int(vertices.size)} vertices checked"
                )
            if V <= _EXHAUSTIVE_VERTS and placement.mode == "range" and (
                int(counts.min()) == 0
            ):
                violations.append(
                    f"placement epoch {placement.epoch}: empty range slot "
                    f"(counts {counts.tolist()})"
                )
        if violations:
            self.violations_found += len(violations)
            raise InvariantViolation(
                f"placement audit found {len(violations)} violation(s): "
                f"{violations[0]}",
                violations=violations,
                state={"placement": placement.describe()},
                at=self.cluster.now,
                context="cluster",
            )

    def maybe_audit(self, epoch: int) -> None:
        if self.interval_epochs <= 0:
            return
        if epoch % self.interval_epochs == 0:
            self.audit()

    def audit(self, final: bool = False) -> None:
        cl = self.cluster
        now = cl.now
        self.audits += 1
        violations: list[str] = []

        if now < self._last_t:
            violations.append(
                f"cluster time moved backwards: {self._last_t} -> {now}"
            )
        self._last_t = max(self._last_t, now)

        # Walk conservation: every created walk in exactly one state.
        counts = dict.fromkeys(_STATES, 0)
        for w in cl.walks.values():
            if w.state not in counts:
                violations.append(f"walk {w.wid} in unknown state {w.state!r}")
            else:
                counts[w.state] += 1
        if len(cl.walks) != cl.walks_created:
            violations.append(
                f"walk table holds {len(cl.walks)} walks but router created "
                f"{cl.walks_created} (lost or duplicated ids)"
            )
        accounted = sum(counts.values())
        if accounted != cl.walks_created:
            violations.append(
                "walk conservation: "
                + " + ".join(f"{s} {counts[s]}" for s in _STATES)
                + f" = {accounted} != created {cl.walks_created}"
            )
        if counts["done"] != cl.walks_done:
            violations.append(
                f"done-state walks {counts['done']} != done counter "
                f"{cl.walks_done}"
            )
        if final and accounted != counts["done"]:
            violations.append(
                f"final audit: {accounted - counts['done']} walks not done"
            )

        # No live walk may reside on (or be flying to) a retired shard.
        retired = cl.health.retired
        if retired:
            for w in cl.walks.values():
                if w.state != "done" and w.shard in retired:
                    violations.append(
                        f"walk {w.wid} ({w.state}) resident on retired "
                        f"shard {w.shard}"
                    )

        # Per-shard engines drained and fed exactly what the router
        # leased (physical ids: retired shards keep frozen counters).
        for sid in range(len(cl.engine_totals)):
            total = cl.engine_totals[sid]
            injected = cl.segments_injected[sid]
            if total != injected:
                violations.append(
                    f"shard {sid}: engine boarded {total} segments but "
                    f"router leased {injected}"
                )
            completed = cl.engine_completed[sid]
            if completed != total:
                violations.append(
                    f"shard {sid}: {total - completed} segments in flight "
                    "across an epoch barrier"
                )
            if cl.segments_collected[sid] != completed:
                violations.append(
                    f"shard {sid}: engine completed {completed} segments but "
                    f"router collected {cl.segments_collected[sid]}"
                )

        # Hedged leases: both copies resolve at the barrier they were
        # issued in, so no walk may still carry a hedge shard here; the
        # collected-segment ledger must split exactly into one commit
        # per lease plus the discarded hedge losers (exactly-one-commit
        # duplicate suppression); and every issued hedge produced
        # exactly one winner.
        if cl.ccfg.hedging_enabled:
            for w in cl.walks.values():
                if w.hedge_shard is not None:
                    violations.append(
                        f"walk {w.wid} ({w.state}) still hedged to shard "
                        f"{w.hedge_shard} at the barrier"
                    )
            collected = sum(cl.segments_collected)
            if collected != cl.segments_committed + cl.hedge_wasted_segments:
                violations.append(
                    f"segment ledger: collected {collected} != committed "
                    f"{cl.segments_committed} + hedge-wasted "
                    f"{cl.hedge_wasted_segments}"
                )
            wins = cl.hedge_wins_primary + cl.hedge_wins_hedge
            if wins != cl.hedges_issued:
                violations.append(
                    f"hedge resolution: {cl.hedges_issued} issued but "
                    f"{wins} resolved (primary {cl.hedge_wins_primary} + "
                    f"hedge {cl.hedge_wins_hedge})"
                )
            if cl.hedge_wasted_segments != cl.hedges_issued:
                violations.append(
                    f"hedge waste: {cl.hedges_issued} hedges must discard "
                    f"exactly one loser each, counted "
                    f"{cl.hedge_wasted_segments}"
                )

        # Attribution: finished walks credit exactly one query each.
        credited = sum(st.walks_done for st in cl.states.values())
        if credited != cl.walks_done:
            violations.append(
                f"walks credited to queries ({credited}) != walks done "
                f"({cl.walks_done})"
            )

        # Query conservation.
        responded = cl.ok_count + cl.timed_out_count + cl.shed_count
        pending = sum(1 for st in cl.states.values() if not st.responded)
        if responded + pending != cl.arrivals:
            violations.append(
                f"query conservation: responded {responded} + pending "
                f"{pending} != arrivals {cl.arrivals}"
            )
        if final and pending:
            violations.append(f"final audit: {pending} queries unanswered")

        if violations:
            self.violations_found += len(violations)
            kind = "final cluster audit" if final else "cluster audit"
            raise InvariantViolation(
                f"{kind} at t={now:.6g}s found {len(violations)} "
                f"violation(s): {violations[0]}",
                violations=violations,
                state=self._state_dump(),
                at=now,
                context="cluster",
            )

    def _state_dump(self) -> dict:
        cl = self.cluster
        return {
            "now": cl.now,
            "epoch": cl.epoch,
            "walks_created": cl.walks_created,
            "walks_done": cl.walks_done,
            "arrivals": cl.arrivals,
            "ok": cl.ok_count,
            "timed_out": cl.timed_out_count,
            "shed": cl.shed_count,
            "engine_totals": list(cl.engine_totals),
            "segments_injected": list(cl.segments_injected),
            # Truncated by InvariantViolation's dump bounding.
            "walk_table": [
                (w.wid, w.state, w.shard, w.remaining)
                for w in cl.walks.values()
                if w.state != "done"
            ],
            "pending_queries": sorted(
                qid for qid, st in cl.states.items() if not st.responded
            ),
        }

    def stats(self) -> dict:
        return {
            "interval_epochs": self.interval_epochs,
            "audits": self.audits,
            "violations": self.violations_found,
        }
