"""Fault-tolerant multi-device cluster serving (DESIGN.md §11).

A :class:`ClusterService` routes walk queries over N simulated
FlashWalker shards with partition-aware vertex placement, cross-shard
walk migration over a fault-injected network link, per-shard circuit
breakers, replica promotion on shard kills, and cluster-wide graceful
degradation — all deterministic for a given seed, byte-identical
between serial and process-pool execution.
"""

from .audit import ClusterAuditor
from .cluster import ClusterOutcome, ClusterService
from .config import ClusterConfig
from .health import HealthBoard, ShardHealthProxy
from .link import NetworkLink
from .placement import VertexPlacement
from .pool import ShardHosts
from .shard import ShardRuntime, ShardStepCommand, ShardStepResult

__all__ = [
    "ClusterAuditor",
    "ClusterConfig",
    "ClusterOutcome",
    "ClusterService",
    "HealthBoard",
    "NetworkLink",
    "ShardHealthProxy",
    "ShardHosts",
    "ShardRuntime",
    "ShardStepCommand",
    "ShardStepResult",
    "VertexPlacement",
]
