"""Fault-tolerant multi-device cluster serving (DESIGN.md §11).

A :class:`ClusterService` routes walk queries over N simulated
FlashWalker shards with partition-aware vertex placement, cross-shard
walk migration over a fault-injected network link, per-shard circuit
breakers, replica promotion on shard kills, and cluster-wide graceful
degradation — all deterministic for a given seed, byte-identical
between serial and process-pool execution.  Elastic membership
(DESIGN.md §14) makes the shard set dynamic: the
:class:`~repro.cluster.resize.ResizeController` drives live grow /
shrink / rebalance through a walk-preserving prepare → transfer →
commit handoff with tested rollback.
"""

from .audit import ClusterAuditor
from .cluster import ClusterOutcome, ClusterService
from .config import ClusterConfig
from .health import HealthBoard, ShardHealthProxy
from .link import NetworkLink
from .placement import VertexPlacement, even_bounds
from .pool import ShardHosts
from .resize import ResizeController, ResizeRequest, rebalanced_bounds
from .shard import ShardRuntime, ShardStepCommand, ShardStepResult

__all__ = [
    "ClusterAuditor",
    "ClusterConfig",
    "ClusterOutcome",
    "ClusterService",
    "HealthBoard",
    "NetworkLink",
    "ResizeController",
    "ResizeRequest",
    "ShardHealthProxy",
    "ShardHosts",
    "ShardRuntime",
    "ShardStepCommand",
    "ShardStepResult",
    "VertexPlacement",
    "even_bounds",
    "rebalanced_bounds",
]
