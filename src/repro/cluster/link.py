"""Modeled inter-shard network link with seeded faults.

Migration messages ride a shared latency/bandwidth link.  Each attempt
draws seeded loss and corruption faults from a dedicated stream (never
the engines' streams, so cluster runs and single-device runs share
walk trajectories); a failed attempt retransmits after the shared
:class:`~repro.common.backoff.RetryPolicy` delay, and an exhausted
retry loop escalates to a slow reliable path — messages are delayed,
never dropped, so the link can lose packets without the cluster ever
losing a walk.

All transmissions are issued by the coordinator in deterministic
``(epoch, src_shard, dst_shard)`` order, so the fault draws — and with
them every delivery time — are identical across serial and
process-pool executions.
"""

from __future__ import annotations

import numpy as np

from ..common.backoff import RetryPolicy
from ..common.rng import derive_seed

__all__ = ["NetworkLink"]


class NetworkLink:
    """Fault-injected point-to-point delivery between shards."""

    def __init__(self, cfg, seed: int):
        self.cfg = cfg
        self.policy: RetryPolicy = cfg.rpc_policy(seed).validate()
        self._rng = np.random.default_rng(derive_seed(seed, "cluster:link"))
        self.messages = 0
        self.walks_moved = 0
        self.bytes_moved = 0
        self.losses = 0
        self.corruptions = 0
        self.retransmits = 0
        self.escalations = 0
        self.total_delay = 0.0
        # Gray-failure layer: slow windows stretch attempt spans without
        # tripping any fault counter; budget caps bound retransmits per
        # call; ``last_retransmits`` lets callers charge per-query retry
        # budgets for the batch they just sent.
        self.slow_windows: tuple[tuple[float, float, float], ...] = tuple(
            sorted(tuple(w) for w in getattr(cfg, "link_slow_windows", ()))
        )
        self.slow_transmits = 0
        self.slow_delay_added = 0.0
        self.budget_escalations = 0
        self.last_retransmits = 0
        self.last_escalated = False
        # Optional per-(src, dst) traffic accounting.  Pairs touching a
        # retired shard are folded into a single tombstone so a removed
        # shard's counters cannot linger as live reroute/report state.
        self.pair_messages: dict[tuple[int, int], int] = {}
        self.pair_walks: dict[tuple[int, int], int] = {}
        self._retired: set[int] = set()

    def _note_pair(self, src, dst, n_walks: int) -> None:
        if src is None or dst is None:
            return
        key = (int(src), int(dst))
        if key[0] in self._retired or key[1] in self._retired:
            key = (-1, -1)
        self.pair_messages[key] = self.pair_messages.get(key, 0) + 1
        self.pair_walks[key] = self.pair_walks.get(key, 0) + n_walks

    def retire_shard(self, shard_id: int) -> None:
        """Fold a departed shard's per-pair counters into the
        ``("retired", "retired")`` tombstone and refuse future
        attribution to it — stale pairs must not survive a removal."""
        sid = int(shard_id)
        self._retired.add(sid)
        for table in (self.pair_messages, self.pair_walks):
            dead = [k for k in table if sid in k]
            folded = sum(table.pop(k) for k in dead)
            if folded:
                key = (-1, -1)
                table[key] = table.get(key, 0) + folded

    def _span_at(self, t: float, span: float) -> float:
        """One attempt's wire time at send time ``t`` (slow windows
        compound multiplicatively; the common no-window case costs one
        truthiness check)."""
        if not self.slow_windows:
            return span
        factor = 1.0
        for t0, t1, f in self.slow_windows:
            if t0 > t:
                break
            if t < t1:
                factor *= f
        if factor > 1.0:
            self.slow_transmits += 1
            self.slow_delay_added += span * (factor - 1.0)
            return span * factor
        return span

    def transmit(self, t_send: float, n_walks: int,
                 *, src: int | None = None, dst: int | None = None,
                 max_retries: int | None = None) -> float:
        """Deliver one migration batch; returns the delivery time.

        Loss eats the message in flight; corruption is detected at the
        receiver (checksum) and rejected — both cost a full timeout +
        backoff before the retransmit.  After ``rpc_max_attempts``
        failed tries the sender escalates to the reliable fallback
        path, which always succeeds.  ``max_retries`` (per-query retry
        budgets) tightens that bound for one call: once the batch has
        retransmitted that many times it escalates immediately instead
        of burning more attempts past its queries' deadlines.
        """
        cfg = self.cfg
        nbytes = n_walks * cfg.walk_bytes
        span = cfg.link_latency + nbytes / cfg.link_bandwidth
        self.messages += 1
        self.walks_moved += n_walks
        self.bytes_moved += nbytes
        self._note_pair(src, dst, n_walks)
        t = t_send
        attempt = 0
        retries = 0
        escalated = False
        while True:
            lost = float(self._rng.random()) < cfg.link_loss_prob
            corrupt = (not lost) and float(self._rng.random()) < cfg.link_corrupt_prob
            attempt += 1
            wire = self._span_at(t, span)
            if not lost and not corrupt:
                delivery = t + wire
                break
            if lost:
                self.losses += 1
            else:
                self.corruptions += 1
            if self.policy.exhausted(attempt):
                self.escalations += 1
                escalated = True
                delivery = t + wire + cfg.reliable_fallback_latency
                break
            if max_retries is not None and retries >= max_retries:
                # Budget spent: stop gambling on retransmits and take
                # the slow-but-certain path now.
                self.escalations += 1
                self.budget_escalations += 1
                escalated = True
                delivery = t + wire + cfg.reliable_fallback_latency
                break
            self.retransmits += 1
            retries += 1
            # Timeout covers the failed attempt's span, then back off.
            t += wire + self.policy.delay(attempt)
        self.last_retransmits = retries
        self.last_escalated = escalated
        self.total_delay += delivery - t_send
        return delivery

    def stats(self) -> dict:
        out = {
            "messages": self.messages,
            "walks_moved": self.walks_moved,
            "bytes_moved": self.bytes_moved,
            "losses": self.losses,
            "corruptions": self.corruptions,
            "retransmits": self.retransmits,
            "escalations": self.escalations,
            "mean_delay": (
                self.total_delay / self.messages if self.messages else 0.0
            ),
        }
        # Slow-window keys exist only when windows are configured, and
        # pair counters only when callers attribute traffic (handoffs
        # do, plain migrations do not): runs with neither keep the
        # exact legacy key set.
        if self.slow_windows:
            out["slow_transmits"] = self.slow_transmits
            out["slow_delay_added"] = self.slow_delay_added
        if self.budget_escalations:
            out["budget_escalations"] = self.budget_escalations
        if self.pair_walks:
            out["pairs"] = {
                f"{s}->{d}": self.pair_walks[(s, d)]
                for s, d in sorted(self.pair_walks)
            }
            out["retired_pairs_folded"] = self.pair_walks.get((-1, -1), 0)
        return out
