"""Host interface logic (HIL): NVMe command handling over PCIe.

Models the host-visible data path of Section II-C: I/O commands decoded
by the HIL, data moving over ``pcie_lanes`` x 1 GB/s.  Used by the
GraphWalker baseline (all its graph data crosses PCIe) and by
FlashWalker only for the tiny command/result traffic with the host.
"""

from __future__ import annotations

from ..common.config import SSDConfig
from ..common.errors import FlashError
from ..sim.resources import BandwidthLink

__all__ = ["HostInterface", "NVME_COMMAND_OVERHEAD"]

#: Fixed per-command latency: NVMe submission/completion queue round trip
#: plus HIL decode.
NVME_COMMAND_OVERHEAD = 10e-6


class HostInterface:
    """PCIe link + NVMe command accounting."""

    def __init__(self, cfg: SSDConfig, command_overhead: float = NVME_COMMAND_OVERHEAD):
        if command_overhead < 0:
            raise FlashError("command_overhead must be non-negative")
        self.cfg = cfg
        self.command_overhead = command_overhead
        self.pcie = BandwidthLink("pcie", cfg.pcie_bytes_per_sec)
        self.commands = 0

    def submit(self, now: float, nbytes: int | float) -> float:
        """One NVMe command moving ``nbytes``; returns completion time."""
        self.commands += 1
        start = now + self.command_overhead
        return self.pcie.transfer(start, nbytes)

    @property
    def bytes_transferred(self) -> int:
        return self.pcie.bytes_moved

    def utilization(self, elapsed: float) -> float:
        return self.pcie.utilization(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HostInterface(commands={self.commands}, "
            f"bytes={self.bytes_transferred})"
        )
