"""NAND flash timing model: planes, dies, chips.

A **plane** is the unit of array access: one read (35 us), program
(350 us) or erase (2 ms) at a time, with an SRAM page register (Section
II-C).  A **die** groups planes; a **chip** groups dies and additionally
caps how many plane operations can be in flight at once
(``max_concurrent_plane_ops_per_chip``), which is what bounds the paper's
55.8 GB/s aggregate read throughput.

The model is analytic (no events): operations return completion times and
update byte/op counters.  Data *transfer* off the chip is the channel's
job (:mod:`repro.flash.channel`); chip-level accelerators read page
registers directly and never touch the channel bus — the core of
FlashWalker's design.
"""

from __future__ import annotations

from ..common.config import SSDConfig
from ..common.errors import FaultExhaustedError, FlashAddressError, FlashError
from ..obs.tracer import PID_FLASH as _PID_FLASH
from ..sim.resources import FcfsResource

__all__ = ["Plane", "Die", "FlashChip"]


class Plane:
    """One flash plane: serial array operations + per-op counters."""

    __slots__ = (
        "plane_id",
        "busy_until",
        "reads",
        "programs",
        "erases",
        "bytes_read",
        "bytes_programmed",
        "busy_time",
    )

    def __init__(self, plane_id: int):
        self.plane_id = plane_id
        self.busy_until = 0.0
        self.reads = 0
        self.programs = 0
        self.erases = 0
        self.bytes_read = 0
        self.bytes_programmed = 0
        self.busy_time = 0.0

    def occupy(self, now: float, duration: float) -> tuple[float, float]:
        """Serialize an array op on this plane; returns (start, end)."""
        if duration < 0:
            raise FlashError(f"plane {self.plane_id}: negative duration")
        start = self.busy_until if self.busy_until > now else now
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        return start, end


class Die:
    """A die: a set of planes (multi-plane ops run concurrently)."""

    __slots__ = ("die_id", "planes")

    def __init__(self, die_id: int, planes_per_die: int):
        if planes_per_die < 1:
            raise FlashError("die needs >= 1 plane")
        self.die_id = die_id
        self.planes = [Plane(p) for p in range(planes_per_die)]


class FlashChip:
    """One flash chip: dies x planes plus a chip-level op concurrency cap.

    Page addressing within the chip is ``(die, plane, block, page)``;
    bounds come from :class:`~repro.common.config.SSDConfig`.
    """

    def __init__(self, chip_id: int, cfg: SSDConfig):
        self.chip_id = chip_id
        self.cfg = cfg
        self.dies = [Die(d, cfg.planes_per_die) for d in range(cfg.dies_per_chip)]
        # The chip's internal op dispatcher: at most N plane ops in flight.
        self._op_slots = FcfsResource(
            f"chip{chip_id}.ops", cfg.max_concurrent_plane_ops_per_chip
        )
        self.reads = 0
        self.programs = 0
        self.erases = 0
        self.bytes_read = 0
        self.bytes_programmed = 0
        self._prog_cursor = 0
        #: Optional :class:`~repro.faults.FaultModel`; None = ideal NAND
        #: and the exact pre-fault-layer code path.
        self.fault_model = None
        #: Optional :class:`~repro.obs.Tracer`; None (default) keeps array
        #: ops at one attribute check of overhead.  The tracer only
        #: observes completion times already computed — it never feeds
        #: back into timing.
        self.tracer = None
        #: Called as ``on_bad_block(chip_id, die, plane)`` when a read
        #: exhausts its retry ladder and the page's block is remapped
        #: (wired to the FTL by :meth:`repro.flash.ssd.SSD.attach_fault_model`).
        self.on_bad_block = None
        #: Optional :class:`~repro.durability.IntegrityTracker`; None =
        #: no end-to-end checksum check on reads (the default path).
        self.integrity = None
        #: Optional :class:`~repro.faults.SlowFaultModel`; None = nominal
        #: latencies and the exact pre-gray-failure code path.  When set,
        #: array ops inside an active slow window are stretched by the
        #: window's factor (no RNG draws — windows are fixed at attach).
        self.slow_model = None

    # -- addressing -----------------------------------------------------------

    def plane(self, die: int, plane: int) -> Plane:
        if not 0 <= die < self.cfg.dies_per_chip:
            raise FlashAddressError(
                f"chip {self.chip_id}: die {die} out of range "
                f"[0, {self.cfg.dies_per_chip})"
            )
        if not 0 <= plane < self.cfg.planes_per_die:
            raise FlashAddressError(
                f"chip {self.chip_id}: plane {plane} out of range "
                f"[0, {self.cfg.planes_per_die})"
            )
        return self.dies[die].planes[plane]

    def check_page_addr(self, die: int, plane: int, block: int, page: int) -> None:
        self.plane(die, plane)  # validates die/plane
        if not 0 <= block < self.cfg.blocks_per_plane:
            raise FlashAddressError(
                f"chip {self.chip_id}: block {block} out of range "
                f"[0, {self.cfg.blocks_per_plane})"
            )
        if not 0 <= page < self.cfg.pages_per_block:
            raise FlashAddressError(
                f"chip {self.chip_id}: page {page} out of range "
                f"[0, {self.cfg.pages_per_block})"
            )

    # -- array operations -------------------------------------------------------

    def _array_op(self, now: float, die: int, plane: int, latency: float) -> float:
        """Run one plane op through the chip dispatcher + the plane."""
        pl = self.plane(die, plane)
        # The op occupies both a chip dispatch slot and the plane for the
        # array time; the tighter of the two constraints dominates.
        slot_end = self._op_slots.acquire_for(now, latency)
        start = max(now, slot_end - latency, pl.busy_until)
        _, end = pl.occupy(start, latency)
        tr = self.tracer
        if tr is not None:
            # [end - latency, end] is the exact plane-occupancy window
            # (plane ops are serial, end = start + latency).
            tr.busy("planes", end - latency, end)
        return end

    def read_page(
        self, now: float, die: int, plane: int, *, recover: bool = True
    ) -> float:
        """Sense one page into the plane's page register; returns end time.

        With a fault model attached, a failing read climbs an escalating
        read-retry ladder (each rung a slower re-sense of the same page,
        charged as extra plane/dispatcher occupancy).  If the ladder runs
        dry, ``recover=True`` (the engine default) remaps the page's
        block — last-ditch decode plus a program into a fresh block, with
        the victim retired through :attr:`on_bad_block` — while
        ``recover=False`` raises :class:`FaultExhaustedError` carrying
        the time the final rung failed.
        """
        sense = self.cfg.read_latency
        sm = self.slow_model
        if sm is not None:
            sense += sm.read_extra(self.chip_id, now, sense)
        end = self._array_op(now, die, plane, sense)
        pl = self.plane(die, plane)
        pl.reads += 1
        pl.bytes_read += self.cfg.page_bytes
        self.reads += 1
        self.bytes_read += self.cfg.page_bytes
        first_sense_end = end
        fm = self.fault_model
        if fm is not None:
            attempts = fm.draw_read()
            if attempts != 0:
                n = attempts if attempts > 0 else fm.cfg.max_read_retries
                # Re-senses of the same page: extra occupancy, no new
                # data.  The ladder re-senses at the (possibly slow-
                # inflated) sense cost, so a retry storm on a gray chip
                # compounds — exactly the pathology being modeled.
                extra = fm.read_retry_latency(sense, n)
                end = self._array_op(end, die, plane, extra)
                tr = self.tracer
                if tr is not None:
                    tr.span(
                        "fault", _PID_FLASH, self.chip_id, "read_retry_ladder",
                        first_sense_end, end,
                        args={"die": die, "plane": plane, "rungs": n,
                              "recovered": attempts > 0},
                    )
                if attempts < 0:
                    end = self._remap_bad_page(end, die, plane, recover)
        it = self.integrity
        if it is not None:
            # End-to-end checksum check: silent corruption passes the
            # ECC/retry ladder above but is caught (and RAIN-repaired)
            # here, delaying the verified data accordingly.
            end = it.on_read(self, die, plane, end)
        tr = self.tracer
        if tr is not None:
            tr.span("flash", _PID_FLASH, self.chip_id, "page_read", now, end,
                    args={"die": die, "plane": plane})
            tr.latency("page_read", end - now)
        return end

    def _remap_bad_page(
        self, now: float, die: int, plane: int, recover: bool
    ) -> float:
        """Recovery of last resort after an exhausted read-retry ladder."""
        fm = self.fault_model
        if not recover or not fm.cfg.remap_on_exhaustion:
            raise FaultExhaustedError(
                f"chip {self.chip_id} die {die} plane {plane}: page read "
                f"failed after {fm.cfg.max_read_retries} retries",
                at=now,
                chip=self.chip_id,
                die=die,
                plane=plane,
            )
        fm.note_remap()
        # Heroic decode (one more full sense worth of soft-decision
        # reads) then copy-out into a fresh block.
        end = self._array_op(now, die, plane, self.cfg.read_latency)
        end = self.program_page(end, die, plane)
        if self.on_bad_block is not None:
            self.on_bad_block(self.chip_id, die, plane)
        tr = self.tracer
        if tr is not None:
            tr.span("fault", _PID_FLASH, self.chip_id, "bad_block_remap", now, end,
                    args={"die": die, "plane": plane})
        return end

    def internal_read_page(self, now: float, die: int, plane: int) -> float:
        """Device-housekeeping page sense (DFTL translation fetch, GC move).

        Occupies the same chip dispatcher slot and plane as a host read —
        housekeeping *contends* with walk traffic, which is the point —
        but skips the fault-retry ladder and the integrity hook: those
        draw from seeded RNG streams, and housekeeping reads consuming
        draws would perturb every fault arrival in default-path runs.
        """
        sense = self.cfg.read_latency
        sm = self.slow_model
        if sm is not None:
            # Slow windows do apply: housekeeping on a gray chip is just
            # as degraded as host reads (and draws no RNG, so the ladder
            # caveat above does not apply).
            sense += sm.read_extra(self.chip_id, now, sense)
        end = self._array_op(now, die, plane, sense)
        pl = self.plane(die, plane)
        pl.reads += 1
        pl.bytes_read += self.cfg.page_bytes
        self.reads += 1
        self.bytes_read += self.cfg.page_bytes
        tr = self.tracer
        if tr is not None:
            tr.span("flash", _PID_FLASH, self.chip_id, "internal_read", now, end,
                    args={"die": die, "plane": plane})
        return end

    def program_page(self, now: float, die: int, plane: int) -> float:
        """Program one page from the page register; returns end time.

        Programs occupy only the target plane, not the chip's read
        dispatcher: modern NAND supports program-suspend so pending reads
        on other planes are not stalled behind 350 us programs.  (Without
        this, walk write-back traffic would serialize subgraph loads —
        a distortion of the paper's near-zero write impact, Fig. 8.)
        """
        pl = self.plane(die, plane)
        prog = self.cfg.program_latency
        sm = self.slow_model
        if sm is not None:
            prog += sm.program_extra(self.chip_id, now, prog)
        _, end = pl.occupy(now, prog)
        pl.programs += 1
        pl.bytes_programmed += self.cfg.page_bytes
        self.programs += 1
        self.bytes_programmed += self.cfg.page_bytes
        tr = self.tracer
        if tr is not None:
            tr.span("flash", _PID_FLASH, self.chip_id, "page_program", now, end,
                    args={"die": die, "plane": plane})
            tr.busy("planes", end - prog, end)
        return end

    def erase_block(self, now: float, die: int, plane: int) -> float:
        """Erase one block; returns end time."""
        end = self._array_op(now, die, plane, self.cfg.erase_latency)
        self.plane(die, plane).erases += 1
        self.erases += 1
        return end

    def program_pages_striped(self, now: float, n_pages: int) -> float:
        """Program ``n_pages`` at a rotating plane cursor (FTL-style
        allocation), so repeated small write-backs spread over all planes
        instead of serializing on one."""
        if n_pages < 1:
            raise FlashError(f"n_pages must be >= 1, got {n_pages}")
        end = now
        ppd = self.cfg.planes_per_die
        for _ in range(n_pages):
            c = self._prog_cursor
            self._prog_cursor += 1
            die = (c // ppd) % self.cfg.dies_per_chip
            plane = c % ppd
            end = max(end, self.program_page(now, die, plane))
        return end

    def read_pages_striped(self, now: float, n_pages: int) -> float:
        """Read ``n_pages`` striped round-robin across this chip's planes.

        Convenience for multi-page subgraph loads; returns the time the
        last page is available.
        """
        if n_pages < 1:
            raise FlashError(f"n_pages must be >= 1, got {n_pages}")
        end = now
        ppd = self.cfg.planes_per_die
        for i in range(n_pages):
            die = (i // ppd) % self.cfg.dies_per_chip
            plane = i % ppd
            end = max(end, self.read_page(now, die, plane))
        return end

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of the chip's op slots busy over ``elapsed``."""
        return self._op_slots.utilization(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlashChip(id={self.chip_id}, reads={self.reads}, "
            f"programs={self.programs})"
        )
