"""Flash Translation Layer: logical-to-physical mapping, allocation, GC.

Implements the FTL responsibilities of Section II-C at behavioral
fidelity: dynamic out-of-place allocation, a page-level mapping table,
greedy garbage collection, and wear counters.  Random-walk workloads are
read-dominated, so GC never triggers in the benchmarks (Fig. 8's
near-zero write bandwidth), but the machinery is real and tested.

Physical page addresses are encoded as a flat integer::

    ppa = (((channel * CPC + chip) * DPC + die) * PPD + plane) * BPP * PGB
          + block * PGB + page

with decode helpers on :class:`FlashAddress`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.config import SSDConfig
from ..common.errors import FlashAddressError, FlashError

__all__ = ["FlashAddress", "FTL"]

_UNMAPPED = np.int64(-1)


@dataclass(frozen=True)
class FlashAddress:
    """Decoded physical page address."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int

    @classmethod
    def decode(cls, ppa: int, cfg: SSDConfig) -> "FlashAddress":
        if ppa < 0:
            raise FlashAddressError(f"negative ppa {ppa}")
        pgb = cfg.pages_per_block
        bpp = cfg.blocks_per_plane
        page = ppa % pgb
        rest = ppa // pgb
        block = rest % bpp
        rest //= bpp
        plane = rest % cfg.planes_per_die
        rest //= cfg.planes_per_die
        die = rest % cfg.dies_per_chip
        rest //= cfg.dies_per_chip
        chip = rest % cfg.chips_per_channel
        channel = rest // cfg.chips_per_channel
        if channel >= cfg.channels:
            raise FlashAddressError(f"ppa {ppa} beyond device capacity")
        return cls(channel, chip, die, plane, block, page)

    def encode(self, cfg: SSDConfig) -> int:
        unit = (
            (self.channel * cfg.chips_per_channel + self.chip) * cfg.dies_per_chip
            + self.die
        ) * cfg.planes_per_die + self.plane
        return (unit * cfg.blocks_per_plane + self.block) * cfg.pages_per_block + self.page


class FTL:
    """Page-level FTL over the geometry of an :class:`SSDConfig`.

    Parameters
    ----------
    cfg:
        device geometry.
    gc_threshold:
        run garbage collection on a plane when its free blocks drop to
        this count (>= 1 keeps one spare for GC copy-forward).
    """

    def __init__(self, cfg: SSDConfig, gc_threshold: int = 2):
        cfg.validate()
        if gc_threshold < 1:
            raise FlashError(f"gc_threshold must be >= 1, got {gc_threshold}")
        self.cfg = cfg
        self.gc_threshold = gc_threshold
        self.total_pages = (
            cfg.total_planes * cfg.blocks_per_plane * cfg.pages_per_block
        )
        self.total_blocks = cfg.total_planes * cfg.blocks_per_plane
        # Logical -> physical page map and the reverse map for GC.
        self.l2p: dict[int, int] = {}
        self.p2l: dict[int, int] = {}
        # Per flat-plane allocation state: an active block with a page
        # cursor, plus an explicit free-block list (blocks reclaimed by
        # GC re-enter the list after erase).
        n_planes = cfg.total_planes
        self._active_block = np.zeros(n_planes, dtype=np.int64)
        self._active_page = np.zeros(n_planes, dtype=np.int64)
        self._free_list: list[list[int]] = [
            list(range(1, cfg.blocks_per_plane)) for _ in range(n_planes)
        ]
        # invalid page counts per (flat plane, block)
        self._invalid = np.zeros((n_planes, cfg.blocks_per_plane), dtype=np.int64)
        self._erase_counts = np.zeros((n_planes, cfg.blocks_per_plane), dtype=np.int64)
        self._next_plane = 0
        self._gc_victim: dict[int, int] = {}
        self.gc_runs = 0
        self.gc_moved_pages = 0
        # Grown-bad blocks per flat plane: permanently out of circulation.
        self._bad_blocks: list[set[int]] = [set() for _ in range(n_planes)]
        self.bad_block_count = 0
        self.bad_block_moved_pages = 0
        # Append-only history of retire_active_block calls (flat plane
        # ids, in order).  Victim selection is deterministic given the
        # call sequence, so replaying the log against a pristine FTL
        # reproduces the full remap state — this is what checkpoint
        # restore does (see repro.faults.checkpoint).
        self.remap_log: list[int] = []

    # -- geometry helpers ------------------------------------------------------

    def flat_plane(self, channel: int, chip: int, die: int, plane: int) -> int:
        c = self.cfg
        if not (
            0 <= channel < c.channels
            and 0 <= chip < c.chips_per_channel
            and 0 <= die < c.dies_per_chip
            and 0 <= plane < c.planes_per_die
        ):
            raise FlashAddressError(
                f"bad plane address ({channel}, {chip}, {die}, {plane})"
            )
        return (
            (channel * c.chips_per_channel + chip) * c.dies_per_chip + die
        ) * c.planes_per_die + plane

    def _plane_addr(self, flat: int) -> tuple[int, int, int, int]:
        c = self.cfg
        plane = flat % c.planes_per_die
        rest = flat // c.planes_per_die
        die = rest % c.dies_per_chip
        rest //= c.dies_per_chip
        chip = rest % c.chips_per_channel
        return rest // c.chips_per_channel, chip, die, plane

    def _ppa(self, flat_plane: int, block: int, page: int) -> int:
        c = self.cfg
        return (flat_plane * c.blocks_per_plane + block) * c.pages_per_block + page

    # -- write path ---------------------------------------------------------------

    def write(self, lpn: int, plane_hint: int | None = None) -> FlashAddress:
        """Map logical page ``lpn`` to a fresh physical page.

        Out-of-place: a previous mapping is invalidated.  ``plane_hint``
        pins the allocation to a flat plane (used to keep a subgraph
        inside one chip); otherwise planes are used round-robin.
        """
        if lpn < 0 or lpn >= self.total_pages:
            raise FlashAddressError(f"lpn {lpn} out of range [0, {self.total_pages})")
        old = self.l2p.get(lpn)
        if old is not None:
            self._invalidate(old)
        if plane_hint is None:
            flat = self._next_plane
            self._next_plane = (self._next_plane + 1) % self.cfg.total_planes
        else:
            if not 0 <= plane_hint < self.cfg.total_planes:
                raise FlashAddressError(f"plane_hint {plane_hint} out of range")
            flat = plane_hint
        ppa = self._allocate_page(flat)
        self.l2p[lpn] = ppa
        self.p2l[ppa] = lpn
        return FlashAddress.decode(ppa, self.cfg)

    def _allocate_page(self, flat: int) -> int:
        c = self.cfg
        if self._active_page[flat] >= c.pages_per_block:
            # active block full: advance to a fresh block
            if len(self._free_list[flat]) <= self.gc_threshold:
                self._garbage_collect(flat)
            self._advance_block(flat)
        block = int(self._active_block[flat])
        page = int(self._active_page[flat])
        self._active_page[flat] += 1
        return self._ppa(flat, block, page)

    def _advance_block(self, flat: int) -> None:
        if not self._free_list[flat]:
            raise FlashError(
                f"plane {flat}: out of free blocks even after GC "
                "(device over-full)"
            )
        self._active_block[flat] = self._free_list[flat].pop(0)
        self._active_page[flat] = 0

    def _invalidate(self, ppa: int) -> None:
        c = self.cfg
        page_i = ppa % c.pages_per_block
        blk = (ppa // c.pages_per_block) % c.blocks_per_plane
        flat = ppa // (c.pages_per_block * c.blocks_per_plane)
        del self.p2l[ppa]
        self._invalid[flat, blk] += 1
        assert 0 <= page_i < c.pages_per_block

    # -- read path ------------------------------------------------------------------

    def lookup(self, lpn: int) -> FlashAddress:
        """Translate a logical page; raises if unmapped."""
        ppa = self.l2p.get(lpn)
        if ppa is None:
            raise FlashAddressError(f"lpn {lpn} is not mapped")
        return FlashAddress.decode(ppa, self.cfg)

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self.l2p

    def trim(self, lpn: int) -> None:
        """Discard a logical page's mapping (TRIM/deallocate)."""
        ppa = self.l2p.pop(lpn, None)
        if ppa is not None:
            self._invalidate(ppa)

    # -- garbage collection ------------------------------------------------------------

    def _garbage_collect(self, flat: int) -> None:
        """Greedy GC on one plane: reclaim the most-invalid block."""
        c = self.cfg
        active = int(self._active_block[flat])
        candidates = self._invalid[flat].copy()
        candidates[active] = -1  # never collect the active block
        candidates[self._free_list[flat]] = -1  # already free
        in_progress = self._gc_victim.get(flat)
        if in_progress is not None:
            candidates[in_progress] = -1  # re-entrant GC during a move
        victim = int(np.argmax(candidates))
        if candidates[victim] <= 0:
            return  # nothing reclaimable; caller may still fail on alloc
        self._gc_victim[flat] = victim
        # Move still-valid pages of the victim forward.
        base = self._ppa(flat, victim, 0)
        for page in range(c.pages_per_block):
            ppa = base + page
            lpn = self.p2l.get(ppa)
            if lpn is None:
                continue
            del self.p2l[ppa]
            new_ppa = self._allocate_page(flat)
            self.l2p[lpn] = new_ppa
            self.p2l[new_ppa] = lpn
            self.gc_moved_pages += 1
        self._invalid[flat, victim] = 0
        self._erase_counts[flat, victim] += 1
        self._free_list[flat].append(victim)
        self._gc_victim.pop(flat, None)
        self.gc_runs += 1

    # -- bad-block management ------------------------------------------------------------

    def retire_active_block(self, flat: int) -> int:
        """Mark the plane's active block grown-bad and retire it.

        The behavioral read path senses pages by plane without an FTL
        lookup, so the failing *block* identity is not available; the FTL
        retires a deterministic victim — the block under the plane's
        write cursor — which preserves the properties that matter: the
        plane permanently loses one block of capacity, surviving pages
        are copy-forwarded, and :meth:`wear_stats` counts the damage.
        Returns the retired block id.
        """
        if not 0 <= flat < self.cfg.total_planes:
            raise FlashAddressError(f"flat plane {flat} out of range")
        self.remap_log.append(int(flat))
        victim = int(self._active_block[flat])
        # Move the write cursor off the bad block before relocating into
        # the plane (mirrors the _allocate_page advance path).
        if len(self._free_list[flat]) <= self.gc_threshold:
            self._garbage_collect(flat)
        self._advance_block(flat)
        # Copy-forward the victim's surviving pages, GC-style.
        base = self._ppa(flat, victim, 0)
        for page in range(self.cfg.pages_per_block):
            ppa = base + page
            lpn = self.p2l.get(ppa)
            if lpn is None:
                continue
            del self.p2l[ppa]
            new_ppa = self._allocate_page(flat)
            self.l2p[lpn] = new_ppa
            self.p2l[new_ppa] = lpn
            self.bad_block_moved_pages += 1
        # The victim never re-enters the free list: with all its pages
        # unmapped and its invalid count cleared, GC can't select it and
        # the allocator can't reach it.
        self._invalid[flat, victim] = 0
        self._bad_blocks[flat].add(victim)
        self.bad_block_count += 1
        return victim

    def bad_blocks_on(self, flat: int) -> frozenset[int]:
        return frozenset(self._bad_blocks[flat])

    # -- placement used by FlashWalker ---------------------------------------------------

    def place_striped(
        self, n_units: int, pages_per_unit: int, start_lpn: int = 0
    ) -> np.ndarray:
        """Write ``n_units`` objects of ``pages_per_unit`` pages each,
        striping units across chips (one unit entirely inside one chip).

        Returns an int array of shape (n_units, 2): (channel, chip index
        within channel) per unit — the placement constraint of Section
        III-D ("subgraphs fetched by a chip-level accelerator must be in
        the same chip's flash planes").
        """
        if n_units < 0 or pages_per_unit < 1:
            raise FlashError(
                f"bad placement request: n_units={n_units}, "
                f"pages_per_unit={pages_per_unit}"
            )
        c = self.cfg
        out = np.zeros((n_units, 2), dtype=np.int64)
        lpn = start_lpn
        for u in range(n_units):
            chip_flat = u % c.total_chips
            channel = chip_flat // c.chips_per_channel
            chip = chip_flat % c.chips_per_channel
            planes_base = self.flat_plane(channel, chip, 0, 0)
            for p in range(pages_per_unit):
                self.write(lpn, plane_hint=planes_base + (p % c.planes_per_chip))
                lpn += 1
            out[u] = (channel, chip)
        return out

    # -- wear statistics -----------------------------------------------------------------

    def wear_stats(self) -> dict[str, float]:
        ec = self._erase_counts
        return {
            "total_erases": float(ec.sum()),
            "max_erase": float(ec.max()),
            "mean_erase": float(ec.mean()),
            "gc_runs": float(self.gc_runs),
            "gc_moved_pages": float(self.gc_moved_pages),
            "bad_blocks": float(self.bad_block_count),
            "bad_block_moved_pages": float(self.bad_block_moved_pages),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FTL(mapped={len(self.l2p)}/{self.total_pages}, "
            f"gc_runs={self.gc_runs})"
        )
