"""Flash Translation Layer: logical-to-physical mapping, allocation, GC.

Implements the FTL responsibilities of Section II-C at behavioral
fidelity: dynamic out-of-place allocation, a page-level mapping table,
greedy garbage collection, and wear counters.  Random-walk workloads are
read-dominated, so GC never triggers in the benchmarks (Fig. 8's
near-zero write bandwidth), but the machinery is real and tested.

Physical page addresses are encoded as a flat integer::

    ppa = (((channel * CPC + chip) * DPC + die) * PPD + plane) * BPP * PGB
          + block * PGB + page

with decode helpers on :class:`FlashAddress`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.config import SSDConfig
from ..common.errors import FlashAddressError, FlashError

__all__ = ["FlashAddress", "FTL"]

_UNMAPPED = np.int64(-1)


@dataclass(frozen=True)
class FlashAddress:
    """Decoded physical page address."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int

    @classmethod
    def decode(cls, ppa: int, cfg: SSDConfig) -> "FlashAddress":
        if ppa < 0:
            raise FlashAddressError(f"negative ppa {ppa}")
        pgb = cfg.pages_per_block
        bpp = cfg.blocks_per_plane
        page = ppa % pgb
        rest = ppa // pgb
        block = rest % bpp
        rest //= bpp
        plane = rest % cfg.planes_per_die
        rest //= cfg.planes_per_die
        die = rest % cfg.dies_per_chip
        rest //= cfg.dies_per_chip
        chip = rest % cfg.chips_per_channel
        channel = rest // cfg.chips_per_channel
        if channel >= cfg.channels:
            raise FlashAddressError(f"ppa {ppa} beyond device capacity")
        return cls(channel, chip, die, plane, block, page)

    def encode(self, cfg: SSDConfig) -> int:
        unit = (
            (self.channel * cfg.chips_per_channel + self.chip) * cfg.dies_per_chip
            + self.die
        ) * cfg.planes_per_die + self.plane
        return (unit * cfg.blocks_per_plane + self.block) * cfg.pages_per_block + self.page


class FTL:
    """Page-level FTL over the geometry of an :class:`SSDConfig`.

    Parameters
    ----------
    cfg:
        device geometry.
    gc_threshold:
        run garbage collection on a plane when its free blocks drop to
        this count (>= 1 keeps one spare for GC copy-forward).
    """

    def __init__(self, cfg: SSDConfig, gc_threshold: int = 2):
        cfg.validate()
        if gc_threshold < 1:
            raise FlashError(f"gc_threshold must be >= 1, got {gc_threshold}")
        self.cfg = cfg
        self.gc_threshold = gc_threshold
        fcfg = getattr(cfg, "ftl", None)
        self.ftl_cfg = fcfg
        #: Wear-leveling allocation and background GC follow FTLConfig;
        #: both default off so the pre-DFTL allocator is byte-identical.
        self.wear_leveling = bool(
            fcfg is not None and fcfg.enabled and fcfg.wear_leveling
        )
        self.background_gc = bool(
            fcfg is not None and fcfg.enabled and fcfg.gc_interval > 0
        )
        self.physical_pages = (
            cfg.total_planes * cfg.blocks_per_plane * cfg.pages_per_block
        )
        # Over-provisioning shrinks the *exported* logical span; the
        # physical geometry (and ppa space) is unchanged.
        if fcfg is not None and fcfg.enabled and fcfg.over_provisioning > 0:
            self.total_pages = max(
                1, int(self.physical_pages * (1.0 - fcfg.over_provisioning))
            )
        else:
            self.total_pages = self.physical_pages
        self.total_blocks = cfg.total_planes * cfg.blocks_per_plane
        # Logical -> physical page map and the reverse map for GC.
        self.l2p: dict[int, int] = {}
        self.p2l: dict[int, int] = {}
        # Per flat-plane allocation state: an active block with a page
        # cursor, plus an explicit free-block list (blocks reclaimed by
        # GC re-enter the list after erase).
        n_planes = cfg.total_planes
        self._active_block = np.zeros(n_planes, dtype=np.int64)
        self._active_page = np.zeros(n_planes, dtype=np.int64)
        self._free_list: list[list[int]] = [
            list(range(1, cfg.blocks_per_plane)) for _ in range(n_planes)
        ]
        # invalid page counts per (flat plane, block)
        self._invalid = np.zeros((n_planes, cfg.blocks_per_plane), dtype=np.int64)
        self._erase_counts = np.zeros((n_planes, cfg.blocks_per_plane), dtype=np.int64)
        self._next_plane = 0
        # Per-plane set of blocks a GC/retire copy-forward is mid-move
        # on: they must be invisible to victim selection until their
        # survivors land (a single dict entry let nested GC re-pick a
        # partially moved victim).
        self._gc_inflight: list[set[int]] = [set() for _ in range(n_planes)]
        # Per-plane stack of already-erased GC victims reserved for the
        # caller's post-GC block advance; _advance_block may consume one
        # as the allocation of last resort mid-move.
        self._gc_reserve: list[list[int]] = [[] for _ in range(n_planes)]
        self.gc_runs = 0
        self.gc_moved_pages = 0
        self.gc_foreground_runs = 0
        self.gc_background_runs = 0
        #: Host/engine pages written through :meth:`write` (the WAF
        #: denominator; GC/retire copy-forwards are the amplification).
        self.data_pages_written = 0
        #: Planes whose allocation state ever left pristine, so
        #: :meth:`state` snapshots stay sparse on big geometries.
        self._touched: set[int] = set()
        # Grown-bad blocks per flat plane: permanently out of circulation.
        self._bad_blocks: list[set[int]] = [set() for _ in range(n_planes)]
        self.bad_block_count = 0
        self.bad_block_moved_pages = 0
        # Append-only history of retire_active_block calls (flat plane
        # ids, in order).  Victim selection is deterministic given the
        # call sequence, so replaying the log against a pristine FTL
        # reproduces the full remap state — this is what checkpoint
        # restore does (see repro.faults.checkpoint).
        self.remap_log: list[int] = []

    # -- geometry helpers ------------------------------------------------------

    def flat_plane(self, channel: int, chip: int, die: int, plane: int) -> int:
        c = self.cfg
        if not (
            0 <= channel < c.channels
            and 0 <= chip < c.chips_per_channel
            and 0 <= die < c.dies_per_chip
            and 0 <= plane < c.planes_per_die
        ):
            raise FlashAddressError(
                f"bad plane address ({channel}, {chip}, {die}, {plane})"
            )
        return (
            (channel * c.chips_per_channel + chip) * c.dies_per_chip + die
        ) * c.planes_per_die + plane

    def _plane_addr(self, flat: int) -> tuple[int, int, int, int]:
        c = self.cfg
        plane = flat % c.planes_per_die
        rest = flat // c.planes_per_die
        die = rest % c.dies_per_chip
        rest //= c.dies_per_chip
        chip = rest % c.chips_per_channel
        return rest // c.chips_per_channel, chip, die, plane

    def _ppa(self, flat_plane: int, block: int, page: int) -> int:
        c = self.cfg
        return (flat_plane * c.blocks_per_plane + block) * c.pages_per_block + page

    # -- write path ---------------------------------------------------------------

    def write(self, lpn: int, plane_hint: int | None = None) -> FlashAddress:
        """Map logical page ``lpn`` to a fresh physical page.

        Out-of-place: a previous mapping is invalidated.  ``plane_hint``
        pins the allocation to a flat plane (used to keep a subgraph
        inside one chip); otherwise planes are used round-robin.
        """
        if lpn < 0 or lpn >= self.total_pages:
            raise FlashAddressError(f"lpn {lpn} out of range [0, {self.total_pages})")
        old = self.l2p.get(lpn)
        if old is not None:
            self._invalidate(old)
        if plane_hint is None:
            flat = self._next_plane
            self._next_plane = (self._next_plane + 1) % self.cfg.total_planes
        else:
            if not 0 <= plane_hint < self.cfg.total_planes:
                raise FlashAddressError(f"plane_hint {plane_hint} out of range")
            flat = plane_hint
        ppa = self._allocate_page(flat)
        self.l2p[lpn] = ppa
        self.p2l[ppa] = lpn
        self.data_pages_written += 1
        return FlashAddress.decode(ppa, self.cfg)

    def _allocate_page(self, flat: int) -> int:
        c = self.cfg
        self._touched.add(flat)
        if self._active_page[flat] >= c.pages_per_block:
            # Active block full: advance to a fresh block.  With
            # background GC the engine reclaims space on its own
            # schedule, so the allocator only collects synchronously as
            # an emergency (free list empty); otherwise it keeps the
            # original threshold-triggered foreground GC.
            free = self._free_list[flat]
            if self.background_gc:
                if not free:
                    self._garbage_collect(flat)
            elif len(free) <= self.gc_threshold:
                self._garbage_collect(flat)
            # GC may already have advanced the cursor: when the move
            # consumed its reserved victim as the allocation of last
            # resort, the active block is that victim, partially filled
            # by survivors — advancing again would strand its remaining
            # pages and (on a full plane) raise a spurious device-full.
            if self._active_page[flat] >= c.pages_per_block:
                self._advance_block(flat)
        block = int(self._active_block[flat])
        page = int(self._active_page[flat])
        self._active_page[flat] += 1
        return self._ppa(flat, block, page)

    def _advance_block(self, flat: int) -> None:
        free = self._free_list[flat]
        if not free:
            # Allocation of last resort: a GC copy-forward in progress
            # has already *erased* its victim even if the survivors are
            # still moving — consuming it here is what keeps a near-full
            # plane from raising device-full mid-move (the victim's
            # erase must be visible to allocation).
            reserve = self._gc_reserve[flat]
            if reserve:
                blk = reserve.pop()
                self._gc_inflight[flat].discard(blk)
                self._active_block[flat] = blk
                self._active_page[flat] = 0
                return
            raise FlashError(
                f"plane {flat}: out of free blocks even after GC "
                "(device over-full)"
            )
        if self.wear_leveling and len(free) > 1:
            # Erase-count-aware allocation: take the least-worn free
            # block (ties break to the lowest block id, deterministic).
            ec = self._erase_counts[flat]
            idx = min(range(len(free)), key=lambda i: (ec[free[i]], free[i]))
            self._active_block[flat] = free.pop(idx)
        else:
            self._active_block[flat] = free.pop(0)
        self._active_page[flat] = 0

    def _invalidate(self, ppa: int) -> None:
        c = self.cfg
        page_i = ppa % c.pages_per_block
        blk = (ppa // c.pages_per_block) % c.blocks_per_plane
        flat = ppa // (c.pages_per_block * c.blocks_per_plane)
        del self.p2l[ppa]
        self._invalid[flat, blk] += 1
        assert 0 <= page_i < c.pages_per_block

    # -- read path ------------------------------------------------------------------

    def lookup(self, lpn: int) -> FlashAddress:
        """Translate a logical page; raises if unmapped."""
        ppa = self.l2p.get(lpn)
        if ppa is None:
            raise FlashAddressError(f"lpn {lpn} is not mapped")
        return FlashAddress.decode(ppa, self.cfg)

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self.l2p

    def trim(self, lpn: int) -> None:
        """Discard a logical page's mapping (TRIM/deallocate)."""
        ppa = self.l2p.pop(lpn, None)
        if ppa is not None:
            self._invalidate(ppa)

    # -- garbage collection ------------------------------------------------------------

    def _select_victim(self, flat: int) -> int | None:
        """Greedy victim choice: the plane's most-invalid eligible block."""
        candidates = self._invalid[flat].copy()
        if self._active_page[flat] < self.cfg.pages_per_block:
            # A partially written active block is off limits (collecting
            # it would fight the write cursor), but once it fills it is
            # a block like any other — on a plane whose only invalid
            # pages sit under the cursor, shielding it forever starves
            # GC into a spurious device-full.
            candidates[int(self._active_block[flat])] = -1
        candidates[self._free_list[flat]] = -1  # already free
        for blk in self._gc_inflight[flat]:
            candidates[blk] = -1  # survivors still mid-move
        victim = int(np.argmax(candidates))
        if candidates[victim] <= 0:
            return None  # nothing reclaimable; caller may still fail on alloc
        return victim

    def _collect_block(self, flat: int, victim: int) -> int:
        """Erase-first copy-forward of one victim block; returns pages moved.

        The victim's still-valid lpns are staged, then the block is
        *logically erased* (reverse map cleared, invalid count reset,
        erase counted) **before** the survivors reallocate.  Ordering
        matters: on a near-full plane the copy-forward allocations may
        need the very block being collected — erasing first and holding
        it as a reservation makes it visible to ``_advance_block``
        instead of raising a spurious device-full :class:`FlashError`
        mid-move.  Survivor moves still prefer other blocks (nested GC
        keeps reclaiming the plane as before), so when the reservation
        goes unused the victim joins the free list only after the last
        survivor lands — a half-moved block can never be re-picked.
        """
        base = self._ppa(flat, victim, 0)
        survivors = [
            lpn
            for page in range(self.cfg.pages_per_block)
            if (lpn := self.p2l.pop(base + page, None)) is not None
        ]
        self._invalid[flat, victim] = 0
        self._erase_counts[flat, victim] += 1
        self._gc_inflight[flat].add(victim)
        self._gc_reserve[flat].append(victim)
        for lpn in survivors:
            new_ppa = self._allocate_page(flat)
            self.l2p[lpn] = new_ppa
            self.p2l[new_ppa] = lpn
            self.gc_moved_pages += 1
        if victim in self._gc_inflight[flat]:
            # Reservation unused: release the victim into circulation.
            self._gc_inflight[flat].discard(victim)
            self._gc_reserve[flat].remove(victim)
            self._free_list[flat].append(victim)
        return len(survivors)

    def _garbage_collect(self, flat: int) -> None:
        """Synchronous (foreground) GC: reclaim one block on the plane."""
        victim = self._select_victim(flat)
        if victim is None:
            return
        self._collect_block(flat, victim)
        self.gc_runs += 1
        self.gc_foreground_runs += 1

    def gc_once(self, flat: int) -> dict | None:
        """One background-GC cycle on a plane (driven by engine events).

        Returns ``{"victim", "moved", "lpns"}`` for the engine to charge
        the migration reads/programs and the erase against the owning
        chip's resources, or ``None`` when the plane has nothing
        reclaimable.  ``lpns`` are the survivors whose mapping entries
        the move dirtied (they re-enter the CMT as dirty entries).
        """
        if not 0 <= flat < self.cfg.total_planes:
            raise FlashAddressError(f"flat plane {flat} out of range")
        victim = self._select_victim(flat)
        if victim is None:
            return None
        base = self._ppa(flat, victim, 0)
        lpns = [
            self.p2l[base + page]
            for page in range(self.cfg.pages_per_block)
            if base + page in self.p2l
        ]
        moved = self._collect_block(flat, victim)
        self.gc_runs += 1
        self.gc_background_runs += 1
        return {"victim": victim, "moved": moved, "lpns": lpns}

    def free_blocks(self, flat: int) -> int:
        """Free blocks on a plane (the active block not counted)."""
        return len(self._free_list[flat])

    def gc_watermark(self) -> int:
        """Free-block count at or below which a plane wants background GC."""
        fcfg = self.ftl_cfg
        if fcfg is None or not fcfg.enabled:
            return self.gc_threshold
        reserve = int(np.ceil(fcfg.over_provisioning * self.cfg.blocks_per_plane))
        return max(fcfg.gc_low_water_blocks, reserve)

    def gc_candidates(self, watermark: int | None = None) -> list[int]:
        """Touched planes at/below the free-block watermark, worst first."""
        if watermark is None:
            watermark = self.gc_watermark()
        low = [
            (len(self._free_list[flat]), flat)
            for flat in self._touched
            if len(self._free_list[flat]) <= watermark
        ]
        return [flat for _, flat in sorted(low)]

    # -- bad-block management ------------------------------------------------------------

    def retire_active_block(self, flat: int) -> int:
        """Mark the plane's active block grown-bad and retire it.

        The behavioral read path senses pages by plane without an FTL
        lookup, so the failing *block* identity is not available; the FTL
        retires a deterministic victim — the block under the plane's
        write cursor — which preserves the properties that matter: the
        plane permanently loses one block of capacity, surviving pages
        are copy-forwarded, and :meth:`wear_stats` counts the damage.
        Returns the retired block id.
        """
        if not 0 <= flat < self.cfg.total_planes:
            raise FlashAddressError(f"flat plane {flat} out of range")
        self.remap_log.append(int(flat))
        self._touched.add(flat)
        victim = int(self._active_block[flat])
        # The retiring block must stay invisible to any GC the relocation
        # below triggers: it still has an invalid count and is in neither
        # the free list nor the active slot, so victim selection would
        # otherwise pick it and return a grown-bad block to circulation.
        self._gc_inflight[flat].add(victim)
        try:
            # Move the write cursor off the bad block before relocating
            # into the plane (mirrors the _allocate_page advance path).
            if len(self._free_list[flat]) <= self.gc_threshold:
                self._garbage_collect(flat)
            # GC may already have moved the cursor by consuming its
            # reserved victim; advancing again would strand that
            # partially filled block outside the free list.
            if int(self._active_block[flat]) == victim:
                self._advance_block(flat)
            # Copy-forward the victim's surviving pages, GC-style.
            base = self._ppa(flat, victim, 0)
            for page in range(self.cfg.pages_per_block):
                ppa = base + page
                lpn = self.p2l.get(ppa)
                if lpn is None:
                    continue
                del self.p2l[ppa]
                new_ppa = self._allocate_page(flat)
                self.l2p[lpn] = new_ppa
                self.p2l[new_ppa] = lpn
                self.bad_block_moved_pages += 1
        finally:
            self._gc_inflight[flat].discard(victim)
        # The victim never re-enters the free list: with all its pages
        # unmapped and its invalid count cleared, GC can't select it and
        # the allocator can't reach it.
        self._invalid[flat, victim] = 0
        self._bad_blocks[flat].add(victim)
        self.bad_block_count += 1
        return victim

    def bad_blocks_on(self, flat: int) -> frozenset[int]:
        return frozenset(self._bad_blocks[flat])

    # -- placement used by FlashWalker ---------------------------------------------------

    def place_striped(
        self, n_units: int, pages_per_unit: int, start_lpn: int = 0
    ) -> np.ndarray:
        """Write ``n_units`` objects of ``pages_per_unit`` pages each,
        striping units across chips (one unit entirely inside one chip).

        Returns an int array of shape (n_units, 2): (channel, chip index
        within channel) per unit — the placement constraint of Section
        III-D ("subgraphs fetched by a chip-level accelerator must be in
        the same chip's flash planes").
        """
        if n_units < 0 or pages_per_unit < 1:
            raise FlashError(
                f"bad placement request: n_units={n_units}, "
                f"pages_per_unit={pages_per_unit}"
            )
        c = self.cfg
        out = np.zeros((n_units, 2), dtype=np.int64)
        lpn = start_lpn
        for u in range(n_units):
            chip_flat = u % c.total_chips
            channel = chip_flat // c.chips_per_channel
            chip = chip_flat % c.chips_per_channel
            planes_base = self.flat_plane(channel, chip, 0, 0)
            for p in range(pages_per_unit):
                self.write(lpn, plane_hint=planes_base + (p % c.planes_per_chip))
                lpn += 1
            out[u] = (channel, chip)
        return out

    # -- wear statistics -----------------------------------------------------------------

    def write_amplification(self) -> float:
        """Physical pages programmed per host/engine page written.

        Only data-path amplification (GC + bad-block copy-forwards);
        translation-page writebacks are the DFTL layer's to report.
        """
        data = self.data_pages_written
        if data <= 0:
            return 1.0
        extra = self.gc_moved_pages + self.bad_block_moved_pages
        return (data + extra) / data

    def wear_stats(self) -> dict[str, float]:
        ec = self._erase_counts
        # Retired (grown-bad) blocks can never be erased again, so their
        # historical erase counts must not skew the wear-leveling signal:
        # max/mean cover in-service blocks only, with the retired
        # population reported separately.
        bad_mask = np.zeros(ec.shape, dtype=bool)
        for flat, bad in enumerate(self._bad_blocks):
            if bad:
                bad_mask[flat, list(bad)] = True
        live = ec[~bad_mask]
        retired = ec[bad_mask]
        return {
            "total_erases": float(ec.sum()),
            "max_erase": float(live.max()) if live.size else 0.0,
            "mean_erase": float(live.mean()) if live.size else 0.0,
            "retired_blocks": float(self.bad_block_count),
            "retired_total_erases": float(retired.sum()) if retired.size else 0.0,
            "retired_max_erase": float(retired.max()) if retired.size else 0.0,
            "gc_runs": float(self.gc_runs),
            "gc_foreground_runs": float(self.gc_foreground_runs),
            "gc_background_runs": float(self.gc_background_runs),
            "gc_moved_pages": float(self.gc_moved_pages),
            "data_pages_written": float(self.data_pages_written),
            "write_amplification": float(self.write_amplification()),
            "bad_blocks": float(self.bad_block_count),
            "bad_block_moved_pages": float(self.bad_block_moved_pages),
        }

    # -- snapshot / restore ----------------------------------------------------------------

    def state(self) -> dict:
        """Copy-out of the full mapping/allocation/wear state.

        Background GC makes the FTL's state time-dependent (it is no
        longer derivable by replaying ``place_striped`` + ``remap_log``
        against a pristine FTL), so DFTL-enabled checkpoints snapshot it
        explicitly.  Only *touched* planes are stored — untouched planes
        are pristine by construction — keeping snapshots sparse on
        full-size geometries.
        """
        planes = {}
        for flat in sorted(self._touched):
            inv = self._invalid[flat]
            ecp = self._erase_counts[flat]
            nz_inv = np.flatnonzero(inv)
            nz_ec = np.flatnonzero(ecp)
            planes[int(flat)] = {
                "active_block": int(self._active_block[flat]),
                "active_page": int(self._active_page[flat]),
                "free_list": [int(b) for b in self._free_list[flat]],
                "invalid": [[int(b), int(inv[b])] for b in nz_inv],
                "erase": [[int(b), int(ecp[b])] for b in nz_ec],
                "bad": sorted(int(b) for b in self._bad_blocks[flat]),
            }
        return {
            "l2p": dict(self.l2p),
            "next_plane": int(self._next_plane),
            "planes": planes,
            "counters": {
                "gc_runs": self.gc_runs,
                "gc_foreground_runs": self.gc_foreground_runs,
                "gc_background_runs": self.gc_background_runs,
                "gc_moved_pages": self.gc_moved_pages,
                "data_pages_written": self.data_pages_written,
                "bad_block_count": self.bad_block_count,
                "bad_block_moved_pages": self.bad_block_moved_pages,
            },
            "remap_log": list(self.remap_log),
        }

    def restore_state(self, data: dict) -> None:
        """Restore a :meth:`state` snapshot onto a pristine FTL."""
        self.l2p = dict(data["l2p"])
        self.p2l = {ppa: lpn for lpn, ppa in self.l2p.items()}
        self._next_plane = int(data["next_plane"])
        for flat, p in data["planes"].items():
            flat = int(flat)
            self._touched.add(flat)
            self._active_block[flat] = p["active_block"]
            self._active_page[flat] = p["active_page"]
            self._free_list[flat] = [int(b) for b in p["free_list"]]
            self._invalid[flat, :] = 0
            for blk, v in p["invalid"]:
                self._invalid[flat, int(blk)] = int(v)
            self._erase_counts[flat, :] = 0
            for blk, v in p["erase"]:
                self._erase_counts[flat, int(blk)] = int(v)
            self._bad_blocks[flat] = set(int(b) for b in p["bad"])
        c = data["counters"]
        self.gc_runs = int(c["gc_runs"])
        self.gc_foreground_runs = int(c["gc_foreground_runs"])
        self.gc_background_runs = int(c["gc_background_runs"])
        self.gc_moved_pages = int(c["gc_moved_pages"])
        self.data_pages_written = int(c["data_pages_written"])
        self.bad_block_count = int(c["bad_block_count"])
        self.bad_block_moved_pages = int(c["bad_block_moved_pages"])
        self.remap_log = list(data["remap_log"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FTL(mapped={len(self.l2p)}/{self.total_pages}, "
            f"gc_runs={self.gc_runs})"
        )
