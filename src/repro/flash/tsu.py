"""Transaction Scheduling Unit (TSU): prioritized flash command queues.

MQSim (the paper's SSD simulator) schedules flash transactions through
per-channel queues with type priorities — reads before programs before
erases — because read latency is user-visible while programs/erases can
wait.  This module reproduces that behavioral layer on top of the raw
chip/channel timing models: callers enqueue transactions, the TSU
dispatches them respecting chip-level plane concurrency and the
priority order, and returns per-transaction completion times.

FlashWalker's accelerators bypass the host TSU by design (they issue
chip-local reads), so the engine does not route through this module;
it exists as substrate completeness, is exercised by tests, and backs
the ``queued`` host-read mode of :class:`~repro.flash.ssd.SSD` users
who want queueing-fidelity host I/O.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum

from ..common.errors import FlashError
from .channel import FlashChannel

__all__ = ["TransactionType", "Transaction", "TransactionScheduler"]


class TransactionType(IntEnum):
    """Priority order: lower value = dispatched first."""

    READ = 0
    PROGRAM = 1
    ERASE = 2


@dataclass(order=True)
class Transaction:
    """One flash transaction awaiting dispatch."""

    sort_key: tuple = field(init=False, repr=False)
    ttype: TransactionType = field(compare=False)
    issue_time: float = field(compare=False)
    chip: int = field(compare=False)
    die: int = field(compare=False)
    plane: int = field(compare=False)
    seq: int = field(compare=False, default=0)
    completion_time: float | None = field(compare=False, default=None)

    def __post_init__(self):
        # Priority by type, then FIFO by issue time and sequence.
        self.sort_key = (int(self.ttype), self.issue_time, self.seq)


class TransactionScheduler:
    """Per-channel TSU over one :class:`FlashChannel`.

    ``enqueue`` accepts transactions in non-decreasing issue-time order;
    ``dispatch_until`` drains everything issued up to a time horizon and
    stamps ``completion_time`` on each transaction.  Reads overtake
    queued programs/erases (read-priority scheduling), matching MQSim's
    default policy.
    """

    def __init__(self, channel: FlashChannel):
        self.channel = channel
        self._queue: list[Transaction] = []
        self._seq = itertools.count()
        self._last_issue = 0.0
        self.dispatched = 0

    def enqueue(
        self,
        ttype: TransactionType,
        issue_time: float,
        chip: int,
        die: int,
        plane: int,
    ) -> Transaction:
        if issue_time < self._last_issue:
            raise FlashError(
                f"transactions must be enqueued in time order "
                f"({issue_time} < {self._last_issue})"
            )
        self._last_issue = issue_time
        self.channel.chip(chip).check_page_addr(die, plane, 0, 0)
        txn = Transaction(
            ttype=ttype,
            issue_time=issue_time,
            chip=chip,
            die=die,
            plane=plane,
            seq=next(self._seq),
        )
        heapq.heappush(self._queue, txn)
        return txn

    @property
    def pending(self) -> int:
        return len(self._queue)

    def dispatch_until(self, horizon: float) -> list[Transaction]:
        """Dispatch every queued transaction issued at or before ``horizon``.

        Returns the dispatched transactions in dispatch order with
        ``completion_time`` set.  Data transfers for reads cross the
        channel bus after the array op; programs pay the bus before the
        array op; erases have no data phase.
        """
        done: list[Transaction] = []
        deferred: list[Transaction] = []
        cfg = self.channel.cfg
        while self._queue:
            txn = heapq.heappop(self._queue)
            if txn.issue_time > horizon:
                deferred.append(txn)
                continue
            chip = self.channel.chip(txn.chip)
            start = txn.issue_time
            if txn.ttype is TransactionType.READ:
                sensed = chip.read_page(start, txn.die, txn.plane)
                txn.completion_time = self.channel.bus.transfer(
                    sensed, cfg.page_bytes
                )
            elif txn.ttype is TransactionType.PROGRAM:
                arrived = self.channel.bus.transfer(start, cfg.page_bytes)
                txn.completion_time = chip.program_page(
                    arrived, txn.die, txn.plane
                )
            else:
                txn.completion_time = chip.erase_block(start, txn.die, txn.plane)
            done.append(txn)
            self.dispatched += 1
        for txn in deferred:
            heapq.heappush(self._queue, txn)
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionScheduler(ch={self.channel.channel_id}, "
            f"pending={self.pending}, dispatched={self.dispatched})"
        )
