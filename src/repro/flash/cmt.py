"""DFTL Cached Mapping Table and translation-layer coordinator.

Real page-mapped FTLs cannot hold the full logical-to-physical table in
controller DRAM; DFTL (Gupta et al., ASPLOS'09) caches a *budgeted*
subset of mapping entries and stores the rest in flash-resident
translation pages.  A lookup that misses the cache reads the owning
translation page through the same chip/channel resources host traffic
uses; evicting a dirty entry writes its translation page back.  That
traffic — plus background GC's valid-page migrations — is what
in-storage walk compute must share the device with, and modeling it is
this module's job.

Two classes:

* :class:`CachedMappingTable` — a pure state machine: entry-granularity
  LRU over lpn keys with batch probe semantics.  No timing, no RNG; it
  only reports which translation pages a probe batch must read and
  write back, so callers (:meth:`repro.flash.ssd.SSD.dftl_probe`)
  charge the hardware and same-seed runs stay byte-identical.
* :class:`DFTL` — the per-device coordinator: owns the CMT, the
  circular log region engine write streams rotate through, translation
  page placement, and write-amplification accounting.

Everything here is opt-in via :class:`~repro.common.config.FTLConfig`;
with ``enabled=False`` neither class is constructed.
"""

from __future__ import annotations

from collections import OrderedDict

from ..common.config import SSDConfig
from ..common.errors import ConfigError, FlashError

__all__ = ["CachedMappingTable", "CMTCharge", "DFTL"]


class CMTCharge:
    """Hardware work one probe batch incurred (translation-page ids)."""

    __slots__ = ("hits", "misses", "tpage_reads", "tpage_writebacks")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        #: Distinct translation pages to read (one array read + one bus
        #: transfer each); deduped within the batch — a real controller
        #: fetches a translation page once and resolves every miss on it.
        self.tpage_reads: list[int] = []
        #: Translation pages to write back for dirty evictions (one bus
        #: transfer + one program each), deduped within the batch.
        self.tpage_writebacks: list[int] = []

    def __bool__(self) -> bool:
        return bool(self.tpage_reads or self.tpage_writebacks)


class CachedMappingTable:
    """Entry-granularity LRU cache over logical page numbers.

    ``capacity`` bounds resident entries; ``entries_per_tpage`` groups
    lpns into translation pages (``tpage = lpn // entries_per_tpage``).
    """

    def __init__(self, capacity: int, entries_per_tpage: int):
        if capacity < 1:
            raise ConfigError(f"CMT capacity must be >= 1, got {capacity}")
        if entries_per_tpage < 1:
            raise ConfigError(
                f"entries_per_tpage must be >= 1, got {entries_per_tpage}"
            )
        self.capacity = capacity
        self.entries_per_tpage = entries_per_tpage
        #: lpn -> dirty flag, in LRU order (oldest first).
        self._lru: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.tpage_reads = 0

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def probe(self, lpns, write: bool = False) -> CMTCharge:
        """Translate a batch of lpns, replayed in arrival order.

        Returns the :class:`CMTCharge` the batch incurred.  A write
        probe marks the entry dirty (its translation page must be
        written back when the entry is evicted).
        """
        charge = CMTCharge()
        read_pages: set[int] = set()
        wb_pages: set[int] = set()
        lru = self._lru
        for lpn in lpns:
            lpn = int(lpn)
            if lpn < 0:
                raise FlashError(f"CMT probe of negative lpn {lpn}")
            if lpn in lru:
                charge.hits += 1
                self.hits += 1
                lru[lpn] = lru[lpn] or write
                lru.move_to_end(lpn)
                continue
            charge.misses += 1
            self.misses += 1
            tpage = lpn // self.entries_per_tpage
            if tpage not in read_pages:
                read_pages.add(tpage)
                charge.tpage_reads.append(tpage)
                self.tpage_reads += 1
            while len(lru) >= self.capacity:
                old_lpn, dirty = lru.popitem(last=False)
                self.evictions += 1
                if dirty:
                    old_tp = old_lpn // self.entries_per_tpage
                    self.writebacks += 1
                    if old_tp not in wb_pages:
                        wb_pages.add(old_tp)
                        charge.tpage_writebacks.append(old_tp)
            lru[lpn] = write
        return charge

    def stats(self) -> dict[str, float]:
        return {
            "capacity": float(self.capacity),
            "resident": float(len(self._lru)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": float(self.hit_rate),
            "evictions": float(self.evictions),
            "writebacks": float(self.writebacks),
            "tpage_reads": float(self.tpage_reads),
        }

    # -- snapshot / restore -------------------------------------------------

    def state(self) -> dict:
        return {
            "lru": [[lpn, bool(d)] for lpn, d in self._lru.items()],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "tpage_reads": self.tpage_reads,
        }

    def restore_state(self, data: dict) -> None:
        self._lru = OrderedDict((int(lpn), bool(d)) for lpn, d in data["lru"])
        self.hits = int(data["hits"])
        self.misses = int(data["misses"])
        self.evictions = int(data["evictions"])
        self.writebacks = int(data["writebacks"])
        self.tpage_reads = int(data["tpage_reads"])


class DFTL:
    """Per-device DFTL coordinator (constructed only when enabled).

    Owns the CMT, the circular log region the engine's write-back
    streams (walk spills, journal commits, completed-walk flushes)
    rotate through, and the translation-traffic counters that extend
    the FTL's data-path write amplification.
    """

    def __init__(self, cfg: SSDConfig):
        fcfg = cfg.ftl
        if not fcfg.enabled:
            raise ConfigError("DFTL constructed with FTLConfig.enabled=False")
        self.cfg = cfg
        self.ftl_cfg = fcfg
        self.entries_per_tpage = max(
            1, cfg.page_bytes // fcfg.translation_entry_bytes
        )
        self.cmt = CachedMappingTable(fcfg.cmt_entries, self.entries_per_tpage)
        #: Circular log region for engine write streams; set by the
        #: engine after graph placement (the region sits above the
        #: placed subgraph pages in lpn space).
        self.log_base = 0
        self.log_span = 0
        self._log_cursor = 0
        #: Translation-page traffic (charged by SSD.dftl_probe).
        self.translation_page_reads = 0
        self.translation_page_writes = 0
        #: Optional :class:`~repro.obs.MetricsRegistry`; wired by the
        #: engine when telemetry is on (mirrors FaultModel.telemetry).
        self.telemetry = None

    # -- log region ----------------------------------------------------------

    def set_log_region(self, base: int, span: int) -> None:
        if base < 0 or span < 1:
            raise ConfigError(
                f"bad DFTL log region: base={base}, span={span}"
            )
        self.log_base = int(base)
        self.log_span = int(span)

    def next_log_lpn(self) -> int:
        """Next lpn of the circular write log (wrap => overwrite => GC work)."""
        if self.log_span < 1:
            raise ConfigError("DFTL log region not initialised")
        lpn = self.log_base + (self._log_cursor % self.log_span)
        self._log_cursor += 1
        return lpn

    # -- translation-page placement -------------------------------------------

    def tpage_home(self, tpage: int) -> tuple[int, int]:
        """(die, plane) holding a translation page within the owning chip.

        Deterministic striping so translation reads spread over the
        chip's planes instead of serializing on one.
        """
        c = self.cfg
        die = tpage % c.dies_per_chip
        plane = (tpage // c.dies_per_chip) % c.planes_per_die
        return die, plane

    # -- accounting -----------------------------------------------------------

    def write_amplification(self, ftl) -> float:
        """Device-level WAF: data + GC moves + translation writebacks."""
        data = ftl.data_pages_written
        if data <= 0:
            return 1.0
        extra = (
            ftl.gc_moved_pages
            + ftl.bad_block_moved_pages
            + self.translation_page_writes
        )
        return (data + extra) / data

    def stats(self, ftl) -> dict:
        """The run report's ``ftl`` section (schema v5, additive)."""
        return {
            "enabled": True,
            "cmt": self.cmt.stats(),
            "translation": {
                "entries_per_tpage": float(self.entries_per_tpage),
                "page_reads": float(self.translation_page_reads),
                "page_writes": float(self.translation_page_writes),
            },
            "log_region": {
                "base": float(self.log_base),
                "span": float(self.log_span),
                "pages_written": float(self._log_cursor),
            },
            "write_amplification": float(self.write_amplification(ftl)),
            "wear": ftl.wear_stats(),
        }

    # -- snapshot / restore ----------------------------------------------------

    def state(self) -> dict:
        return {
            "cmt": self.cmt.state(),
            "log_base": self.log_base,
            "log_span": self.log_span,
            "log_cursor": self._log_cursor,
            "translation_page_reads": self.translation_page_reads,
            "translation_page_writes": self.translation_page_writes,
        }

    def restore_state(self, data: dict) -> None:
        self.cmt.restore_state(data["cmt"])
        self.log_base = int(data["log_base"])
        self.log_span = int(data["log_span"])
        self._log_cursor = int(data["log_cursor"])
        self.translation_page_reads = int(data["translation_page_reads"])
        self.translation_page_writes = int(data["translation_page_writes"])
