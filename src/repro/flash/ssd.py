"""Whole-SSD assembly: channels, chips, FTL, DRAM, host interface.

:class:`SSD` is the substrate both engines run on.  GraphWalker uses the
*host path* (:meth:`host_read_bytes`): array reads -> channel bus ->
controller -> PCIe.  FlashWalker's accelerators call into chips and
channel buses directly, bypassing the narrow links — that asymmetry *is*
the paper's contribution, so the SSD exposes both paths explicitly.
"""

from __future__ import annotations

import numpy as np

from ..common.config import DRAMConfig, SSDConfig
from ..common.errors import FlashAddressError, FlashError
from .channel import FlashChannel
from .dram import DRAM
from .ftl import FTL
from .hostif import HostInterface
from .nand import FlashChip

__all__ = ["SSD"]


class SSD:
    """Behavioral SSD with the paper's Table I/III geometry."""

    def __init__(self, cfg: SSDConfig | None = None, dram_cfg: DRAMConfig | None = None):
        self.cfg = (cfg or SSDConfig()).validate()
        self.channels = [FlashChannel(i, self.cfg) for i in range(self.cfg.channels)]
        self.ftl = FTL(self.cfg)
        self.dram = DRAM(dram_cfg or DRAMConfig())
        self.host = HostInterface(self.cfg)
        self.fault_model = None
        self.tracer = None
        self.integrity = None

    def attach_fault_model(self, fault_model) -> None:
        """Wire a :class:`~repro.faults.FaultModel` through the device.

        Every chip and channel bus starts drawing fault outcomes, and
        exhausted page reads retire blocks through the FTL's bad-block
        machinery.  Pass ``None`` to detach (ideal hardware again).
        """
        self.fault_model = fault_model
        for ch in self.channels:
            ch.fault_model = fault_model
            for chip in ch.chips:
                chip.fault_model = fault_model
                chip.on_bad_block = (
                    self._on_bad_block if fault_model is not None else None
                )

    def attach_integrity(self, tracker) -> None:
        """Wire an :class:`~repro.durability.IntegrityTracker` through the
        device: every chip's page reads start running the end-to-end
        checksum check.  Pass ``None`` to detach (the default path, one
        attribute check of overhead)."""
        self.integrity = tracker
        for ch in self.channels:
            for chip in ch.chips:
                chip.integrity = tracker

    def attach_tracer(self, tracer) -> None:
        """Wire a :class:`~repro.obs.Tracer` through the device.

        Every chip and channel bus starts recording spans and busy
        windows.  Pass ``None`` to detach; detached is the default and
        leaves the timing paths at one attribute check of overhead.
        """
        self.tracer = tracer
        for ch in self.channels:
            ch.tracer = tracer
            for chip in ch.chips:
                chip.tracer = tracer

    def _on_bad_block(self, chip_id: int, die: int, plane: int) -> None:
        cpc = self.cfg.chips_per_channel
        flat = self.ftl.flat_plane(chip_id // cpc, chip_id % cpc, die, plane)
        self.ftl.retire_active_block(flat)

    # -- topology ------------------------------------------------------------

    def channel(self, index: int) -> FlashChannel:
        if not 0 <= index < len(self.channels):
            raise FlashAddressError(
                f"channel {index} out of range [0, {len(self.channels)})"
            )
        return self.channels[index]

    def chip(self, channel: int, chip: int) -> FlashChip:
        return self.channel(channel).chip(chip)

    def chip_flat(self, flat_index: int) -> FlashChip:
        """Chip by flat index in [0, total_chips)."""
        cpc = self.cfg.chips_per_channel
        if not 0 <= flat_index < self.cfg.total_chips:
            raise FlashAddressError(
                f"flat chip index {flat_index} out of range "
                f"[0, {self.cfg.total_chips})"
            )
        return self.chip(flat_index // cpc, flat_index % cpc)

    # -- logical I/O through the FTL ------------------------------------------

    def read_lpn_to_controller(self, now: float, lpn: int) -> float:
        """Read one logical page up to the SSD controller (no PCIe)."""
        addr = self.ftl.lookup(lpn)
        ch = self.channel(addr.channel)
        return ch.read_page_to_controller(now, addr.chip, addr.die, addr.plane)

    def write_lpn_from_controller(
        self, now: float, lpn: int, plane_hint: int | None = None
    ) -> float:
        """Allocate + program one logical page from the controller."""
        addr = self.ftl.write(lpn, plane_hint=plane_hint)
        ch = self.channel(addr.channel)
        return ch.write_page_from_controller(now, addr.chip, addr.die, addr.plane)

    # -- host path (GraphWalker's view) ------------------------------------------

    def host_read_bytes(self, now: float, nbytes: int | float) -> float:
        """Sequential host read of ``nbytes`` striped over all channels.

        Internal arrays/channels work in parallel; the host sees the
        *slower* of the internal pipeline and the PCIe link — with Table
        III parameters PCIe (4 GB/s) is slower than 32 channels
        (10.7 GB/s), so large host reads run at PCIe speed, exactly the
        bottleneck Fig. 1 blames.
        """
        if nbytes < 0:
            raise FlashError(f"negative read size {nbytes}")
        n_pages = max(1, int(np.ceil(nbytes / self.cfg.page_bytes)))
        # Internal service time: pages striped perfectly over channels.
        pages_per_channel = -(-n_pages // self.cfg.channels)
        internal = self.cfg.read_latency + pages_per_channel * (
            self.cfg.page_bytes / self.cfg.channel_bytes_per_sec
        )
        # Count array + bus traffic on the channels actually used.
        remaining = n_pages
        for ch in self.channels:
            take = min(pages_per_channel, remaining)
            if take <= 0:
                break
            for p in range(take):
                chip = p % self.cfg.chips_per_channel
                die = (p // self.cfg.chips_per_channel) % self.cfg.dies_per_chip
                plane = p % self.cfg.planes_per_die
                ch.chip(chip).read_page(now, die, plane)
            ch.bus.transfer(now, take * self.cfg.page_bytes)
            remaining -= take
        ready = now + internal
        return self.host.submit(ready, nbytes)

    # -- aggregate accounting ----------------------------------------------------

    def bytes_read_from_planes(self) -> int:
        return sum(ch.bytes_read_from_planes() for ch in self.channels)

    def bytes_programmed_to_planes(self) -> int:
        return sum(ch.bytes_programmed_to_planes() for ch in self.channels)

    def bytes_on_channel_buses(self) -> int:
        return sum(ch.bytes_on_bus for ch in self.channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSD({self.cfg.channels}ch x {self.cfg.chips_per_channel}chips, "
            f"read={self.bytes_read_from_planes()}B)"
        )
