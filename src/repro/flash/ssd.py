"""Whole-SSD assembly: channels, chips, FTL, DRAM, host interface.

:class:`SSD` is the substrate both engines run on.  GraphWalker uses the
*host path* (:meth:`host_read_bytes`): array reads -> channel bus ->
controller -> PCIe.  FlashWalker's accelerators call into chips and
channel buses directly, bypassing the narrow links — that asymmetry *is*
the paper's contribution, so the SSD exposes both paths explicitly.
"""

from __future__ import annotations

import numpy as np

from ..common.config import DRAMConfig, SSDConfig
from ..common.errors import FlashAddressError, FlashError
from .channel import FlashChannel
from .cmt import DFTL
from .dram import DRAM
from .ftl import FTL
from .hostif import HostInterface
from .nand import FlashChip

__all__ = ["SSD"]


class SSD:
    """Behavioral SSD with the paper's Table I/III geometry."""

    def __init__(self, cfg: SSDConfig | None = None, dram_cfg: DRAMConfig | None = None):
        self.cfg = (cfg or SSDConfig()).validate()
        self.channels = [FlashChannel(i, self.cfg) for i in range(self.cfg.channels)]
        self.ftl = FTL(self.cfg)
        self.dram = DRAM(dram_cfg or DRAMConfig())
        self.host = HostInterface(self.cfg)
        self.fault_model = None
        self.slow_model = None
        self.tracer = None
        self.integrity = None
        fcfg = getattr(self.cfg, "ftl", None)
        #: DFTL coordinator (cached mapping table + translation traffic);
        #: None on the default path, where translation is modeled as free.
        self.dftl = DFTL(self.cfg) if fcfg is not None and fcfg.enabled else None

    def attach_fault_model(self, fault_model) -> None:
        """Wire a :class:`~repro.faults.FaultModel` through the device.

        Every chip and channel bus starts drawing fault outcomes, and
        exhausted page reads retire blocks through the FTL's bad-block
        machinery.  Pass ``None`` to detach (ideal hardware again).
        """
        self.fault_model = fault_model
        for ch in self.channels:
            ch.fault_model = fault_model
            for chip in ch.chips:
                chip.fault_model = fault_model
                chip.on_bad_block = (
                    self._on_bad_block if fault_model is not None else None
                )

    def attach_slow_model(self, slow_model) -> None:
        """Wire a :class:`~repro.faults.SlowFaultModel` through the device.

        Chips start stretching array ops and channel buses start
        stretching transfers inside active slow windows.  Pass ``None``
        to detach (nominal latencies, one attribute check of overhead).
        """
        self.slow_model = slow_model
        for ch in self.channels:
            ch.slow_model = slow_model
            for chip in ch.chips:
                chip.slow_model = slow_model

    def attach_integrity(self, tracker) -> None:
        """Wire an :class:`~repro.durability.IntegrityTracker` through the
        device: every chip's page reads start running the end-to-end
        checksum check.  Pass ``None`` to detach (the default path, one
        attribute check of overhead)."""
        self.integrity = tracker
        for ch in self.channels:
            for chip in ch.chips:
                chip.integrity = tracker

    def attach_tracer(self, tracer) -> None:
        """Wire a :class:`~repro.obs.Tracer` through the device.

        Every chip and channel bus starts recording spans and busy
        windows.  Pass ``None`` to detach; detached is the default and
        leaves the timing paths at one attribute check of overhead.
        """
        self.tracer = tracer
        for ch in self.channels:
            ch.tracer = tracer
            for chip in ch.chips:
                chip.tracer = tracer

    def _on_bad_block(self, chip_id: int, die: int, plane: int) -> None:
        cpc = self.cfg.chips_per_channel
        flat = self.ftl.flat_plane(chip_id // cpc, chip_id % cpc, die, plane)
        self.ftl.retire_active_block(flat)

    # -- topology ------------------------------------------------------------

    def channel(self, index: int) -> FlashChannel:
        if not 0 <= index < len(self.channels):
            raise FlashAddressError(
                f"channel {index} out of range [0, {len(self.channels)})"
            )
        return self.channels[index]

    def chip(self, channel: int, chip: int) -> FlashChip:
        return self.channel(channel).chip(chip)

    def chip_flat(self, flat_index: int) -> FlashChip:
        """Chip by flat index in [0, total_chips)."""
        cpc = self.cfg.chips_per_channel
        if not 0 <= flat_index < self.cfg.total_chips:
            raise FlashAddressError(
                f"flat chip index {flat_index} out of range "
                f"[0, {self.cfg.total_chips})"
            )
        return self.chip(flat_index // cpc, flat_index % cpc)

    # -- DFTL translation + background-GC charging -----------------------------

    def _charge_translation(self, now: float, chip_flat: int, charge) -> float:
        """Charge one CMT probe's translation traffic to a chip's resources.

        Translation-page *reads* are blocking (the walk/flush that missed
        cannot proceed until its mapping arrives): array sense plus a bus
        transfer of the page, serialized in probe order.  Dirty-eviction
        *writebacks* are charged (bus + program occupancy) but do not
        extend the returned completion time — the controller fires them
        and moves on.
        """
        dftl = self.dftl
        chip = self.chip_flat(chip_flat)
        ch = self.channels[chip_flat // self.cfg.chips_per_channel]
        end = now
        for tpage in charge.tpage_reads:
            die, plane = dftl.tpage_home(tpage)
            sensed = chip.internal_read_page(end, die, plane)
            end = ch.transfer_meta(sensed, self.cfg.page_bytes)
        dftl.translation_page_reads += len(charge.tpage_reads)
        for tpage in charge.tpage_writebacks:
            die, plane = dftl.tpage_home(tpage)
            arrived = ch.transfer_meta(end, self.cfg.page_bytes)
            chip.program_page(arrived, die, plane)
        dftl.translation_page_writes += len(charge.tpage_writebacks)
        tel = dftl.telemetry
        if tel is not None and (charge.hits or charge.misses):
            if charge.hits:
                tel.counter("ftl_cmt_hits_total").inc(float(charge.hits), now)
            if charge.misses:
                tel.counter("ftl_cmt_misses_total").inc(float(charge.misses), now)
            if charge.tpage_reads:
                tel.counter("ftl_translation_page_reads_total").inc(
                    float(len(charge.tpage_reads)), now
                )
            if charge.tpage_writebacks:
                tel.counter("ftl_translation_page_writes_total").inc(
                    float(len(charge.tpage_writebacks)), now
                )
        return end

    def dftl_probe(
        self, now: float, chip_flat: int, lpns, write: bool = False
    ) -> float:
        """Translate a batch of lpns through the CMT, charging misses.

        No-op (returns ``now``) when DFTL is disabled, keeping the
        default path at one attribute check.  ``chip_flat`` names the
        chip whose accelerator (or whose resident subgraph) issued the
        batch — its dispatcher/planes and its channel's bus absorb the
        translation traffic.
        """
        dftl = self.dftl
        if dftl is None:
            return now
        charge = dftl.cmt.probe(lpns, write=write)
        if not charge:
            return now
        return self._charge_translation(now, chip_flat, charge)

    def ftl_gc_collect(self, now: float, flat: int) -> tuple[float, dict | None]:
        """One background-GC block reclaim on a plane, hardware-charged.

        Runs :meth:`FTL.gc_once` and pays for it: each surviving page is
        an internal read + program serialized on the victim's plane, then
        the erase.  Survivor mapping entries re-enter the CMT dirty, so
        the move also pays translation traffic.  Returns (completion
        time, gc_once result).
        """
        res = self.ftl.gc_once(flat)
        if res is None:
            return now, None
        channel, chip_idx, die, plane = self.ftl._plane_addr(flat)
        chip = self.chip(channel, chip_idx)
        end = now
        for _ in range(res["moved"]):
            end = chip.internal_read_page(end, die, plane)
            end = chip.program_page(end, die, plane)
        end = chip.erase_block(end, die, plane)
        dftl = self.dftl
        if dftl is not None and res["lpns"]:
            charge = dftl.cmt.probe(res["lpns"], write=True)
            if charge:
                end = self._charge_translation(end, channel * self.cfg.chips_per_channel + chip_idx, charge)
        tel = dftl.telemetry if dftl is not None else None
        if tel is not None:
            tel.counter("ftl_gc_runs_total").inc(1.0, now)
            if res["moved"]:
                tel.counter("ftl_gc_moved_pages_total").inc(float(res["moved"]), now)
        return end, res

    # -- logical I/O through the FTL ------------------------------------------

    def read_lpn_to_controller(self, now: float, lpn: int) -> float:
        """Read one logical page up to the SSD controller (no PCIe)."""
        addr = self.ftl.lookup(lpn)
        ch = self.channel(addr.channel)
        return ch.read_page_to_controller(now, addr.chip, addr.die, addr.plane)

    def write_lpn_from_controller(
        self, now: float, lpn: int, plane_hint: int | None = None
    ) -> float:
        """Allocate + program one logical page from the controller."""
        addr = self.ftl.write(lpn, plane_hint=plane_hint)
        ch = self.channel(addr.channel)
        return ch.write_page_from_controller(now, addr.chip, addr.die, addr.plane)

    # -- host path (GraphWalker's view) ------------------------------------------

    def host_read_bytes(self, now: float, nbytes: int | float) -> float:
        """Sequential host read of ``nbytes`` striped over all channels.

        Internal arrays/channels work in parallel; the host sees the
        *slower* of the internal pipeline and the PCIe link — with Table
        III parameters PCIe (4 GB/s) is slower than 32 channels
        (10.7 GB/s), so large host reads run at PCIe speed, exactly the
        bottleneck Fig. 1 blames.
        """
        if nbytes < 0:
            raise FlashError(f"negative read size {nbytes}")
        n_pages = max(1, int(np.ceil(nbytes / self.cfg.page_bytes)))
        # Internal service time: pages striped perfectly over channels.
        pages_per_channel = -(-n_pages // self.cfg.channels)
        internal = self.cfg.read_latency + pages_per_channel * (
            self.cfg.page_bytes / self.cfg.channel_bytes_per_sec
        )
        # Count array + bus traffic on the channels actually used.
        remaining = n_pages
        for ch in self.channels:
            take = min(pages_per_channel, remaining)
            if take <= 0:
                break
            for p in range(take):
                chip = p % self.cfg.chips_per_channel
                die = (p // self.cfg.chips_per_channel) % self.cfg.dies_per_chip
                plane = p % self.cfg.planes_per_die
                ch.chip(chip).read_page(now, die, plane)
            ch.bus.transfer(now, take * self.cfg.page_bytes)
            remaining -= take
        ready = now + internal
        return self.host.submit(ready, nbytes)

    # -- aggregate accounting ----------------------------------------------------

    def bytes_read_from_planes(self) -> int:
        return sum(ch.bytes_read_from_planes() for ch in self.channels)

    def bytes_programmed_to_planes(self) -> int:
        return sum(ch.bytes_programmed_to_planes() for ch in self.channels)

    def bytes_on_channel_buses(self) -> int:
        return sum(ch.bytes_on_bus for ch in self.channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSD({self.cfg.channels}ch x {self.cfg.chips_per_channel}chips, "
            f"read={self.bytes_read_from_planes()}B)"
        )
