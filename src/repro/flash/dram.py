"""On-board DRAM model.

A bandwidth link with DDR4 access latency plus capacity accounting for
the structures the board-level accelerator keeps there: the partition
walk buffer, mapping tables, and cached data (Section III-A/D).  We model
contention at the bus, not per-bank timing — the paper's DRAM traffic
(walk records, table entries) is small relative to flash traffic and
never the bottleneck, but it must be accounted for in board-accelerator
latency.
"""

from __future__ import annotations

from ..common.config import DRAMConfig
from ..common.errors import FlashError
from ..sim.resources import BandwidthLink

__all__ = ["DRAM"]


class DRAM:
    """Shared on-board DRAM: serial bus + named capacity reservations."""

    def __init__(self, cfg: DRAMConfig):
        cfg.validate()
        self.cfg = cfg
        self.bus = BandwidthLink(
            "dram.bus", cfg.peak_bytes_per_sec, latency=cfg.access_latency
        )
        self._reservations: dict[str, int] = {}

    # -- capacity ------------------------------------------------------------

    @property
    def reserved_bytes(self) -> int:
        return sum(self._reservations.values())

    @property
    def free_bytes(self) -> int:
        return self.cfg.capacity_bytes - self.reserved_bytes

    def reserve(self, name: str, nbytes: int) -> None:
        """Claim ``nbytes`` under ``name``; raises if capacity exceeded."""
        if nbytes < 0:
            raise FlashError(f"negative reservation {nbytes} for {name!r}")
        current = self._reservations.get(name, 0)
        if self.reserved_bytes - current + nbytes > self.cfg.capacity_bytes:
            raise FlashError(
                f"DRAM reservation {name!r} of {nbytes} bytes exceeds capacity "
                f"({self.free_bytes + current} free of {self.cfg.capacity_bytes})"
            )
        self._reservations[name] = nbytes

    def release(self, name: str) -> None:
        self._reservations.pop(name, None)

    # -- traffic ------------------------------------------------------------

    def read(self, now: float, nbytes: int | float) -> float:
        """Read ``nbytes``; returns completion time."""
        return self.bus.transfer(now, nbytes)

    def write(self, now: float, nbytes: int | float) -> float:
        """Write ``nbytes``; returns completion time."""
        return self.bus.transfer(now, nbytes)

    @property
    def bytes_transferred(self) -> int:
        return self.bus.bytes_moved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DRAM({self.reserved_bytes}/{self.cfg.capacity_bytes} reserved, "
            f"{self.bytes_transferred} bytes moved)"
        )
