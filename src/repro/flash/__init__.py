"""SSD substrate: NAND timing, channels, FTL, DRAM, host interface."""

from .channel import ONFI_COMMAND_BYTES, FlashChannel
from .cmt import DFTL, CachedMappingTable
from .dram import DRAM
from .ftl import FTL, FlashAddress
from .hostif import NVME_COMMAND_OVERHEAD, HostInterface
from .nand import Die, FlashChip, Plane
from .ssd import SSD
from .tsu import Transaction, TransactionScheduler, TransactionType

__all__ = [
    "ONFI_COMMAND_BYTES",
    "FlashChannel",
    "DFTL",
    "CachedMappingTable",
    "DRAM",
    "FTL",
    "FlashAddress",
    "NVME_COMMAND_OVERHEAD",
    "HostInterface",
    "Die",
    "FlashChip",
    "Plane",
    "SSD",
    "Transaction",
    "TransactionScheduler",
    "TransactionType",
]
