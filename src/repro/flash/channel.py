"""Flash channel model: the ONFI bus plus its chips.

The channel bus is the narrow resource FlashWalker is designed around:
NV-DDR2 at 333 MB/s versus ~1.8 GB/s of plane bandwidth behind it
(Section II-C).  Everything that crosses it — page data to the channel
controller, extended-ONFI commands to chip accelerators, roving walks
moving up, walk buffers flushing down — pays for bus time here, and the
byte counters feed the Fig. 8 channel-bandwidth timeline.
"""

from __future__ import annotations

from ..common.config import SSDConfig
from ..common.errors import FaultExhaustedError, FlashAddressError
from ..obs.tracer import PID_BUS as _PID_BUS
from ..sim.resources import BandwidthLink
from .nand import FlashChip

__all__ = ["FlashChannel", "ONFI_COMMAND_BYTES"]

#: Approximate size of an (extended) ONFI command frame on the bus:
#: command + address cycles + FlashWalker command payload.
ONFI_COMMAND_BYTES = 16


class FlashChannel:
    """One flash channel: a serial bus and ``chips_per_channel`` chips."""

    def __init__(self, channel_id: int, cfg: SSDConfig):
        self.channel_id = channel_id
        self.cfg = cfg
        first_chip = channel_id * cfg.chips_per_channel
        self.chips = [
            FlashChip(first_chip + i, cfg) for i in range(cfg.chips_per_channel)
        ]
        self.bus = BandwidthLink(
            f"channel{channel_id}.bus", cfg.channel_bytes_per_sec
        )
        #: Optional :class:`~repro.faults.FaultModel`; None = clean bus.
        self.fault_model = None
        #: Optional :class:`~repro.obs.Tracer`; None = no recording.
        self.tracer = None
        #: Optional :class:`~repro.faults.SlowFaultModel`; None = nominal
        #: bus.  Inside an active ``channel-bus`` slow window every
        #: transfer is stretched by the window's factor (a degraded link
        #: retraining, not an error — no CRC draw, no retransmission).
        self.slow_model = None

    def _bus_xfer(self, now: float, nbytes: int | float) -> float:
        """One raw bus transfer, stretched if a slow window is active."""
        end = self.bus.transfer(now, nbytes)
        sm = self.slow_model
        if sm is not None:
            nominal = float(nbytes) / self.bus.bytes_per_sec
            extra = sm.bus_extra(self.channel_id, now, nominal)
            if extra > 0.0:
                end = self.bus.stall(end, extra)
        return end

    def chip(self, index: int) -> FlashChip:
        if not 0 <= index < len(self.chips):
            raise FlashAddressError(
                f"channel {self.channel_id}: chip index {index} out of range "
                f"[0, {len(self.chips)})"
            )
        return self.chips[index]

    # -- bus operations -----------------------------------------------------------

    def send_command(self, now: float) -> float:
        """Transfer one command frame; returns completion time.

        Command frames are CRC-protected but tiny, so the fault model
        only corrupts *data* transfers; a corrupted command would be
        re-issued at negligible extra cost.
        """
        end = self._bus_xfer(now, ONFI_COMMAND_BYTES)
        tr = self.tracer
        if tr is not None:
            self._trace_bus_busy(tr, end, ONFI_COMMAND_BYTES)
        return end

    def transfer_data(
        self, now: float, nbytes: int | float, *, recover: bool = True
    ) -> float:
        """Move ``nbytes`` of data over the bus; returns completion time.

        With a fault model attached, a transfer that arrives corrupted is
        retransmitted (after an exponentially backed-off pause) up to
        ``max_crc_retries`` times, each retransmission paying full bus
        time again.  If every retransmission is also corrupted,
        ``recover=True`` (the engine default) performs a link reset and
        one final clean transfer; ``recover=False`` raises
        :class:`FaultExhaustedError`.
        """
        end = self._bus_xfer(now, nbytes)
        tr = self.tracer
        fm = self.fault_model
        if fm is None:
            if tr is not None:
                self._trace_transfer(tr, now, end, end, nbytes)
            return end
        first_end = end
        attempts = fm.draw_transfer()
        if attempts != 0:
            n = attempts if attempts > 0 else fm.cfg.max_crc_retries
            for k in range(1, n + 1):
                end = self._bus_xfer(end + fm.crc_delay(k), nbytes)
                if tr is not None:
                    self._trace_bus_busy(tr, end, nbytes)
            if tr is not None:
                tr.span(
                    "fault", _PID_BUS, self.channel_id, "crc_retransmit",
                    first_end, end,
                    args={"bytes": int(nbytes), "retransmissions": n,
                          "recovered": attempts > 0},
                )
            if attempts < 0:
                if not recover:
                    raise FaultExhaustedError(
                        f"channel {self.channel_id}: transfer of {nbytes} B "
                        f"corrupted after {fm.cfg.max_crc_retries} retransmissions",
                        at=end,
                        channel=self.channel_id,
                    )
                fm.note_crc_reset()
                end = self._bus_xfer(end + fm.cfg.crc_reset_latency, nbytes)
                if tr is not None:
                    tr.instant("fault", _PID_BUS, self.channel_id, "link_reset", end)
                    self._trace_bus_busy(tr, end, nbytes)
        if tr is not None:
            self._trace_transfer(tr, now, first_end, end, nbytes)
        return end

    def transfer_meta(self, now: float, nbytes: int | float) -> float:
        """Move FTL metadata (translation pages) over the bus.

        Charged full bus time — translation traffic steals bandwidth from
        walks, which is what the DFTL layer models — but exempt from the
        CRC fault draws: metadata transfers consuming draws would shift
        every subsequent fault arrival in runs that never enable DFTL's
        counterpart knobs, breaking default-path byte-identity.
        """
        end = self._bus_xfer(now, nbytes)
        tr = self.tracer
        if tr is not None:
            self._trace_bus_busy(tr, end, nbytes)
        return end

    def _trace_bus_busy(self, tr, end: float, nbytes: int | float) -> None:
        """Attribute one raw transfer's bus occupancy ending at ``end``."""
        duration = float(nbytes) / self.bus.bytes_per_sec
        tr.busy("bus", end - duration, end)
        tr.busy(f"bus.ch{self.channel_id}", end - duration, end)

    def _trace_transfer(
        self, tr, issued: float, first_end: float, end: float, nbytes: int | float
    ) -> None:
        """Record a data transfer's span (queueing included) + stats."""
        self._trace_bus_busy(tr, first_end, nbytes)
        tr.span("bus", _PID_BUS, self.channel_id, "xfer", issued, end,
                args={"bytes": int(nbytes)})
        tr.latency("bus_transfer", end - issued)

    def read_page_to_controller(self, now: float, chip: int, die: int, plane: int) -> float:
        """Full channel read: array sense then bus transfer of the page.

        This is the *conventional* data path (what GraphWalker-era SSDs
        do for every page); chip-level accelerators skip the bus half.
        """
        sensed = self.chip(chip).read_page(now, die, plane)
        return self.transfer_data(sensed, self.cfg.page_bytes)

    def write_page_from_controller(
        self, now: float, chip: int, die: int, plane: int
    ) -> float:
        """Full channel write: bus transfer of the page then array program."""
        arrived = self.transfer_data(now, self.cfg.page_bytes)
        return self.chip(chip).program_page(arrived, die, plane)

    # -- accounting ----------------------------------------------------------------

    @property
    def bytes_on_bus(self) -> int:
        return self.bus.bytes_moved

    def bytes_read_from_planes(self) -> int:
        return sum(c.bytes_read for c in self.chips)

    def bytes_programmed_to_planes(self) -> int:
        return sum(c.bytes_programmed for c in self.chips)

    def utilization(self, elapsed: float) -> float:
        return self.bus.utilization(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlashChannel(id={self.channel_id}, chips={len(self.chips)}, "
            f"bus_bytes={self.bytes_on_bus})"
        )
