"""Board-level accelerator state (Section III-D, Fig. 4).

The board accelerator directs roving walks (subgraph mapping table +
dense vertices mapping table + walk query caches), updates walks landing
in its resident hot subgraphs, schedules subgraphs to chip accelerators,
and writes completed / overflow / foreigner walks to flash memory.

This class owns the board-side tables, sinks and timing math; the
scheduler lives in :mod:`repro.core.scheduler` and orchestration in
:mod:`repro.core.flashwalker`.
"""

from __future__ import annotations

import numpy as np

from ..common.config import FlashWalkerConfig
from ..common.errors import ReproError
from .advance import AdvanceResult
from .dense import DenseVertexTable
from .mapping import SubgraphMappingTable, binary_search_steps
from .query_cache import QueryCacheArray

__all__ = ["BoardAccelerator"]


class BoardAccelerator:
    """State of the board-level accelerator."""

    def __init__(self, cfg: FlashWalkerConfig, dense_table: DenseVertexTable):
        self.cfg = cfg
        self.acc = cfg.levels.board
        self.dense_table = dense_table
        self.hot_blocks: list[int] = []
        self.mapping: SubgraphMappingTable | None = None
        self.caches = (
            QueryCacheArray(cfg.n_query_caches, cfg.query_cache_entries)
            if cfg.opt_walk_query
            else None
        )
        #: Bytes accumulated toward the next completed-walk flush.
        self.completed_pending_bytes = 0
        #: Bytes accumulated toward the next foreigner flush.
        self.foreigner_pending_bytes = 0
        #: Optional :class:`~repro.obs.Tracer`; None = no recording.
        self.tracer = None
        # statistics
        self.batches = 0
        self.hops = 0
        self.directed_walks = 0
        self.completed_flushes = 0
        self.foreigner_flushes = 0

    def set_hot_blocks(self, blocks: list[int]) -> None:
        self.hot_blocks = list(blocks)

    def set_mapping(self, mapping: SubgraphMappingTable) -> None:
        """Install the partition's mapping table; query caches reset."""
        self.mapping = mapping
        if self.caches is not None:
            self.caches.invalidate()

    def invalidate_cached_blocks(self, block_ids) -> int:
        """Evict specific blocks from the query caches (chip failover:
        the entries' physical placement is stale).  No-op without
        caches; returns the number of entries removed."""
        if self.caches is None:
            return 0
        return self.caches.invalidate_blocks(block_ids)

    # -- timing ----------------------------------------------------------------------

    def batch_time(self, result: AdvanceResult) -> float:
        """Updater + guider time for hot-subgraph walk updates."""
        upd = (
            (result.hops * self.acc.updater_ops_per_hop + result.bias_steps)
            * self.acc.updater_cycle
            / self.acc.n_updaters
        )
        gid = result.guide_ops * self.acc.guider_cycle / self.acc.n_guiders
        self.batches += 1
        self.hops += result.hops
        t = upd + gid
        tr = self.tracer
        if tr is not None:
            tr.latency("board_batch", t)
        return t

    def query_and_direct(
        self, block_ids: np.ndarray, scoped: bool
    ) -> tuple[float, int, int, int]:
        """Cost of resolving ``block_ids.size`` walk queries.

        ``scoped`` means the walks arrived tagged by the channel's
        approximate search, so a miss searches only ``range_subgraphs``
        entries instead of the whole table.  Returns (time, cache hits,
        cache misses, total search steps).  Binary searches contend for
        ``table_ports``; cache probes and queue moves use the full guider
        array.
        """
        if self.mapping is None:
            raise ReproError("board mapping table not installed")
        n = int(block_ids.size)
        if n == 0:
            return 0.0, 0, 0, 0
        scope = (
            min(self.cfg.range_subgraphs, self.mapping.n_entries)
            if scoped
            else self.mapping.n_entries
        )
        steps_per_search = binary_search_steps(scope)
        if self.caches is not None:
            hits, misses = self.caches.probe_batch(block_ids)
            searches = misses
            probe_ops = n  # one cache probe per walk
        else:
            hits, misses = 0, n
            searches = n
            probe_ops = 0
        total_steps = searches * steps_per_search
        search_time = (
            total_steps * self.acc.guider_cycle / max(1, self.cfg.table_ports)
        )
        # probe + move-to-queue ops distribute over all guiders
        simple_time = (probe_ops + n) * self.acc.guider_cycle / self.acc.n_guiders
        self.directed_walks += n
        return search_time + simple_time, hits, misses, total_steps

    def dense_check_time(self, n_walks: int, n_probes: int) -> float:
        """Bloom query per walk + hash probe per positive."""
        ops = n_walks + n_probes
        return ops * self.acc.guider_cycle / self.acc.n_guiders

    # -- write-back sinks ---------------------------------------------------------------

    def add_completed(self, n_walks: int) -> int:
        """Buffer completed walks; returns bytes to flush now (0 if none)."""
        if n_walks < 0:
            raise ReproError(f"negative walk count {n_walks}")
        self.completed_pending_bytes += n_walks * self.cfg.walk_bytes
        tr = self.tracer
        if tr is not None:
            tr.highwater("buf.completed_bytes", self.completed_pending_bytes)
        if self.completed_pending_bytes >= self.cfg.completed_buffer_bytes:
            out = self.completed_pending_bytes
            self.completed_pending_bytes = 0
            self.completed_flushes += 1
            return out
        return 0

    def add_foreigners(self, n_walks: int) -> int:
        """Buffer foreigner walks; returns bytes to flush now (0 if none)."""
        if n_walks < 0:
            raise ReproError(f"negative walk count {n_walks}")
        self.foreigner_pending_bytes += n_walks * self.cfg.walk_bytes
        tr = self.tracer
        if tr is not None:
            tr.highwater("buf.foreigner_bytes", self.foreigner_pending_bytes)
        if self.foreigner_pending_bytes >= self.cfg.foreigner_buffer_bytes:
            out = self.foreigner_pending_bytes
            self.foreigner_pending_bytes = 0
            self.foreigner_flushes += 1
            return out
        return 0

    def drain_sinks(self) -> int:
        """Final flush of both sinks; returns total bytes."""
        out = self.completed_pending_bytes + self.foreigner_pending_bytes
        self.completed_pending_bytes = 0
        self.foreigner_pending_bytes = 0
        return out
