"""FlashWalker run metrics (feeds Figs. 5, 6, 8).

Byte traffic is recorded twice: whole-run totals (Fig. 6 traffic and
bandwidth comparisons) and time-bucketed series (Fig. 8 timelines).
``flash_read`` counts bytes sensed from planes, ``flash_write`` bytes
programmed, ``channel`` bytes crossing ONFI buses; ``progress`` counts
completed walks over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.stats import StatsRegistry

__all__ = ["RunMetrics", "RunResult"]


class RunMetrics:
    """Live accumulator used by the engine during a run."""

    def __init__(self, bucket: float = 50e-6):
        self.stats = StatsRegistry(bucket=bucket)
        #: Optional :class:`~repro.obs.MetricsRegistry`; when the engine
        #: runs with telemetry enabled the traffic helpers mirror into
        #: labeled series.  None (the default) keeps every hot path at a
        #: single is-None check, same discipline as the tracer.
        self.telemetry = None
        # traffic series
        self.flash_read = self.stats.timeseries("flash_read_bytes")
        self.flash_write = self.stats.timeseries("flash_write_bytes")
        self.channel = self.stats.timeseries("channel_bytes")
        self.dram = self.stats.timeseries("dram_bytes")
        self.progress = self.stats.timeseries("walks_completed")
        # scalar counters
        self.hops = self.stats.counter("hops")
        self.queries = self.stats.counter("walk_queries")
        self.query_steps = self.stats.counter("query_search_steps")
        self.cache_hits = self.stats.counter("query_cache_hits")
        self.cache_misses = self.stats.counter("query_cache_misses")
        self.roving_walks = self.stats.counter("roving_walks")
        self.foreigner_walks = self.stats.counter("foreigner_walks")
        self.spilled_walks = self.stats.counter("spilled_walks")
        self.subgraph_loads = self.stats.counter("subgraph_loads")
        self.hot_hits_channel = self.stats.counter("hot_subgraph_hits_channel")
        self.hot_hits_board = self.stats.counter("hot_subgraph_hits_board")
        self.pre_walks = self.stats.counter("pre_walks")
        self.partition_switches = self.stats.counter("partition_switches")
        self.chip_busy = self.stats.counter("chip_busy_time")
        self.channel_busy = self.stats.counter("channel_accel_busy_time")
        self.board_busy = self.stats.counter("board_accel_busy_time")
        self.stall_time = self.stats.counter("chip_stall_time")
        # resilience counters (always present; nonzero only with faults)
        self.chips_failed = self.stats.counter("chips_failed")
        self.walks_rerouted = self.stats.counter("walks_rerouted")
        self.degraded_loads = self.stats.counter("degraded_loads")
        self.checkpoints = self.stats.counter("checkpoints_taken")

    # -- traffic helpers -------------------------------------------------------

    def record_flash_read(self, t: float, nbytes: int, t_end: float | None = None) -> None:
        if t_end is not None and t_end > t:
            self.flash_read.add_spread(t, t_end, nbytes)
        else:
            self.flash_read.add(t, nbytes)
        mx = self.telemetry
        if mx is not None:
            mx.counter("engine_flash_read_bytes").inc(nbytes, t)

    def record_flash_write(self, t: float, nbytes: int, t_end: float | None = None) -> None:
        if t_end is not None and t_end > t:
            self.flash_write.add_spread(t, t_end, nbytes)
        else:
            self.flash_write.add(t, nbytes)
        mx = self.telemetry
        if mx is not None:
            mx.counter("engine_flash_write_bytes").inc(nbytes, t)

    def record_channel(self, t: float, nbytes: int, t_end: float | None = None) -> None:
        """Attribute channel-bus bytes over the transfer's actual span so
        bandwidth timelines never exceed the physical bus rate."""
        if t_end is not None and t_end > t:
            self.channel.add_spread(t, t_end, nbytes)
        else:
            self.channel.add(t, nbytes)
        mx = self.telemetry
        if mx is not None:
            mx.counter("engine_channel_bytes").inc(nbytes, t)

    def record_dram(self, t: float, nbytes: int, t_end: float | None = None) -> None:
        if t_end is not None and t_end > t:
            self.dram.add_spread(t, t_end, nbytes)
        else:
            self.dram.add(t, nbytes)
        mx = self.telemetry
        if mx is not None:
            mx.counter("engine_dram_bytes").inc(nbytes, t)

    def record_completed(self, t: float, count: int) -> None:
        if count:
            self.progress.add(t, count)
            mx = self.telemetry
            if mx is not None:
                mx.counter("engine_walks_completed").inc(count, t)

    def finalize(self, elapsed: float, total_walks: int) -> "RunResult":
        return RunResult(
            elapsed=elapsed,
            total_walks=total_walks,
            flash_read_bytes=int(self.flash_read.total),
            flash_write_bytes=int(self.flash_write.total),
            channel_bytes=int(self.channel.total),
            dram_bytes=int(self.dram.total),
            hops=int(self.hops.total),
            counters=self.stats.snapshot(),
            metrics=self,
        )


@dataclass
class RunResult:
    """Immutable summary of one FlashWalker (or baseline) run."""

    elapsed: float
    total_walks: int
    flash_read_bytes: int
    flash_write_bytes: int
    channel_bytes: int
    dram_bytes: int
    hops: int
    counters: dict[str, float] = field(default_factory=dict)
    metrics: RunMetrics | None = None
    #: Completed walks' (src, cur=final, hop) records; populated only
    #: when the engine ran with ``record_finals=True``.
    finals: object | None = None
    #: Root seed of the run (stamped by the engine; None for baselines
    #: that do not report one).
    seed: int | None = None
    #: Short hash naming the configuration that produced this result.
    config_fingerprint: str | None = None
    #: The run's :class:`~repro.obs.Tracer` when tracing was enabled.
    trace: object | None = None
    #: SLO section attached by the service layer (:mod:`repro.service`):
    #: query latency percentiles, shed/deadline-miss rates, queue and
    #: breaker counters.  None for plain batch runs, in which case the
    #: report carries no "service" section at all.
    service: dict | None = None
    #: Durability section attached by the engine when
    #: ``DurabilityConfig.enabled``: checkpoint/journal/integrity stats,
    #: plus a ``recovery`` subsection (RPO/RTO of the crash) when the
    #: run came out of :meth:`FlashWalker.recover`.  None for default
    #: runs, in which case the report carries no "durability" section.
    durability: dict | None = None
    #: Telemetry section attached by the engine when it was built with a
    #: :class:`~repro.obs.MetricsConfig`: deterministic metrics series
    #: on the sample grid plus alert-rule firings.  None for default
    #: runs, in which case the report carries no "telemetry" section.
    telemetry: dict | None = None
    #: FTL section attached by the engine when ``FTLConfig.enabled``:
    #: CMT hit/miss stats, translation traffic, write amplification and
    #: wear counters.  None for default runs, in which case the report
    #: carries no "ftl" section.
    ftl: dict | None = None

    @property
    def flash_read_bandwidth(self) -> float:
        """Mean achieved flash read bandwidth (bytes/sec)."""
        return self.flash_read_bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def walks_per_sec(self) -> float:
        return self.total_walks / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def hops_per_sec(self) -> float:
        return self.hops / self.elapsed if self.elapsed > 0 else 0.0

    def bandwidth_series(self, rebins: int = 50) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Fig. 8 series, rebinned to ~``rebins`` buckets over the run.

        Returns name -> (bucket start times, bytes/sec).  Includes the
        walk progression as a cumulative fraction under ``progress``.
        """
        if self.metrics is None:
            raise ValueError("run was finalized without live metrics")
        out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        # The rebin width must be a whole multiple of the raw bucket —
        # otherwise a bin would aggregate more raw time than its width
        # and the computed rate would exceed the physical bus rate — and
        # the mapping uses integer bucket indices so floating-point
        # division can never shift a bucket across a bin boundary.
        raw = self.metrics.flash_read.bucket
        width = max(self.elapsed / max(rebins, 1), raw, 1e-9)
        k = max(1, int(np.ceil(width / raw - 1e-9)))
        width = k * raw
        rebins = max(1, int(np.ceil(self.elapsed / width)) + 1)

        def rebin(series):
            starts, sums = series.buckets()
            if starts.size == 0:
                return np.zeros(rebins)
            raw_idx = np.rint(starts / raw).astype(np.int64)
            idx = np.minimum(raw_idx // k, rebins - 1)
            agg = np.zeros(rebins)
            np.add.at(agg, idx, sums)
            return agg

        for name, series in (
            ("flash_read", self.metrics.flash_read),
            ("flash_write", self.metrics.flash_write),
            ("channel", self.metrics.channel),
        ):
            out[name] = (np.arange(rebins) * width, rebin(series) / width)
        frac = np.cumsum(rebin(self.metrics.progress)) / max(self.total_walks, 1)
        out["progress"] = (np.arange(rebins) * width, frac)
        return out

    def utilization(self) -> dict[str, dict[str, float]]:
        """Per-component utilization summary.

        ``mean_busy`` is busy-seconds per elapsed second — the average
        number of concurrently busy units, so the (single) board
        accelerator stays in [0, 1] while chip/channel aggregates can
        exceed 1.  When the run was traced, the tracer's per-resource
        timelines (planes, buses, ...) contribute mean and peak levels
        too.
        """
        el = self.elapsed
        out: dict[str, dict[str, float]] = {}
        for key, counter in (
            ("board_accel", "board_accel_busy_time"),
            ("channel_accel", "channel_accel_busy_time"),
            ("chip_accel", "chip_busy_time"),
        ):
            busy = self.counters.get(counter, 0.0)
            out[key] = {"mean_busy": busy / el if el > 0 else 0.0}
        if self.trace is not None:
            for name, (_, level) in self.trace.utilization_timelines().items():
                entry = out.setdefault(name, {})
                total = self.trace.stats.series[f"util.{name}"].total
                entry["mean_busy"] = total / el if el > 0 else 0.0
                entry["peak_busy"] = float(level.max()) if level.size else 0.0
        return out

    def to_report(self, *, extra: dict | None = None) -> dict:
        """Versioned, JSON-round-trippable report of this run.

        See :mod:`repro.obs.report` for the schema; trace-derived
        sections appear only when the run was traced.
        """
        from ..obs.report import build_report

        return build_report(self, extra=extra)

    def summary(self) -> str:
        from ..common.units import fmt_bandwidth, fmt_bytes, fmt_time

        return (
            f"t={fmt_time(self.elapsed)} walks={self.total_walks} "
            f"hops={self.hops} read={fmt_bytes(self.flash_read_bytes)} "
            f"write={fmt_bytes(self.flash_write_bytes)} "
            f"chan={fmt_bytes(self.channel_bytes)} "
            f"readBW={fmt_bandwidth(self.flash_read_bandwidth)}"
        )
