"""Bloom filter for the dense-vertices mapping table (Section III-D).

"The bloom filter checks the membership of dense vertices, while the
hash table returns the dense vertex metadata."  A false positive merely
costs one wasted hash-table probe (the paper notes correctness is
preserved); :meth:`false_positive_rate` exposes the analytic rate so
tests can assert the sizing is sane.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import ReproError

__all__ = ["BloomFilter"]

_MIX_1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX_2 = np.uint64(0xC4CEB9FE1A85EC53)


def _splitmix(x: np.ndarray, seed: int) -> np.ndarray:
    """64-bit avalanche hash (splitmix64 finalizer), vectorized."""
    stride = (seed * 0x9E3779B97F4A7C15 + 1) & 0xFFFFFFFFFFFFFFFF
    z = x.astype(np.uint64) + np.uint64(stride)
    z = (z ^ (z >> np.uint64(30))) * _MIX_1
    z = (z ^ (z >> np.uint64(27))) * _MIX_2
    return z ^ (z >> np.uint64(31))


class BloomFilter:
    """Fixed-size Bloom filter over non-negative integer keys."""

    def __init__(self, capacity_bits: int, n_hashes: int = 4):
        if capacity_bits < 8:
            raise ReproError(f"capacity_bits must be >= 8, got {capacity_bits}")
        if not 1 <= n_hashes <= 16:
            raise ReproError(f"n_hashes must be in [1, 16], got {n_hashes}")
        self.n_bits = int(capacity_bits)
        self.n_hashes = n_hashes
        self._bits = np.zeros((self.n_bits + 63) // 64, dtype=np.uint64)
        self.n_added = 0

    @classmethod
    def for_capacity(cls, n_items: int, bits_per_item: int = 10) -> "BloomFilter":
        """Sized for ``n_items`` at ~``bits_per_item`` (10 -> ~1% FPR)."""
        if n_items < 0:
            raise ReproError(f"negative n_items {n_items}")
        bits = max(64, n_items * bits_per_item)
        k = max(1, round(bits_per_item * math.log(2)))
        return cls(bits, min(16, k))

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """(n_keys, n_hashes) bit positions via double hashing."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and keys.min() < 0:
            raise ReproError("BloomFilter keys must be non-negative")
        h1 = _splitmix(keys, 1)
        h2 = _splitmix(keys, 2) | np.uint64(1)  # odd stride
        i = np.arange(self.n_hashes, dtype=np.uint64)
        return ((h1[:, None] + i[None, :] * h2[:, None]) % np.uint64(self.n_bits)).astype(
            np.int64
        )

    def add(self, keys: np.ndarray | int) -> None:
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if keys.size == 0:
            return
        pos = self._positions(keys).ravel()
        words = pos >> 6
        masks = np.uint64(1) << (pos & 63).astype(np.uint64)
        np.bitwise_or.at(self._bits, words, masks)
        self.n_added += keys.size

    def contains(self, keys: np.ndarray | int) -> np.ndarray | bool:
        scalar = np.isscalar(keys)
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._positions(keys)
        words = pos >> 6
        masks = np.uint64(1) << (pos & 63).astype(np.uint64)
        hit = ((self._bits[words] & masks) != 0).all(axis=1)
        if scalar:
            return bool(hit[0])
        return hit

    def false_positive_rate(self) -> float:
        """Analytic FPR given the current load."""
        if self.n_added == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.n_hashes * self.n_added / self.n_bits)
        return fill**self.n_hashes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(bits={self.n_bits}, k={self.n_hashes}, "
            f"added={self.n_added}, fpr~{self.false_positive_rate():.2%})"
        )
