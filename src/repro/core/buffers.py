"""Walk buffering: partition walk buffer, spill pools, sinks.

The board-level accelerator organizes waiting walks by destination
subgraph: one *partition walk buffer* entry per subgraph of the current
partition, in on-board DRAM (Section III-D).  An entry that fills up is
moved to the chip's walk-overflow buffer and flushed to flash; those
walks come back from flash when the subgraph is scheduled.  Dense-walk
entries pack more walks per byte because ``cur`` is implicit in the
block (the beta asymmetry of Eq. 1).

Semantically, walks are never lost: this module tracks exactly which
walks wait where (DRAM vs flash) per block, while the engine charges the
corresponding traffic and latencies.  Pre-walked dense walks carry their
chosen edge index (``pre_edge``), resolved when the block loads.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import BufferOverflowError, ReproError
from ..walks.state import WalkSet

__all__ = ["WalkBatch", "BlockEntry", "PartitionWalkBuffer", "ForeignerStore"]


class WalkBatch:
    """A WalkSet plus optional parallel pre-walked edge indices."""

    __slots__ = ("walks", "pre_edge")

    def __init__(self, walks: WalkSet, pre_edge: np.ndarray | None = None):
        if pre_edge is not None:
            pre_edge = np.asarray(pre_edge, dtype=np.int64)
            if pre_edge.shape != walks.src.shape:
                raise ReproError("pre_edge must align with the walk set")
        self.walks = walks
        self.pre_edge = pre_edge

    def __len__(self) -> int:
        return len(self.walks)

    @staticmethod
    def merge(batches: list["WalkBatch"]) -> "WalkBatch":
        """Concatenate; pre_edge becomes -1 where a batch had none."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return WalkBatch(WalkSet.empty(), np.zeros(0, dtype=np.int64))
        walks = WalkSet.concat([b.walks for b in batches])
        if all(b.pre_edge is None for b in batches):
            return WalkBatch(walks, None)
        parts = [
            b.pre_edge
            if b.pre_edge is not None
            else np.full(len(b), -1, dtype=np.int64)
            for b in batches
        ]
        return WalkBatch(walks, np.concatenate(parts))


class BlockEntry:
    """One partition-walk-buffer entry: buffered (DRAM) + spilled (flash)."""

    __slots__ = ("buffered", "spilled", "buffered_count", "spilled_count")

    def __init__(self):
        self.buffered: list[WalkBatch] = []
        self.spilled: list[WalkBatch] = []
        self.buffered_count = 0
        self.spilled_count = 0

    @property
    def total(self) -> int:
        return self.buffered_count + self.spilled_count

    def push(self, batch: WalkBatch) -> None:
        self.buffered.append(batch)
        self.buffered_count += len(batch)

    def spill_overflow(self, capacity: int) -> int:
        """Move buffered walks beyond ``capacity`` to the spilled side.

        Returns the number of walks spilled.  Spills whole batches from
        the oldest end (FIFO), matching "this entry is moved to the
        walk-overflow buffer ... then flushed to the flash memory".
        """
        if capacity < 0:
            raise BufferOverflowError(
                f"negative entry capacity {capacity}",
                capacity=capacity,
                occupancy=self.buffered_count,
            )
        spilled = 0
        while self.buffered_count > capacity and self.buffered:
            batch = self.buffered.pop(0)
            self.buffered_count -= len(batch)
            self.spilled.append(batch)
            self.spilled_count += len(batch)
            spilled += len(batch)
        return spilled

    def drain(self) -> tuple[WalkBatch, int, int]:
        """Take everything; returns (merged batch, n_buffered, n_spilled)."""
        nb, ns = self.buffered_count, self.spilled_count
        merged = WalkBatch.merge(self.buffered + self.spilled)
        self.buffered = []
        self.spilled = []
        self.buffered_count = 0
        self.spilled_count = 0
        return merged, nb, ns


class PartitionWalkBuffer:
    """All walk-buffer entries of the current partition."""

    def __init__(self, first_block: int, last_block: int, entry_capacity: int,
                 dense_entry_capacity: int, is_dense_block: np.ndarray):
        if not 0 <= first_block <= last_block:
            raise BufferOverflowError(
                f"bad block range [{first_block}, {last_block}]"
            )
        if entry_capacity < 1 or dense_entry_capacity < 1:
            raise BufferOverflowError("entry capacities must be >= 1")
        self.first_block = first_block
        self.last_block = last_block
        self.entry_capacity = entry_capacity
        self.dense_entry_capacity = dense_entry_capacity
        self._is_dense = is_dense_block
        self._entries: dict[int, BlockEntry] = {}
        self.spill_events = 0
        self.walks_spilled = 0

    def _entry(self, block_id: int) -> BlockEntry:
        if not self.first_block <= block_id <= self.last_block:
            raise BufferOverflowError(
                f"block {block_id} outside partition "
                f"[{self.first_block}, {self.last_block}]",
                block=block_id,
            )
        e = self._entries.get(block_id)
        if e is None:
            e = BlockEntry()
            self._entries[block_id] = e
        return e

    def capacity_of(self, block_id: int) -> int:
        return (
            self.dense_entry_capacity
            if self._is_dense[block_id]
            else self.entry_capacity
        )

    def push(self, block_id: int, batch: WalkBatch) -> int:
        """Insert walks; returns how many spilled due to entry overflow."""
        e = self._entry(block_id)
        e.push(batch)
        spilled = e.spill_overflow(self.capacity_of(block_id))
        if spilled:
            self.spill_events += 1
            self.walks_spilled += spilled
        return spilled

    def drain(self, block_id: int) -> tuple[WalkBatch, int, int]:
        """Take all walks waiting for ``block_id``."""
        e = self._entries.pop(block_id, None)
        if e is None:
            return WalkBatch(WalkSet.empty()), 0, 0
        return e.drain()

    def counts(self, block_id: int) -> tuple[int, int]:
        e = self._entries.get(block_id)
        if e is None:
            return 0, 0
        return e.buffered_count, e.spilled_count

    @property
    def total_walks(self) -> int:
        return sum(e.total for e in self._entries.values())

    def blocks_with_walks(self) -> list[int]:
        return [b for b, e in self._entries.items() if e.total > 0]

    def occupancy_errors(self) -> list[str]:
        """Declared-capacity violations, one message per bad entry.

        ``push`` spills past-capacity batches immediately, so any entry
        whose buffered side exceeds its capacity (or with a negative
        count) indicates corrupted accounting.  Used by the service
        layer's online invariant auditor.
        """
        errors = []
        for block, e in self._entries.items():
            cap = self.capacity_of(block)
            if e.buffered_count > cap:
                errors.append(
                    f"pwb entry {block}: buffered {e.buffered_count} "
                    f"exceeds capacity {cap}"
                )
            if e.buffered_count < 0 or e.spilled_count < 0:
                errors.append(
                    f"pwb entry {block}: negative counts "
                    f"({e.buffered_count}, {e.spilled_count})"
                )
        return errors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionWalkBuffer([{self.first_block},{self.last_block}], "
            f"walks={self.total_walks}, spills={self.spill_events})"
        )


class ForeignerStore:
    """Per-partition pools of foreigner walks flushed to flash.

    Walks whose destination lies beyond the current partition cannot be
    resolved by the resident mapping table; they are buffered and
    flushed, then re-read when their partition becomes current.
    """

    def __init__(self, n_partitions: int):
        if n_partitions < 1:
            raise BufferOverflowError(f"need >= 1 partition, got {n_partitions}")
        self.n_partitions = n_partitions
        self._pools: list[list[WalkSet]] = [[] for _ in range(n_partitions)]
        self._counts = np.zeros(n_partitions, dtype=np.int64)

    def push(self, partition_id: int, walks: WalkSet) -> None:
        if not 0 <= partition_id < self.n_partitions:
            raise ReproError(
                f"partition {partition_id} out of range [0, {self.n_partitions})"
            )
        if len(walks):
            self._pools[partition_id].append(walks)
            self._counts[partition_id] += len(walks)

    def drain(self, partition_id: int) -> WalkSet:
        if not 0 <= partition_id < self.n_partitions:
            raise ReproError(
                f"partition {partition_id} out of range [0, {self.n_partitions})"
            )
        walks = WalkSet.concat(self._pools[partition_id])
        self._pools[partition_id] = []
        self._counts[partition_id] = 0
        return walks

    def count(self, partition_id: int) -> int:
        return int(self._counts[partition_id])

    @property
    def total(self) -> int:
        return int(self._counts.sum())

    def partitions_with_walks(self) -> np.ndarray:
        return np.flatnonzero(self._counts > 0)
