"""FlashWalker: the in-storage random-walk accelerator (Sections III-IV).

Orchestrates the three accelerator levels over the SSD substrate with a
discrete-event simulation:

* **Chip level** — loads subgraphs from its own planes (no channel bus),
  drains their walk queues in vectorized batches, stages roving walks.
* **Channel level** — collects roving walks every
  ``roving_collect_interval``, updates walks landing in its hot
  subgraphs, runs the approximate range query, forwards to the board.
* **Board level** — updates walks in board-hot subgraphs, pre-walks
  dense walks, resolves destination subgraphs via the mapping table +
  query caches, maintains the partition walk buffer and foreigner /
  completed sinks, and schedules subgraphs to chips by Eq. 1.

Walk trajectories are simulated exactly; timing is request-accurate
(page reads, bus transfers, accelerator cycle budgets).  See DESIGN.md
Section 4 for the hybrid event/batch model.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.config import FlashWalkerConfig
from ..common.errors import (
    ConfigError,
    InvariantViolation,
    PowerLossError,
    SimulationError,
)
from ..common.rng import RngRegistry, derive_seed
from ..durability.integrity import RNG_STREAM, IntegrityTracker
from ..durability.journal import WalkJournal
from ..faults.checkpoint import CheckpointManager
from ..faults.model import FaultModel
from ..faults.slow import SlowFaultModel
from ..flash.channel import ONFI_COMMAND_BYTES
from ..flash.ssd import SSD
from ..graph.csr import CSRGraph
from ..graph.partition import GraphPartitioning, partition_graph
from ..obs.alerts import default_engine_rules
from ..obs.metrics import MetricsConfig, MetricsRegistry
from ..obs.profile import EventLoopProfiler
from ..obs.report import config_fingerprint
from ..obs.tracer import (
    PID_BOARD,
    PID_CHANNEL_ACCEL,
    PID_CHIP_ACCEL,
    PID_FAULTS,
    PID_RUN,
    TraceConfig,
    Tracer,
)
from ..sim.engine import Simulator
from ..sim.resources import FcfsResource
from ..walks.sampling import make_sampler
from ..walks.spec import WalkSpec, start_vertices
from ..walks.state import WalkSet
from .advance import AdvanceContext, advance_batch, in_sorted
from .board_accel import BoardAccelerator
from .buffers import ForeignerStore, PartitionWalkBuffer, WalkBatch
from .channel_accel import ChannelAccelerator
from .chip_accel import ChipAccelerator
from .dense import DenseVertexTable
from .mapping import RangeTable, SubgraphMappingTable, binary_search_steps
from .metrics import RunMetrics, RunResult
from .scheduler import SubgraphScheduler

__all__ = ["FlashWalker"]

# Event priorities of the durability layer (lower runs first at equal
# times).  Negative so durability events at time t always precede the
# engine's priority-0 events in BOTH the original and a resumed
# timeline — their re-armed event sequence numbers differ after a
# restore, so cross-type ordering must never fall back to seq.  The
# distinct values also order the durability events among themselves.
_PRIO_POWER_LOSS = -100
_PRIO_JOURNAL = -20
_PRIO_CORRUPT = -15
_PRIO_SCRUB = -10
_PRIO_FTL_GC = -5

#: Fixed ``le`` bounds of the sink-flush page-count histogram
#: (telemetry only; power-of-two spacing covers group commits).
_FLUSH_PAGE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class FlashWalker:
    """One FlashWalker system bound to a graph.

    Parameters
    ----------
    graph:
        the input graph (weighted iff biased walks are wanted).
    config:
        hardware + design parameters; defaults are the paper's.
    seed:
        root seed for all stochastic components.
    trace:
        optional :class:`~repro.obs.TraceConfig`; when given, every run
        records span traces, utilization timelines and latency
        histograms into ``RunResult.trace``.  The tracer is a passive
        observer — enabling it never changes simulated timestamps.
    telemetry:
        optional :class:`~repro.obs.MetricsConfig`; when given, every
        run samples deterministic metrics series (and evaluates alert
        rules) into the report's ``telemetry`` section.  Same passive
        discipline as the tracer: no events, no RNG draws.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: FlashWalkerConfig | None = None,
        seed: int = 0,
        trace: TraceConfig | None = None,
        telemetry: MetricsConfig | None = None,
    ):
        self.cfg = (config or FlashWalkerConfig()).validate()
        self.graph = graph
        self._seed = int(seed)
        self._trace_cfg = trace.validate() if trace is not None else None
        self._metrics_cfg = telemetry.validate() if telemetry is not None else None
        self.rngs = RngRegistry(seed)
        self.part: GraphPartitioning = partition_graph(
            graph, self.cfg.subgraph_bytes, self.cfg.vid_bytes
        )
        self.ssd = SSD(self.cfg.ssd, self.cfg.dram)
        # Place every graph block wholly inside one chip, striped.
        placement = self.ssd.ftl.place_striped(
            self.part.num_blocks, self.cfg.subgraph_pages()
        )
        cpc = self.cfg.ssd.chips_per_channel
        self.block_chip = placement[:, 0] * cpc + placement[:, 1]  # flat chip id
        # Pristine placement; chip failures remap block_chip per run.
        self._block_chip0 = self.block_chip.copy()
        if self.ssd.dftl is not None:
            # The engine's write-back streams (sink flushes, journal
            # commits, spills) rotate through a circular log region above
            # the placed subgraph pages; wrapping it overwrites old log
            # pages, which is what generates the invalid pages background
            # GC reclaims.
            log_base = self.part.num_blocks * self.cfg.subgraph_pages()
            span = self.ssd.ftl.total_pages - log_base
            if span < 1:
                raise ConfigError(
                    "DFTL log region is empty: the graph's "
                    f"{log_base} placed pages fill the device's "
                    f"{self.ssd.ftl.total_pages} exported pages — lower "
                    "ftl.over_provisioning or enlarge the device"
                )
            self.ssd.dftl.set_log_region(
                log_base, min(self.cfg.ssd.ftl.log_region_pages, span)
            )
        # Accelerators.
        slots = self.cfg.chip_subgraph_slots()
        self.chips = [
            ChipAccelerator(
                i, i // cpc, i % cpc, self.cfg.levels.chip, slots, self.cfg.walk_bytes
            )
            for i in range(self.cfg.ssd.total_chips)
        ]
        self.channels = [
            ChannelAccelerator(c, self.cfg.levels.channel, self.cfg.walk_bytes)
            for c in range(self.cfg.ssd.channels)
        ]
        self.dense_table = DenseVertexTable(self.part)
        self.board = BoardAccelerator(self.cfg, self.dense_table)
        self._assign_hot_blocks()
        self.n_partitions = self.part.num_partitions(self.cfg.partition_subgraphs)
        # Partition-walk-buffer entry capacities are sized per run (they
        # depend on the walk count); see run().
        self.entry_capacity = 0
        self.dense_entry_capacity = 0
        # Run state (reset per run()).
        self.sim: Simulator | None = None
        self.metrics: RunMetrics | None = None
        # Survives _reset_run_state so a crashed run's snapshot is still
        # there when resume() re-initializes the engine.
        self._checkpoints = CheckpointManager(
            keep_last=self.cfg.durability.checkpoint_keep_last
        )
        # Power-loss injection schedule (simulated times).  A runtime
        # attribute rather than config so a crash-scheduled engine keeps
        # the same config_fingerprint as its uninterrupted baseline, and
        # restore_checkpoint's fingerprint check accepts its snapshots.
        self.power_loss_times: tuple[float, ...] = ()
        # Crashes already fired this campaign.  NOT reset by
        # _reset_run_state: a restore must not re-fire the crash that
        # triggered the recovery it is part of.
        self._crashes_fired = 0
        self._last_power_loss: dict | None = None
        self._reset_run_state()

    # ------------------------------------------------------------------ setup

    def _assign_hot_blocks(self) -> None:
        """Pick top in-degree blocks for board/channel residency."""
        in_deg = self.graph.in_degrees()
        cs = np.concatenate([[0], np.cumsum(in_deg)])
        blk_indeg = cs[self.part.block_hi + 1] - cs[self.part.block_lo]
        blk_indeg = blk_indeg.astype(np.float64)
        # Dense-vertex slices are handled via hot dense vertices instead.
        blk_indeg[self.part.is_dense_block] = -1.0
        # Top dense vertices by in-degree get their whole block list
        # resident at the board; their pre-walked hops resolve there.
        # This is part of the *pre-walking* machinery (the board owns the
        # dense-vertices table regardless), so it is independent of the
        # Fig. 9 hot-subgraph toggle.
        dense_vs = np.fromiter(
            self.part.dense_meta, dtype=np.int64, count=len(self.part.dense_meta)
        )
        if dense_vs.size and self.cfg.board_hot_dense_vertices > 0:
            order_d = np.argsort(in_deg[dense_vs], kind="stable")[::-1]
            self._hot_dense_verts = np.sort(
                dense_vs[order_d[: self.cfg.board_hot_dense_vertices]]
            )
        else:
            self._hot_dense_verts = np.zeros(0, dtype=np.int64)
        if not self.cfg.opt_hot_subgraphs:
            self.board.set_hot_blocks([])
            for ch in self.channels:
                ch.set_hot_blocks([])
            self._board_hot = np.zeros(0, dtype=np.int64)
            return
        k_board = min(self.cfg.board_hot_subgraphs, self.part.num_blocks)
        order = np.argsort(blk_indeg, kind="stable")[::-1]
        board_hot = [int(b) for b in order[:k_board] if blk_indeg[b] > 0]
        self.board.set_hot_blocks(board_hot)
        # Sorted: membership checks on the direct path use binary search.
        self._board_hot = np.sort(np.asarray(board_hot, dtype=np.int64))
        cpc = self.cfg.ssd.chips_per_channel
        block_channel = self.block_chip // cpc
        taken = set(board_hot)
        for ch in self.channels:
            mine = np.flatnonzero(block_channel == ch.channel_id)
            if mine.size == 0:
                ch.set_hot_blocks([])
                continue
            sub = mine[np.argsort(blk_indeg[mine], kind="stable")[::-1]]
            hot = [
                int(b)
                for b in sub
                if blk_indeg[b] > 0 and int(b) not in taken
            ][: self.cfg.channel_hot_subgraphs]
            ch.set_hot_blocks(hot)

    def _reset_run_state(self) -> None:
        self.sim = Simulator()
        self.metrics = RunMetrics()
        # Tracing is per run: a fresh Tracer so back-to-back runs never
        # mix spans.  The bound clock reads self.sim dynamically, so it
        # survives the engine re-creation on resume().
        tcfg = self._trace_cfg
        if tcfg is not None:
            self.tracer = Tracer(tcfg)
            self.tracer.bind_clock(lambda: self.sim.now)
            if tcfg.profile_event_loop:
                prof = EventLoopProfiler()
                self.sim.profiler = prof
                self.tracer.profile = prof
        else:
            self.tracer = None
        # Metrics mirror the tracer's lifecycle: a fresh registry per
        # run, clocked off self.sim so it survives engine re-creation.
        mcfg = self._metrics_cfg
        if mcfg is not None:
            self.telemetry = MetricsRegistry(mcfg)
            self.telemetry.bind_clock(lambda: self.sim.now)
            self.telemetry.add_rules(default_engine_rules())
        else:
            self.telemetry = None
        self.metrics.telemetry = self.telemetry
        self.ssd.attach_tracer(self.tracer)
        self.board.tracer = self.tracer
        self.scheduler: SubgraphScheduler | None = None
        self.pwb: PartitionWalkBuffer | None = None
        self.mapping: SubgraphMappingTable | None = None
        self.foreign = ForeignerStore(max(1, self.n_partitions))
        self.current_partition = -1
        self.total_walks = 0
        self.completed_walks = 0
        self.in_transit = 0
        self._board_pipe = FcfsResource("board.direct", 1)
        self._flush_cursor = 0
        self._finals: list[WalkSet] | None = None
        self._done = False
        # Optional completion observer fn(t, walks) used by the service
        # layer (repro.service) to attribute finished walks to queries.
        # None in batch runs: the default path never consults it beyond
        # this one is-None check, keeping default behavior bit-identical.
        self._on_completed = None
        # Fault-injection state.  Strictly opt-in: with faults disabled
        # no fault model exists, no RNG stream is registered, and every
        # hot path sees fault_model is None.
        fcfg = self.cfg.faults
        self.block_chip = self._block_chip0.copy()
        self.fault_model = (
            FaultModel(fcfg, self.rngs.fresh("faults")) if fcfg.enabled else None
        )
        if self.fault_model is not None:
            self.fault_model.tracer = self.tracer
            self.fault_model.telemetry = self.telemetry
        self.ssd.attach_fault_model(self.fault_model)
        # Gray-failure (slow-fault) layer, same opt-in pattern.  Windows
        # are precomputed from the seed at construction — the model owns
        # no registry stream, so checkpoints have only counters to carry
        # and enabling it perturbs no other subsystem's RNG.
        scfg = fcfg.slow
        self.slow_model = (
            SlowFaultModel(
                scfg,
                self._seed,
                n_chips=self.cfg.ssd.total_chips,
                n_channels=self.cfg.ssd.channels,
            )
            if scfg.enabled
            else None
        )
        self.ssd.attach_slow_model(self.slow_model)
        self._rebuilding_blocks: set[int] = set()
        self._board_inflight = 0
        self._draining = False
        # Durability layer (journal + integrity), same opt-in pattern as
        # faults: disabled leaves every hot path at one is-None check.
        dcfg = self.cfg.durability
        if dcfg.enabled:
            self.journal = (
                WalkJournal(dcfg.journal_record_bytes)
                if dcfg.journal_interval > 0
                else None
            )
            if dcfg.silent_corruption_rate > 0:
                # Register the arrival stream so checkpoints capture it.
                self.rngs.fresh(RNG_STREAM)
            self.integrity = IntegrityTracker(
                dcfg, self.ssd, self.metrics, self.rngs
            )
            self.integrity.on_quarantine = self._quarantine_plane
            self.integrity.telemetry = self.telemetry
            self.ssd.attach_integrity(self.integrity)
        else:
            self.journal = None
            self.integrity = None
            self.ssd.attach_integrity(None)
        # Next absolute fire times of the recurring durability events;
        # None = not yet drawn/derived (restore overwrites with the
        # snapshot's stored times).
        self._next_journal_flush: float | None = None
        self._next_scrub: float | None = None
        self._next_corruption: float | None = None
        self._dur_events: dict[str, object] = {}
        # Background FTL GC (DFTL layer): scheduled on the same absolute
        # grid as the durability events, but independent of them — the
        # device housekeeps whether or not the journal/scrub stack is on.
        self._next_ftl_gc: float | None = None
        self._restored_ftlgc_armed: bool | None = None
        if self.ssd.dftl is not None:
            self.ssd.dftl.telemetry = self.telemetry
        # Extra-state hook pair for layers above the engine (the query
        # service): _checkpoint_extra() is packed into snapshots, and a
        # restore leaves the packed dict in _restored_extra.
        self._checkpoint_extra = None
        self._restored_extra = None
        # Which recurring durability events the restored snapshot had
        # armed (None = legacy snapshot / no restore: arm everything).
        self._restored_dur_armed: set[str] | None = None
        self._ckpt_interval = (
            fcfg.checkpoint_interval if (fcfg.enabled or dcfg.enabled) else 0.0
        )
        self._next_checkpoint = (
            self._ckpt_interval if self._ckpt_interval > 0 else math.inf
        )
        for chip in self.chips:
            chip.loaded = []
            chip.busy = False
            chip.failed = False
            chip.pending_rove = []
            chip.pending_rove_count = 0
            chip.pending_completed = 0
            chip.tracer = self.tracer
        for ch in self.channels:
            ch.collect_scheduled = False
            ch.tracer = self.tracer

    # ------------------------------------------------------------------- run

    def run(
        self,
        num_walks: int | None = None,
        spec: WalkSpec | None = None,
        starts: np.ndarray | None = None,
        max_events: int | None = None,
        record_finals: bool = False,
    ) -> RunResult:
        """Execute a random-walk workload to completion.

        Either ``num_walks`` (uniform random starts) or an explicit
        ``starts`` array must be given.  With ``record_finals`` the
        result carries every completed walk's (src, final vertex) pair —
        the raw material of PPR and endpoint-sampling applications.
        Returns a :class:`RunResult`.
        """
        self.spec = (spec or WalkSpec()).validate(self.graph)
        self._reset_run_state()
        self._checkpoints.clear()
        self._crashes_fired = 0
        self._last_power_loss = None
        if record_finals:
            self._finals = []
        if starts is None:
            if num_walks is None or num_walks < 1:
                raise SimulationError("need num_walks >= 1 or explicit starts")
            starts = start_vertices(
                self.graph, num_walks, self.rngs.fresh("starts")
            )
        else:
            starts = np.asarray(starts, dtype=np.int64)
            if starts.size == 0:
                raise SimulationError("empty starts array")
        self.total_walks = int(starts.size)
        self.in_transit = self.total_walks
        sampler = make_sampler(self.graph)
        self.ctx = AdvanceContext.build(self.graph, self.part, self.spec, sampler)
        # Size partition-walk-buffer entries: a few times the mean walks
        # per subgraph, so only hot entries overflow (paper regime).
        if self.cfg.pwb_entry_walks > 0:
            self.entry_capacity = self.cfg.pwb_entry_walks
        else:
            # The paper's DRAM budget gives each entry several times the
            # mean walks per subgraph of headroom; 16x keeps overflow an
            # event of the hottest entries only, matching Fig. 8's
            # near-zero write curve.
            mean = self.total_walks / max(1, self.part.num_blocks)
            self.entry_capacity = max(16, math.ceil(16 * mean))
        self.dense_entry_capacity = max(
            self.entry_capacity + 1, math.ceil(self.entry_capacity * self.cfg.beta)
        )

        # Preload hot subgraphs (flash reads + channel transfers).
        t0 = self._preload_hot_blocks(0.0)
        self._install_partition(0, t0)
        walks = WalkSet.start(starts, self.spec.length)
        self.sim.at(t0, lambda: self._board_direct(walks, scoped=False))
        if self.fault_model is not None:
            for t_fail, chip_flat in self.cfg.faults.chip_failures:
                self.sim.at(
                    float(t_fail),
                    lambda c=int(chip_flat): self._fail_chip(c),
                )
        self._arm_durability()
        self._arm_ftl_gc()
        self.sim.run(max_events=max_events)
        return self._finalize_run()

    # ------------------------------------------------------- service sessions

    def start_session(
        self, spec: WalkSpec | None = None, *, expected_walks: int = 0
    ) -> float:
        """Prepare the engine for an *open-ended* walk session.

        Mirrors :meth:`run`'s setup — state reset, entry-capacity
        sizing, hot-block preload, first partition install, scheduled
        chip failures — but boards no walks: the service layer
        (:mod:`repro.service`) injects them over time with
        :meth:`inject_walks` while driving ``self.sim`` itself.
        ``expected_walks`` sizes the partition-walk-buffer entries the
        way a batch run's ``num_walks`` would.  Returns the simulated
        time at which the system is ready (hot blocks preloaded).
        """
        self.spec = (spec or WalkSpec()).validate(self.graph)
        self._reset_run_state()
        self._checkpoints.clear()
        self._crashes_fired = 0
        self._last_power_loss = None
        sampler = make_sampler(self.graph)
        self.ctx = AdvanceContext.build(self.graph, self.part, self.spec, sampler)
        if self.cfg.pwb_entry_walks > 0:
            self.entry_capacity = self.cfg.pwb_entry_walks
        else:
            mean = max(1, int(expected_walks)) / max(1, self.part.num_blocks)
            self.entry_capacity = max(16, math.ceil(16 * mean))
        self.dense_entry_capacity = max(
            self.entry_capacity + 1, math.ceil(self.entry_capacity * self.cfg.beta)
        )
        t0 = self._preload_hot_blocks(0.0)
        self._install_partition(0, t0)
        if self.fault_model is not None:
            for t_fail, chip_flat in self.cfg.faults.chip_failures:
                self.sim.at(
                    float(t_fail),
                    lambda c=int(chip_flat): self._fail_chip(c),
                )
        self._arm_durability()
        self._arm_ftl_gc()
        return t0

    def inject_walks(self, walks: WalkSet) -> None:
        """Board new walks mid-session at the current simulated time.

        Must be called from inside a simulator event (the service
        layer's dispatch events); the walks enter through the normal
        board-direct path and are accounted exactly like a batch run's.
        """
        n = len(walks)
        if n == 0:
            return
        if walks.hop.size and int(walks.hop.max()) > self.spec.length:
            raise SimulationError(
                f"injected walk length {int(walks.hop.max())} exceeds the "
                f"session spec length {self.spec.length}"
            )
        self.total_walks += n
        self.in_transit += n
        self._done = False
        # Recurring durability events were cancelled when the session
        # last went idle (_done); new work re-arms them.  An armed
        # power loss is not recurring work — it must not keep the
        # journal/scrub events from re-arming, or the epoch it is
        # armed in runs with journal flushes silently off.
        if all(
            k.startswith("powerloss") or k == "ftlgc" for k in self._dur_events
        ):
            self._arm_durability()
        if "ftlgc" not in self._dur_events:
            self._arm_ftl_gc()
        self._board_direct(walks, scoped=False)

    def _finalize_run(self) -> RunResult:
        """Shared completion path of run() and resume()."""
        if self.completed_walks != self.total_walks:
            raise SimulationError(
                f"run ended with {self.completed_walks}/{self.total_walks} "
                "walks completed (event starvation?)"
            )
        # Final sink flush.
        tail = self.board.drain_sinks()
        end = self.sim.now
        if tail:
            end = self._flush_to_flash(self.sim.now, tail)
        result = self.metrics.finalize(end, self.total_walks)
        if self.scheduler is not None:
            result.counters["sched_score_cache_hits"] = float(
                self.scheduler.score_cache_hits
            )
            result.counters["sched_topn_refreshes"] = float(
                self.scheduler.topn_refreshes
            )
        if self.fault_model is not None:
            for name, value in self.fault_model.stats().items():
                result.counters[name] = float(value)
        if self.slow_model is not None:
            for name, value in self.slow_model.stats().items():
                result.counters[name] = float(value)
        if self._finals is not None:
            finals = WalkSet.concat(self._finals)
            result.counters["finals_recorded"] = float(len(finals))
            result.finals = finals
        result.seed = self._seed
        result.config_fingerprint = config_fingerprint(self.cfg)
        dftl = self.ssd.dftl
        if dftl is not None:
            result.ftl = dftl.stats(self.ssd.ftl)
            result.counters["ftl_cmt_hits"] = float(dftl.cmt.hits)
            result.counters["ftl_cmt_misses"] = float(dftl.cmt.misses)
            result.counters["ftl_translation_page_reads"] = float(
                dftl.translation_page_reads
            )
            result.counters["ftl_translation_page_writes"] = float(
                dftl.translation_page_writes
            )
            result.counters["ftl_gc_background_runs"] = float(
                self.ssd.ftl.gc_background_runs
            )
            result.counters["ftl_gc_moved_pages"] = float(
                self.ssd.ftl.gc_moved_pages
            )
        if self.cfg.durability.enabled:
            result.durability = self._durability_section()
        if self.telemetry is not None:
            result.telemetry = self.telemetry.section(end)
        if self.tracer is not None:
            self.tracer.instant("run", PID_RUN, 0, "run_end", end)
            result.trace = self.tracer
        return result

    # --------------------------------------------------------- partition setup

    def _preload_hot_blocks(self, t: float) -> float:
        """Read board/channel hot subgraphs from flash at run start."""
        done = t
        pages = self.cfg.subgraph_pages()
        all_hot = list(self.board.hot_blocks)
        for ch in self.channels:
            all_hot.extend(ch.hot_blocks)
        for v in self._hot_dense_verts:
            meta = self.part.dense_meta[int(v)]
            all_hot.extend(range(meta.first_block, meta.first_block + meta.n_blocks))
        for block in all_hot:
            chip_flat = int(self.block_chip[block])
            chip_hw = self.ssd.chip_flat(chip_flat)
            t_read = chip_hw.read_pages_striped(t, pages)
            nbytes = pages * self.cfg.ssd.page_bytes
            self.metrics.record_flash_read(t, nbytes, t_read)
            ch_hw = self.ssd.channel(chip_flat // self.cfg.ssd.chips_per_channel)
            t_bus = ch_hw.transfer_data(t, nbytes)
            self._record_bus(ch_hw.bus, t, nbytes, t_bus)
            done = max(done, t_read, t_bus)
        tr = self.tracer
        if tr is not None and all_hot:
            tr.span("run", PID_RUN, 0, "preload_hot_blocks", t, done,
                    args={"blocks": len(all_hot)})
        return done

    def _install_partition(self, pid: int, t: float) -> None:
        if not 0 <= pid < self.n_partitions:
            raise SimulationError(f"partition {pid} out of range")
        self.current_partition = pid
        first, last = self.part.partition_block_range(
            pid, self.cfg.partition_subgraphs
        )
        self.mapping = SubgraphMappingTable(self.part, first, last)
        self.board.set_mapping(self.mapping)
        if self.cfg.opt_walk_query:
            table = RangeTable(self.part, first, last, self.cfg.range_subgraphs)
            for ch in self.channels:
                ch.set_range_table(table)
        else:
            for ch in self.channels:
                ch.set_range_table(None)
        self.scheduler = SubgraphScheduler(
            block_chip=self.block_chip,
            is_dense_block=self.part.is_dense_block,
            first_block=first,
            last_block=last,
            n_chips=len(self.chips),
            alpha=self.cfg.alpha,
            beta=self.cfg.beta,
            top_n=self.cfg.top_n,
            update_period_m=self.cfg.score_update_period_m,
            use_scores=self.cfg.opt_subgraph_scheduling,
        )
        self.scheduler.tracer = self.tracer
        tr = self.tracer
        if tr is not None:
            tr.instant("run", PID_RUN, 0, "install_partition", t,
                       args={"partition": pid, "first_block": first,
                             "last_block": last})
        self.pwb = PartitionWalkBuffer(
            first,
            last,
            self.entry_capacity,
            self.dense_entry_capacity,
            self.part.is_dense_block,
        )
        # Mapping entries stream from DRAM into the board SRAM.
        entry_bytes = self.mapping.n_entries * self.cfg.mapping_entry_bytes
        self.ssd.dram.read(t, entry_bytes)
        self.metrics.record_dram(t, entry_bytes)

    def _switch_partition(self, t: float) -> None:
        """Move to the next partition holding foreigner walks."""
        pending = self.foreign.partitions_with_walks()
        if pending.size == 0:
            raise SimulationError("partition switch with no pending walks")
        # Next partition in cyclic order after the current one.
        later = pending[pending > self.current_partition]
        pid = int(later[0]) if later.size else int(pending[0])
        self.metrics.partition_switches.add()
        self._install_partition(pid, t)
        walks = self.foreign.drain(pid)
        self.in_transit += len(walks)
        # Foreigner walks come back from flash (scattered pages).
        nbytes = len(walks) * self.cfg.walk_bytes
        t_ready = self._read_scattered(t, nbytes)
        tr = self.tracer
        if tr is not None:
            tr.span("run", PID_RUN, 0, "partition_switch", t, t_ready,
                    args={"partition": pid, "walks": len(walks)})
        self.sim.at(t_ready, lambda: self._board_direct(walks, scoped=False))


    def _record_bus(self, bus, t_issue: float, nbytes: int, t_end: float) -> None:
        """Attribute channel-bus bytes over the transfer's *occupancy*
        window (its tail of duration nbytes/rate ending at t_end), not
        from issue time: queued transfers would otherwise overlap in the
        timeline and exceed the physical bus rate."""
        duration = nbytes / bus.bytes_per_sec
        start = max(t_issue, t_end - duration)
        self.metrics.record_channel(start, nbytes, t_end)

    # ------------------------------------------------------------ board level

    def _board_direct(self, walks: WalkSet, scoped: bool) -> None:
        """Direct a batch of roving/new walks at the board level."""
        t = self.sim.now
        if len(walks) == 0:
            self._service_barriers(t)
            return
        busy = 0.0
        m = self.metrics
        normal_parts: list[WalkSet] = []
        # Walks may loop through the board pipeline: a hot-subgraph update
        # or a hot-dense-vertex resolution moves them to a new vertex that
        # needs re-classification.  Each pass consumes >= 1 hop, so the
        # loop is bounded by the walk length.
        for _ in range(self.spec.length + 2):
            if len(walks) == 0:
                break
            # 1. Update walks landing in board-resident hot subgraphs.
            if self.cfg.opt_hot_subgraphs and self._board_hot.size:
                in_hot = in_sorted(
                    self._board_hot, self.part.block_of_vertex(walks.cur)
                ) & ~self.ctx.is_dense_vertex[walks.cur]
                if in_hot.any():
                    hot_walks, walks = walks.split(in_hot)
                    res = advance_batch(
                        self.ctx,
                        WalkBatch(hot_walks),
                        self.board.hot_blocks,
                        self.rngs.stream("board"),
                    )
                    busy += self.board.batch_time(res)
                    m.hops.add(res.hops)
                    m.hot_hits_board.add(len(hot_walks))
                    if res.n_completed:
                        self._complete_walks(
                            t, res.n_completed, sink="board", walks=res.completed
                        )
                    walks = WalkSet.concat([walks, res.roving])
            if len(walks) == 0:
                break
            # 2. Dense-vertex classification (bloom + hash).
            probes_before = self.dense_table.hash_probes
            dense_mask = self.dense_table.classify(walks.cur)
            busy += self.board.dense_check_time(
                len(walks), self.dense_table.hash_probes - probes_before
            )
            dense_walks, normal = walks.split(dense_mask)
            normal_parts.append(normal)
            walks = WalkSet.empty()
            # 3. Pre-walk dense walks to a specific graph block.
            if len(dense_walks):
                pw = self.dense_table.pre_walk(
                    dense_walks.cur, self.rngs.stream("prewalk")
                )
                m.pre_walks.add(len(dense_walks))
                # 3a. Hot dense vertices: every slice is board-resident,
                # so the pre-walked hop resolves right here.
                if self._hot_dense_verts.size:
                    at_hot = in_sorted(self._hot_dense_verts, dense_walks.cur)
                else:
                    at_hot = np.zeros(len(dense_walks), dtype=bool)
                if at_hot.any():
                    hw = dense_walks.select(at_hot)
                    edge_idx = (
                        self.graph.offsets[hw.cur]
                        + pw.edge_offset[at_hot]
                        + self.part.block_edge_lo[pw.block[at_hot]]
                    )
                    nxt = self.graph.edges[edge_idx]
                    hop = hw.hop - 1
                    acc = self.cfg.levels.board
                    busy += (
                        len(hw) * acc.updater_ops_per_hop * acc.updater_cycle
                        / acc.n_updaters
                    )
                    m.hops.add(len(hw))
                    m.hot_hits_board.add(len(hw))
                    done = hop == 0
                    if self.spec.stop_probability > 0:
                        stop = self.spec.apply_stop_probability(
                            hop, self.rngs.stream("board")
                        )
                        done |= stop
                    n_done = int(done.sum())
                    if n_done:
                        self._complete_walks(
                            t,
                            n_done,
                            sink="board",
                            walks=WalkSet(hw.src[done], nxt[done], hop[done]),
                        )
                    survivors = WalkSet(hw.src[~done], nxt[~done], hop[~done])
                    walks = WalkSet.concat([walks, survivors])
                    dense_walks = dense_walks.select(~at_hot)
                    pw_block = pw.block[~at_hot]
                    pw_edge = pw.edge_offset[~at_hot]
                else:
                    pw_block = pw.block
                    pw_edge = pw.edge_offset
                in_part = (pw_block >= self.mapping.first_block) & (
                    pw_block <= self.mapping.last_block
                )
                if in_part.any():
                    self._insert_pwb(
                        t,
                        dense_walks.select(in_part),
                        pw_block[in_part],
                        pre_edge=pw_edge[in_part]
                        + self.part.block_edge_lo[pw_block[in_part]],
                    )
                if (~in_part).any():
                    # Dense walk bound for another partition: store as a
                    # plain foreigner (re-pre-walked there — an identical
                    # uniform redraw).
                    self._store_foreigners(
                        t,
                        dense_walks.select(~in_part),
                        target_blocks=pw_block[~in_part],
                    )
        normal = WalkSet.concat(normal_parts)
        # 4. Foreigner detection for normal walks.
        inside = self.mapping.contains_vertices(normal.cur)
        if (~inside).any():
            foreign_walks = normal.select(~inside)
            # Locating the destination partition costs a global range
            # search (the coarse table spans the whole graph).
            steps = binary_search_steps(
                max(1, -(-self.part.num_blocks // self.cfg.range_subgraphs))
            )
            busy += (
                len(foreign_walks)
                * steps
                * self.cfg.levels.board.guider_cycle
                / self.cfg.levels.board.n_guiders
            )
            self._store_foreigners(t, foreign_walks, target_blocks=None)
            normal = normal.select(inside)
        # 5. Walk query for the rest + insert into the partition buffer.
        if len(normal):
            blocks, _ = self.mapping.lookup(
                normal.cur,
                scope_entries=self.cfg.range_subgraphs
                if (scoped and self.cfg.opt_walk_query)
                else None,
            )
            qtime, hits, misses, steps_total = self.board.query_and_direct(
                blocks, scoped and self.cfg.opt_walk_query
            )
            busy += qtime
            m.queries.add(len(normal))
            m.query_steps.add(steps_total)
            m.cache_hits.add(hits)
            m.cache_misses.add(misses)
            self._insert_pwb(t, normal, blocks, pre_edge=None)
        self._finish_board_batch(t, busy)

    def _finish_board_batch(self, t: float, busy: float) -> None:
        m = self.metrics
        m.board_busy.add(busy)
        t_done = self._board_pipe.acquire_for(t, busy)
        tr = self.tracer
        if tr is not None and busy > 0:
            # The pipe is FCFS: the batch occupies its tail window.
            tr.span("accel", PID_BOARD, 0, "board_batch", t_done - busy, t_done)
            tr.busy("board_accel", t_done - busy, t_done)
        if t_done > t:
            self._board_inflight += 1
            self.sim.at(t_done, lambda: self._board_batch_done())
        else:
            self._after_board_batch()

    def _board_batch_done(self) -> None:
        self._board_inflight -= 1
        self._after_board_batch()

    def _after_board_batch(self) -> None:
        t = self.sim.now
        self._kick_chips(t)
        self._service_barriers(t)

    def _insert_pwb(
        self,
        t: float,
        walks: WalkSet,
        blocks: np.ndarray,
        pre_edge: np.ndarray | None,
    ) -> None:
        """Insert directed walks into partition-walk-buffer entries."""
        n = len(walks)
        if n == 0:
            return
        nbytes = n * self.cfg.walk_bytes
        self.ssd.dram.write(t, nbytes)
        self.metrics.record_dram(t, nbytes)
        order = np.argsort(blocks, kind="stable")
        sblocks = blocks[order]
        swalks = walks.select(order)
        spre = pre_edge[order] if pre_edge is not None else None
        bounds = np.flatnonzero(np.diff(sblocks)) + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [n]])
        for s, e in zip(starts, ends):
            block = int(sblocks[s])
            group = swalks.select(np.arange(s, e))
            gpre = spre[s:e] if spre is not None else None
            self.scheduler.add_buffered(block, e - s)
            spilled = self.pwb.push(block, WalkBatch(group, gpre))
            if spilled:
                self.scheduler.add_spilled(block, spilled)
                self.metrics.spilled_walks.add(spilled)
                # Overflowed entry flushes through the block's chip.
                self._spill_write(t, block, spilled)
        tr = self.tracer
        if tr is not None:
            tr.highwater("buf.pwb_pending_walks", self.scheduler.total_pending)
        self.in_transit -= n

    def _spill_write(self, t: float, block: int, n_walks: int) -> None:
        """Write an overflowed buffer entry to the block's chip."""
        nbytes = n_walks * self.cfg.walk_bytes
        chip_flat = int(self.block_chip[block])
        ch = self.ssd.channel(chip_flat // self.cfg.ssd.chips_per_channel)
        chip_hw = self.ssd.chip_flat(chip_flat)
        t_bus = ch.transfer_data(t, nbytes)
        self._record_bus(ch.bus, t, nbytes, t_bus)
        pages = max(1, math.ceil(nbytes / self.cfg.ssd.page_bytes))
        if self.ssd.dftl is None:
            t_prog = chip_hw.program_pages_striped(t_bus, pages)
        else:
            cpc = self.cfg.ssd.chips_per_channel
            t_prog = t_bus
            for k in range(pages):
                t_prog = max(
                    t_prog,
                    self._dftl_program(
                        t_bus, chip_flat // cpc, chip_flat % cpc, k, chip_hw
                    ),
                )
        self.metrics.record_flash_write(
            t_bus, pages * self.cfg.ssd.page_bytes, t_prog
        )

    def _store_foreigners(
        self, t: float, walks: WalkSet, target_blocks: np.ndarray | None
    ) -> None:
        """Route walks beyond the current partition to the foreigner store."""
        n = len(walks)
        if n == 0:
            return
        if target_blocks is None:
            target_blocks = self.part.block_of_vertex(walks.cur)
        pids = self.part.partition_of_block(
            target_blocks, self.cfg.partition_subgraphs
        )
        self.metrics.foreigner_walks.add(n)
        for pid in np.unique(pids):
            sel = pids == pid
            self.foreign.push(int(pid), walks.select(sel))
        tr = self.tracer
        if tr is not None:
            tr.highwater("buf.foreigner_store_walks", self.foreign.total)
        flush = self.board.add_foreigners(n)
        if flush:
            self._flush_to_flash(t, flush)
        self.in_transit -= n

    def _complete_walks(
        self, t: float, n: int, sink: str, walks: WalkSet | None = None
    ) -> None:
        """Account ``n`` walks finishing at time ``t``.

        When ``record_finals`` is on and the finished records are at
        hand, their (src, final) pairs are kept for the caller.
        """
        self.completed_walks += n
        self.in_transit -= n
        self.metrics.record_completed(t, n)
        mx = self.telemetry
        if mx is not None:
            mx.gauge("engine_walks_in_transit").set(self.in_transit, t)
        j = self.journal
        if j is not None:
            j.append(t, n, self.completed_walks)
            if mx is not None:
                mx.gauge("durability_journal_pending_records").set(
                    j.pending_records, t
                )
        if self._finals is not None and walks is not None and len(walks):
            self._finals.append(walks)
        if sink in ("board", "channel"):
            flush = self.board.add_completed(n)
            if flush:
                self._flush_to_flash(t, flush)
        cb = self._on_completed
        if cb is not None and walks is not None:
            cb(t, walks)

    def _flush_to_flash(self, t: float, nbytes: int) -> float:
        """Board-side write of sink contents, striped over channels."""
        pages = max(1, math.ceil(nbytes / self.cfg.ssd.page_bytes))
        end = t
        c = self.cfg.ssd
        dftl = self.ssd.dftl
        for _ in range(pages):
            # Stripe pages over channels, then chips (persistent cursor),
            # so write-back never concentrates on one chip's planes.
            p = self._flush_cursor
            self._flush_cursor += 1
            ch_idx = p % c.channels
            chip_idx = (p // c.channels) % c.chips_per_channel
            ch = self.ssd.channel(ch_idx)
            t_bus = ch.transfer_data(t, c.page_bytes)
            chip_hw = ch.chip(chip_idx)
            if dftl is None:
                end = max(end, chip_hw.program_pages_striped(t_bus, 1))
            else:
                end = max(
                    end, self._dftl_program(t_bus, ch_idx, chip_idx, p, chip_hw)
                )
        self.metrics.record_channel(t, nbytes, end)
        self.metrics.record_flash_write(t, pages * self.cfg.ssd.page_bytes, end)
        mx = self.telemetry
        if mx is not None:
            mx.histogram("engine_flush_pages", _FLUSH_PAGE_BUCKETS).observe(
                pages, t
            )
        return end

    def _dftl_program(
        self, t: float, ch_idx: int, chip_idx: int, cursor: int, chip_hw
    ) -> float:
        """Allocate + program one engine log page through the DFTL/FTL.

        The page gets the next circular-log lpn, whose mapping entry
        enters the CMT dirty (misses pay translation-page traffic on the
        target chip), then goes through the FTL allocator — so wear
        leveling sees it and overwritten log pages build the invalid
        counts background GC reclaims.
        """
        c = self.cfg.ssd
        lpn = self.ssd.dftl.next_log_lpn()
        chip_flat = ch_idx * c.chips_per_channel + chip_idx
        t_xl = self.ssd.dftl_probe(t, chip_flat, (lpn,), write=True)
        planes_base = self.ssd.ftl.flat_plane(ch_idx, chip_idx, 0, 0)
        addr = self.ssd.ftl.write(
            lpn, plane_hint=planes_base + (cursor % c.planes_per_chip)
        )
        return chip_hw.program_page(t_xl, addr.die, addr.plane)

    def _read_scattered(self, t: float, nbytes: int) -> float:
        """Read ``nbytes`` of walk records striped over all channels."""
        if nbytes <= 0:
            return t
        pages = max(1, math.ceil(nbytes / self.cfg.ssd.page_bytes))
        end = t
        for p in range(pages):
            ch = self.ssd.channel(p % self.cfg.ssd.channels)
            chip_hw = ch.chip(p % self.cfg.ssd.chips_per_channel)
            t_read = chip_hw.read_page(
                t, p % self.cfg.ssd.dies_per_chip, p % self.cfg.ssd.planes_per_die
            )
            t_bus = ch.transfer_data(t, self.cfg.ssd.page_bytes)
            end = max(end, t_read, t_bus)
        self.metrics.record_flash_read(t, pages * self.cfg.ssd.page_bytes, end)
        self.metrics.record_channel(t, pages * self.cfg.ssd.page_bytes, end)
        return end

    # ------------------------------------------------------------- chip level

    def _kick_chips(self, t: float) -> None:
        for chip_idx in self.scheduler.chips_with_work():
            chip = self.chips[int(chip_idx)]
            if not chip.busy:
                self._start_load(chip, t)

    def _start_load(self, chip: ChipAccelerator, t: float) -> None:
        if self._draining or chip.failed:
            # Draining toward a checkpoint barrier (loads restart once
            # the snapshot is taken) or the chip is dead (its blocks were
            # remapped; the scheduler will stop naming it).
            chip.busy = False
            return
        block = self.scheduler.next_subgraph(chip.index)
        if block is None:
            chip.busy = False
            return
        chip.busy = True
        batch, nb, ns = self.pwb.drain(block)
        s_nb, s_ns = self.scheduler.take_walks(block)
        if (s_nb, s_ns) != (nb, ns):  # pragma: no cover - consistency guard
            raise SimulationError(
                f"scheduler/buffer walk counts diverged for block {block}: "
                f"({s_nb},{s_ns}) vs ({nb},{ns})"
            )
        self.in_transit += nb + ns
        m = self.metrics
        ssd_cfg = self.cfg.ssd
        ch_hw = self.ssd.channel(chip.channel_id)
        chip_hw = self.ssd.chip(chip.channel_id, chip.chip_in_channel)
        # 1. Load command over the channel bus (extended ONFI).
        t_cmd = ch_hw.send_command(t)
        m.record_channel(t, ONFI_COMMAND_BYTES)
        # 2. Subgraph pages from this chip's planes (bus not involved).
        t_pages = t_cmd
        if chip.touch_block(block):
            pages = self.cfg.subgraph_pages()
            if self.ssd.dftl is not None:
                # The load must translate its lpns first; CMT misses pay
                # translation-page reads on this chip before any subgraph
                # page can be sensed.
                base_lpn = block * pages
                t_cmd = self.ssd.dftl_probe(
                    t_cmd, chip.index, range(base_lpn, base_lpn + pages)
                )
            t_pages = chip_hw.read_pages_striped(t_cmd, pages)
            m.record_flash_read(t_cmd, pages * ssd_cfg.page_bytes, t_pages)
            m.subgraph_loads.add()
            if block in self._rebuilding_blocks:
                # First load after failover: the replica is reassembled
                # from redundancy, costing extra sense time on this chip.
                self._rebuilding_blocks.discard(block)
                extra = (
                    pages
                    * ssd_cfg.read_latency
                    * (self.cfg.faults.rebuild_read_factor - 1.0)
                )
                t_pages += extra
                m.degraded_loads.add()
        # 3. Spilled walks read back from this chip's planes.
        if ns:
            sp_bytes = ns * self.cfg.walk_bytes
            sp_pages = max(1, math.ceil(sp_bytes / ssd_cfg.page_bytes))
            t_sp = chip_hw.read_pages_striped(t_cmd, sp_pages)
            m.record_flash_read(t_cmd, sp_pages * ssd_cfg.page_bytes, t_sp)
            t_pages = max(t_pages, t_sp)
        # 4. Buffered walks from on-board DRAM over the channel bus.  DRAM
        # fetch and bus transfer pipeline (DMA), so both are queued at
        # issue time and the completion is their max.
        t_walks = t_cmd
        if nb:
            nbytes = nb * self.cfg.walk_bytes
            t_dram = self.ssd.dram.read(t, nbytes)
            m.record_dram(t, nbytes)
            t_bus = ch_hw.transfer_data(t, nbytes)
            self._record_bus(ch_hw.bus, t, nbytes, t_bus)
            t_walks = max(t_cmd, t_dram, t_bus)
        t_ready = max(t_pages, t_walks)
        tr = self.tracer
        if tr is not None:
            tr.span("accel", PID_CHIP_ACCEL, chip.index, "subgraph_load",
                    t, t_ready,
                    args={"block": int(block), "buffered": nb, "spilled": ns})
            tr.latency("subgraph_load", t_ready - t)
        self.sim.at(t_ready, lambda: self._chip_process(chip, batch))

    def _chip_process(self, chip: ChipAccelerator, batch: WalkBatch) -> None:
        t = self.sim.now
        if chip.failed:
            # The chip died while this batch was loading.  Re-route the
            # walks through the board after the failover delay; their
            # pre-walked edges are dropped (dense walks are re-pre-walked,
            # an identical uniform redraw).
            chip.busy = False
            walks = batch.walks
            if len(walks):
                self.metrics.walks_rerouted.add(len(walks))
                tr = self.tracer
                if tr is not None:
                    tr.span("fault", PID_FAULTS, chip.index, "failover_reroute",
                            t, t + self.cfg.faults.failover_latency,
                            args={"walks": len(walks)})
                self.sim.at(
                    t + self.cfg.faults.failover_latency,
                    lambda: self._board_direct(walks, scoped=False),
                )
            else:
                self._service_barriers(t)
            return
        res = advance_batch(
            self.ctx, batch, chip.loaded, self.rngs.stream(f"chip{chip.index}")
        )
        busy = chip.batch_time(res)
        chip.push_roving(res.roving)
        stall = chip.roving_overflow_stall(self.cfg.roving_collect_interval)
        self.metrics.hops.add(res.hops)
        self.metrics.chip_busy.add(busy)
        self.metrics.stall_time.add(stall)
        self.metrics.roving_walks.add(len(res.roving))
        t_end = t + busy + stall
        tr = self.tracer
        if tr is not None:
            if busy > 0:
                tr.span("accel", PID_CHIP_ACCEL, chip.index, "chip_batch",
                        t, t + busy,
                        args={"hops": int(res.hops),
                              "completed": int(res.n_completed),
                              "roving": len(res.roving)})
                tr.busy("chip_accel", t, t + busy)
            if stall > 0:
                tr.span("accel", PID_CHIP_ACCEL, chip.index, "rove_stall",
                        t + busy, t_end)
        if res.n_completed:
            self._complete_walks(
                t_end, res.n_completed, sink="chip", walks=res.completed
            )
            self._chip_completed_flush(chip, t_end, res.n_completed)
        if chip.pending_rove_count:
            self._schedule_collect(chip.channel_id, t_end)
        self.sim.at(t_end, lambda: self._after_chip_batch(chip))

    def _chip_completed_flush(self, chip: ChipAccelerator, t: float, n: int) -> None:
        """Chip-side completed-walk buffer; programs own planes when full."""
        chip.pending_completed += n * self.cfg.walk_bytes
        if chip.pending_completed >= self.cfg.completed_buffer_bytes:
            nbytes = chip.pending_completed
            chip.pending_completed = 0
            pages = max(1, math.ceil(nbytes / self.cfg.ssd.page_bytes))
            chip_hw = self.ssd.chip(chip.channel_id, chip.chip_in_channel)
            if self.ssd.dftl is None:
                chip_hw.program_pages_striped(t, pages)
            else:
                for k in range(pages):
                    self._dftl_program(
                        t, chip.channel_id, chip.chip_in_channel, k, chip_hw
                    )
            self.metrics.record_flash_write(t, pages * self.cfg.ssd.page_bytes)

    def _after_chip_batch(self, chip: ChipAccelerator) -> None:
        t = self.sim.now
        chip.busy = False
        self._start_load(chip, t)
        if not chip.busy:
            self._service_barriers(t)

    # ---------------------------------------------------------- channel level

    def _schedule_collect(self, channel_id: int, t: float) -> None:
        ch = self.channels[channel_id]
        if ch.collect_scheduled:
            return
        ch.collect_scheduled = True
        interval = self.cfg.roving_collect_interval
        t_collect = math.ceil(max(t, self.sim.now) / interval) * interval
        if t_collect < self.sim.now:
            t_collect = self.sim.now
        self.sim.at(t_collect, lambda: self._collect_channel(channel_id))

    def _collect_channel(self, channel_id: int) -> None:
        """Periodic roving-walk collection by a channel accelerator."""
        t = self.sim.now
        ch = self.channels[channel_id]
        ch.collect_scheduled = False
        ch_hw = self.ssd.channel(channel_id)
        cpc = self.cfg.ssd.chips_per_channel
        parts: list[WalkSet] = []
        t_arr = t
        for chip in self.chips[channel_id * cpc : (channel_id + 1) * cpc]:
            if chip.pending_rove_count == 0:
                continue
            w = chip.take_roving()
            nbytes = len(w) * self.cfg.walk_bytes
            t_xfer = ch_hw.transfer_data(t, nbytes)
            t_arr = max(t_arr, t_xfer)
            self._record_bus(ch_hw.bus, t, nbytes, t_xfer)
            parts.append(w)
        walks = WalkSet.concat(parts)
        if len(walks) == 0:
            return
        n_collected = len(walks)
        busy = 0.0
        # Hot-subgraph updates at the channel level.
        if self.cfg.opt_hot_subgraphs and ch.hot_blocks:
            in_hot = in_sorted(
                ch.hot_blocks_sorted, self.part.block_of_vertex(walks.cur)
            ) & ~self.ctx.is_dense_vertex[walks.cur]
            if in_hot.any():
                hot_walks, walks = walks.split(in_hot)
                res = advance_batch(
                    self.ctx,
                    WalkBatch(hot_walks),
                    ch.hot_blocks,
                    self.rngs.stream(f"channel{channel_id}"),
                )
                busy += ch.batch_time(res)
                self.metrics.hops.add(res.hops)
                self.metrics.hot_hits_channel.add(len(hot_walks))
                if res.n_completed:
                    self._complete_walks(
                        t_arr, res.n_completed, sink="channel", walks=res.completed
                    )
                walks = WalkSet.concat([walks, res.roving])
        # Approximate walk search tags the remainder.
        scoped = False
        if self.cfg.opt_walk_query and ch.range_table is not None and len(walks):
            busy += ch.range_query_time(len(walks))
            scoped = True
        busy += ch.guide_time(len(walks))
        self.metrics.channel_busy.add(busy)
        t_done = t_arr + busy
        tr = self.tracer
        if tr is not None and busy > 0:
            tr.span("accel", PID_CHANNEL_ACCEL, channel_id, "channel_collect",
                    t_arr, t_done, args={"walks": n_collected})
            tr.busy("channel_accel", t_arr, t_done)
        if len(walks):
            self.sim.at(t_done, lambda: self._board_direct(walks, scoped=scoped))
        else:
            self.sim.at(t_done, lambda: self._service_barriers(self.sim.now))

    # ------------------------------------------------------------- resilience

    def _fail_chip(self, chip_flat: int) -> None:
        """Declare a whole chip dead and migrate its responsibilities.

        Blocks mapped to the chip are remapped round-robin over the
        surviving chips (their replicas rebuild lazily on first load);
        in-flight roving walks are re-routed through the board after the
        failover delay; the scheduler stops naming the chip.
        """
        t = self.sim.now
        fm = self.fault_model
        if fm is None or not fm.fail_chip(int(chip_flat)):
            return
        chip = self.chips[int(chip_flat)]
        chip.failed = True
        chip.loaded = []
        self.metrics.chips_failed.add()
        mx = self.telemetry
        if mx is not None:
            # Degraded-mode residency: the gauge's time-weighted mean
            # (exported per-series) times elapsed is seconds degraded.
            mx.gauge("engine_chips_failed").set(fm.chip_failures, t)
            mx.gauge("engine_degraded_mode").set(1.0, t)
        survivors = [c.index for c in self.chips if not c.failed]
        if not survivors:
            raise SimulationError("all chips failed; campaign cannot proceed")
        mine = np.flatnonzero(self.block_chip == int(chip_flat))
        if mine.size:
            new_chips = np.asarray(
                [survivors[i % len(survivors)] for i in range(mine.size)],
                dtype=np.int64,
            )
            self.block_chip[mine] = new_chips
            self._rebuilding_blocks.update(int(b) for b in mine)
            if self.scheduler is not None:
                in_part = mine[
                    (mine >= self.scheduler.first_block)
                    & (mine <= self.scheduler.last_block)
                ]
                if in_part.size:
                    self.scheduler.reassign_blocks(
                        in_part, self.block_chip[in_part]
                    )
            # Cached mapping entries for the remapped blocks point at the
            # dead chip's placement; drop them so post-failover queries
            # re-resolve instead of serving stale hits.
            self.board.invalidate_cached_blocks(mine)
        # Walks stranded in the chip's roving buffer fail over to the
        # board path; completed-walk bytes pending flush are lost traffic
        # only (their completion is already accounted).
        rerouted = chip.take_roving()
        chip.pending_completed = 0
        tr = self.tracer
        if tr is not None:
            tr.span("fault", PID_FAULTS, int(chip_flat), "chip_failover",
                    t, t + self.cfg.faults.failover_latency,
                    args={"rerouted": len(rerouted),
                          "blocks_remapped": int(mine.size)})
        if len(rerouted):
            self.metrics.walks_rerouted.add(len(rerouted))
            self.sim.at(
                t + self.cfg.faults.failover_latency,
                lambda: self._board_direct(rerouted, scoped=False),
            )
        self._kick_chips(t)

    # ------------------------------------------------------------- checkpoints

    @property
    def latest_checkpoint(self):
        """Most recent checkpoint of the current/last run (or None)."""
        return self._checkpoints.latest

    def _quiescent(self) -> bool:
        """True when no walk is mid-flight through any pipeline stage."""
        return (
            self.in_transit == 0
            and self._board_inflight == 0
            and not any(c.busy or c.pending_rove_count for c in self.chips)
        )

    def _service_barriers(self, t: float) -> None:
        """Checkpoint drain barrier + partition-end check.

        Called wherever the event graph reaches a potential rest point.
        When a checkpoint is due, new subgraph loads stop (``_draining``)
        until every in-flight walk settles into a buffer, the snapshot is
        taken at full quiescence, and loads restart.
        """
        if self._ckpt_interval > 0 and not self._done:
            if not self._draining and t >= self._next_checkpoint:
                self._draining = True
                tr = self.tracer
                if tr is not None:
                    tr.instant("ckpt", PID_RUN, 0, "ckpt_drain_start", t)
            if self._draining and self._quiescent():
                self._draining = False
                self._take_checkpoint(t)
                self._kick_chips(t)
        self._maybe_finish_partition(t)

    def _take_checkpoint(self, t: float) -> None:
        from ..faults.checkpoint import capture_checkpoint

        # Counter and next-deadline advance *before* capture so a resumed
        # run continues with identical checkpoint cadence and totals.
        # The journal truncates first for the same reason: the snapshot
        # itself covers everything the journal recorded so far.
        self.metrics.checkpoints.add()
        self._next_checkpoint = t + self._ckpt_interval
        if self.journal is not None:
            self.journal.on_checkpoint(self.completed_walks)
        self._checkpoints.save(capture_checkpoint(self, t))
        tr = self.tracer
        if tr is not None:
            tr.instant("ckpt", PID_RUN, 0, "checkpoint", t,
                       args={"index": int(self.metrics.checkpoints.total)})

    def checkpoint_now(self) -> None:
        """Take an explicit quiescent checkpoint at the current time.

        The cluster layer calls this at every epoch boundary — engine
        drained, no walk mid-flight — so a shard killed mid-epoch can
        be restored to the exact epoch start and replayed
        bit-identically.  Raises if the engine is not quiescent (a
        snapshot of in-flight state would not be restorable).
        """
        if not self._quiescent():
            raise SimulationError(
                "checkpoint_now() requires a quiescent engine "
                f"(in_transit={self.in_transit}, "
                f"board_inflight={self._board_inflight})"
            )
        self._take_checkpoint(self.sim.now)

    def arm_power_loss(self, t: float) -> None:
        """Arm a single power-loss event at absolute time ``t``.

        Unlike :meth:`schedule_power_loss` (a whole-run schedule set
        before ``run()``), this replaces the schedule mid-session and
        resets the fired-crash cursor, so callers that inject repeated
        seeded kills — the cluster's shard-kill injector — can re-arm
        between epochs.  Requires the durability layer (recovery needs
        checkpoints and the walk journal).
        """
        if not self.cfg.durability.enabled:
            raise SimulationError(
                "arm_power_loss() requires durability.enabled "
                "(recovery replays from checkpoint + journal)"
            )
        if t < self.sim.now:
            raise SimulationError(
                f"cannot arm power loss in the past: t={t} < now={self.sim.now}"
            )
        pending = self._dur_events.pop("powerloss0", None)
        if pending is not None:
            pending.cancel()
        self.power_loss_times = (float(t),)
        self._crashes_fired = 0
        # Schedule only the power-loss event itself.  Running the full
        # _arm_durability here would arm the journal/scrub events *now*
        # rather than at the next injection (where an unkilled run arms
        # them), shifting their fire phase — and with it the engine's
        # flush contention — so a killed timeline would diverge from
        # its uninterrupted baseline even before the crash fires.
        self._dur_events["powerloss0"] = self.sim.at(
            float(t), lambda: self._power_loss(0), priority=_PRIO_POWER_LOSS
        )

    def restore_for_resume(self, checkpoint=None):
        """Restore state from a checkpoint and re-arm scheduled events.

        The restore half of :meth:`resume`, split out so layers above
        the engine (the query service) can interpose their own state
        restoration between this and driving the simulation.  Returns
        the checkpoint that was restored.
        """
        from ..faults.checkpoint import restore_checkpoint

        snap = checkpoint if checkpoint is not None else self.latest_checkpoint
        if snap is None:
            raise SimulationError("no checkpoint available to resume from")
        restore_checkpoint(self, snap)
        if self.fault_model is not None:
            for t_fail, chip_flat in self.cfg.faults.chip_failures:
                if float(t_fail) >= self.sim.now and not self.fault_model.is_failed(
                    int(chip_flat)
                ):
                    self.sim.at(
                        float(t_fail),
                        lambda c=int(chip_flat): self._fail_chip(c),
                    )
        self._arm_durability()
        self._arm_ftl_gc()
        # Restore the armed-event *set* as of capture: a snapshot taken
        # at a drained rest point (cluster epoch boundary) had no
        # recurring events armed — the resumed timeline must re-arm
        # them lazily at its next injection, exactly as the original
        # timeline did, or the flush/scrub phase diverges from it.
        armed = self._restored_dur_armed
        if armed is not None:
            for key in list(self._dur_events):
                if not key.startswith("powerloss") and key not in armed:
                    self._dur_events.pop(key).cancel()
        # Same lazy-re-arm contract for the FTL GC event, which exists
        # with or without the durability layer's armed-set machinery.
        if self._restored_ftlgc_armed is False and "ftlgc" in self._dur_events:
            self._dur_events.pop("ftlgc").cancel()
        return snap

    def resume(
        self,
        checkpoint=None,
        max_events: int | None = None,
    ) -> RunResult:
        """Continue a crashed campaign from a checkpoint.

        Restores engine, hardware-occupancy, and RNG state from
        ``checkpoint`` (default: the latest snapshot taken by the crashed
        run) and drives the simulation to completion.  The merged result
        matches an uninterrupted run exactly.
        """
        self.restore_for_resume(checkpoint)
        t = self.sim.now
        self._kick_chips(t)
        self._service_barriers(t)
        self.sim.run(max_events=max_events)
        return self._finalize_run()

    # -------------------------------------------------------------- durability

    def schedule_power_loss(self, *times: float) -> None:
        """Schedule seeded power-loss events at the given simulated times.

        Each raises :class:`~repro.common.errors.PowerLossError` out of
        ``sim.run()`` the instant the clock reaches it (any event
        boundary, not just quiescent barriers); :meth:`recover` restores
        the latest checkpoint and replays forward.  Times past the end
        of the run never fire.  Requires ``durability.enabled`` — the
        schedule is a runtime attribute, deliberately outside the
        config so it does not perturb the ``config_fingerprint``.
        """
        self.power_loss_times = tuple(sorted(float(t) for t in times))

    def _arm_durability(self) -> None:
        """(Re-)schedule the recurring durability events from now.

        Called at run/session start (fresh grid/draws) and after a
        checkpoint restore (stored absolute fire times, which the
        negative event priorities guarantee are strictly in the
        future at capture).
        """
        dcfg = self.cfg.durability
        if not dcfg.enabled:
            return
        t = self.sim.now
        ev = self._dur_events
        if self.journal is not None and "journal" not in ev:
            if self._next_journal_flush is None:
                # Absolute grid: flush k lands at k * interval, so an
                # uninterrupted run and a resumed one share fire times.
                self._next_journal_flush = (
                    math.floor(t / dcfg.journal_interval) + 1
                ) * dcfg.journal_interval
            self._next_journal_flush = max(self._next_journal_flush, t)
            ev["journal"] = self.sim.at(
                self._next_journal_flush, self._journal_flush,
                priority=_PRIO_JOURNAL,
            )
        it = self.integrity
        if it is not None and it.rng is not None and "corrupt" not in ev:
            cap = dcfg.max_corruption_events
            if cap == 0 or it.injected < cap:
                if self._next_corruption is None:
                    self._next_corruption = t + float(
                        it.rng.exponential(1.0 / dcfg.silent_corruption_rate)
                    )
                self._next_corruption = max(self._next_corruption, t)
                ev["corrupt"] = self.sim.at(
                    self._next_corruption, self._corruption_arrival,
                    priority=_PRIO_CORRUPT,
                )
        if it is not None and dcfg.scrub_interval > 0 and "scrub" not in ev:
            if self._next_scrub is None:
                self._next_scrub = t + dcfg.scrub_interval
            self._next_scrub = max(self._next_scrub, t)
            ev["scrub"] = self.sim.at(
                self._next_scrub, self._scrub_pass, priority=_PRIO_SCRUB
            )
        for i, tp in enumerate(self.power_loss_times):
            key = f"powerloss{i}"
            if i < self._crashes_fired or key in ev or float(tp) < t:
                continue
            ev[key] = self.sim.at(
                float(tp),
                lambda i=i: self._power_loss(i),
                priority=_PRIO_POWER_LOSS,
            )

    def _cancel_durability_events(self) -> None:
        """Cancel recurring/pending durability events so the run can end."""
        for pending in self._dur_events.values():
            pending.cancel()
        self._dur_events.clear()

    def _journal_flush(self) -> None:
        """Group-commit event: pending journal records become durable."""
        t = self.sim.now
        self._next_journal_flush = t + self.cfg.durability.journal_interval
        j = self.journal
        nbytes = j.pending_bytes
        if nbytes > 0:
            # The journal pays normal write-back cost and competes for
            # channel/NAND bandwidth like any sink flush.
            end = self._flush_to_flash(t, nbytes)
            j.mark_flushed(
                end, pages=max(1, math.ceil(nbytes / self.cfg.ssd.page_bytes))
            )
            mx = self.telemetry
            if mx is not None:
                mx.counter("durability_journal_flushes").inc(1.0, t)
                mx.counter("durability_journal_flushed_bytes").inc(nbytes, t)
                mx.gauge("durability_journal_pending_records").set(0.0, t)
        if not self._done:
            self._dur_events["journal"] = self.sim.at(
                self._next_journal_flush, self._journal_flush,
                priority=_PRIO_JOURNAL,
            )
        else:
            self._dur_events.pop("journal", None)

    def _corruption_arrival(self) -> None:
        """Poisson arrival: a random plane develops silent corruption."""
        t = self.sim.now
        it = self.integrity
        dcfg = self.cfg.durability
        it.inject(t)
        cap = dcfg.max_corruption_events
        if cap == 0 or it.injected < cap:
            self._next_corruption = t + float(
                it.rng.exponential(1.0 / dcfg.silent_corruption_rate)
            )
            self._dur_events["corrupt"] = self.sim.at(
                self._next_corruption, self._corruption_arrival,
                priority=_PRIO_CORRUPT,
            )
        else:
            self._next_corruption = None
            self._dur_events.pop("corrupt", None)

    def _scrub_pass(self) -> None:
        """Background scrub event: verify the next planes at the cursor."""
        t = self.sim.now
        self._next_scrub = t + self.cfg.durability.scrub_interval
        it = self.integrity
        pages_before = it.scrub_pages_read
        it.scrub_pass(t)
        mx = self.telemetry
        if mx is not None:
            mx.counter("durability_scrub_passes").inc(1.0, t)
            mx.counter("durability_scrub_pages").inc(
                it.scrub_pages_read - pages_before, t
            )
        if not self._done:
            self._dur_events["scrub"] = self.sim.at(
                self._next_scrub, self._scrub_pass, priority=_PRIO_SCRUB
            )
        else:
            self._dur_events.pop("scrub", None)

    def _arm_ftl_gc(self) -> None:
        """(Re-)schedule the background FTL-GC event from now.

        Independent of the durability layer: an enabled DFTL housekeeps
        even when journal/scrub are off.  Same absolute-grid discipline
        as the durability events so an uninterrupted run and a resumed
        one share fire times.
        """
        if self.ssd.dftl is None or not self.ssd.ftl.background_gc:
            return
        if "ftlgc" in self._dur_events:
            return
        interval = self.cfg.ssd.ftl.gc_interval
        t = self.sim.now
        if self._next_ftl_gc is None:
            self._next_ftl_gc = (math.floor(t / interval) + 1) * interval
        self._next_ftl_gc = max(self._next_ftl_gc, t)
        self._dur_events["ftlgc"] = self.sim.at(
            self._next_ftl_gc, self._ftl_gc_pass, priority=_PRIO_FTL_GC
        )

    def _ftl_gc_pass(self) -> None:
        """Background-GC event: reclaim the neediest planes' worst blocks.

        Each pass collects at most ``gc_planes_per_pass`` planes whose
        free-block counts sit at/below the watermark; the migrations and
        erases occupy the owning chips' dispatchers, planes, and channel
        buses — the housekeeping traffic walks contend with.
        """
        t = self.sim.now
        self._next_ftl_gc = t + self.cfg.ssd.ftl.gc_interval
        ftl = self.ssd.ftl
        for flat in ftl.gc_candidates()[: self.cfg.ssd.ftl.gc_planes_per_pass]:
            self.ssd.ftl_gc_collect(t, flat)
        mx = self.telemetry
        if mx is not None:
            if ftl._touched:
                mx.gauge("ftl_free_blocks_min").set(
                    min(ftl.free_blocks(f) for f in ftl._touched), t
                )
            mx.gauge("ftl_write_amplification").set(
                self.ssd.dftl.write_amplification(ftl), t
            )
            mx.gauge("ftl_cmt_hit_rate").set(self.ssd.dftl.cmt.hit_rate, t)
        if not self._done:
            self._dur_events["ftlgc"] = self.sim.at(
                self._next_ftl_gc, self._ftl_gc_pass, priority=_PRIO_FTL_GC
            )
        else:
            self._dur_events.pop("ftlgc", None)

    def _power_loss(self, index: int) -> None:
        """Cut power: volatile state is lost, torn pages drawn, run aborts."""
        t = self.sim.now
        self._dur_events.pop(f"powerloss{index}", None)
        self._crashes_fired = index + 1
        # Torn-page draw from a seed derived per crash, outside the
        # registry: the crash must not perturb any checkpointed stream
        # (the replayed timeline never executes this draw).
        rng = np.random.default_rng(
            derive_seed(self._seed, f"powerloss:{index}")
        )
        prob = self.cfg.durability.torn_page_prob
        torn: list[tuple[int, int, int]] = []
        for i in range(self.cfg.ssd.total_chips):
            chip_hw = self.ssd.chip_flat(i)
            for d_i, die in enumerate(chip_hw.dies):
                for p_i, pl in enumerate(die.planes):
                    if pl.busy_until > t and rng.random() < prob:
                        torn.append((i, d_i, p_i))
        self._last_power_loss = {
            "at": t,
            "events": self.sim.events_executed,
            "completed": self.completed_walks,
            "torn": tuple(torn),
        }
        tr = self.tracer
        if tr is not None:
            tr.instant("fault", PID_FAULTS, 0, "power_loss", t,
                       args={"index": index, "torn_pages": len(torn)})
        raise PowerLossError(
            f"power loss at t={t:.6f}s with "
            f"{self.total_walks - self.completed_walks} walks in flight "
            f"and {len(torn)} torn pages",
            at=t,
            events_executed=self.sim.events_executed,
            completed_walks=self.completed_walks,
            torn_pages=torn,
        )

    def _quarantine_plane(self, chip_flat: int, die: int, plane: int) -> None:
        """Integrity-layer quarantine: retire the plane's active block.

        Routed through the FTL's bad-block machinery (so the remap lands
        in the replayable remap log) and invalidates the board's cached
        mapping entries for the chip's blocks — reconstruction moved
        pages, so stale cache hits must re-resolve.
        """
        cpc = self.cfg.ssd.chips_per_channel
        flat = self.ssd.ftl.flat_plane(
            chip_flat // cpc, chip_flat % cpc, die, plane
        )
        self.ssd.ftl.retire_active_block(flat)
        mine = np.flatnonzero(self.block_chip == int(chip_flat))
        if mine.size:
            self.board.invalidate_cached_blocks(mine)

    def _crash_context(self, snap) -> dict:
        """RPO/RTO accounting for the crash being recovered from.

        Must run *before* the checkpoint restore wipes the crashed
        timeline's journal and accounting.  Verifies the journal and
        raises :class:`InvariantViolation` if any record was dropped or
        corrupted.
        """
        info = self._last_power_loss or {}
        t_crash = float(info.get("at", self.sim.now))
        j = self.journal
        if j is not None:
            violations = j.verify()
            if violations:
                raise InvariantViolation(
                    "walk journal failed verification during recovery",
                    violations=violations,
                    at=t_crash,
                    context="durability/journal",
                )
        completed_at_crash = int(info.get("completed", self.completed_walks))
        if j is not None:
            durable = int(j.durable_cum())
            replay_records = j.durable_records()
            record_bytes = j.record_bytes
        else:
            durable = int(snap.data["completed_walks"])
            replay_records = 0
            record_bytes = 0
        ssd_cfg = self.cfg.ssd
        # Journal replay: re-read the durable records from flash.
        replay_pages = (
            max(1, math.ceil(replay_records * record_bytes / ssd_cfg.page_bytes))
            if replay_records
            else 0
        )
        journal_replay_time = replay_pages * (
            ssd_cfg.read_latency
            + ssd_cfg.page_bytes / ssd_cfg.channel_bytes_per_sec
        )
        # Torn pages: RAIN-reconstruct each from its parity group (read
        # the survivors, stream the XOR over the bus, program back).
        torn = info.get("torn", ())
        per_torn = (
            ssd_cfg.read_latency
            + (ssd_cfg.chips_per_channel - 1)
            * ssd_cfg.page_bytes
            / ssd_cfg.channel_bytes_per_sec
            + ssd_cfg.program_latency
        )
        torn_repair_time = len(torn) * per_torn
        replay_span = max(0.0, t_crash - snap.time)
        return {
            "crashes": int(self._crashes_fired),
            "t_crash": t_crash,
            "events_at_crash": int(info.get("events", 0)),
            "completed_at_crash": completed_at_crash,
            "checkpoint_time": float(snap.time),
            "completed_at_checkpoint": int(snap.data["completed_walks"]),
            "durable_walks": durable,
            "rpo_walks": max(0, completed_at_crash - durable),
            "torn_pages": len(torn),
            "journal_replay_time": journal_replay_time,
            "torn_repair_time": torn_repair_time,
            "replay_span": replay_span,
            "rto_time": replay_span + journal_replay_time + torn_repair_time,
        }

    def recover(self, max_events: int | None = None) -> RunResult:
        """Recover from a power loss: restore, replay, report RPO/RTO.

        Resumes from the latest checkpoint and attaches the crash's
        recovery accounting under ``result.durability["recovery"]`` —
        the *only* part of the result that may differ from an
        uninterrupted run's.
        """
        snap = self.latest_checkpoint
        if snap is None:
            raise SimulationError(
                "no checkpoint available to recover from "
                "(cold restart required)"
            )
        ctx = self._crash_context(snap)
        result = self.resume(snap, max_events=max_events)
        if result.durability is not None:
            result.durability = dict(result.durability, recovery=ctx)
        return result

    def _durability_section(self) -> dict:
        """Replay-invariant durability stats for the run report."""
        dcfg = self.cfg.durability
        out: dict = {
            "enabled": True,
            "checkpoints": {
                "taken": int(self.metrics.checkpoints.total),
                "retained": len(self._checkpoints),
                "keep_last": int(dcfg.checkpoint_keep_last),
            },
        }
        if self.journal is not None:
            out["journal"] = self.journal.stats()
        if self.integrity is not None:
            out["integrity"] = self.integrity.stats()
        return out

    # ----------------------------------------------------------- partition end

    def _maybe_finish_partition(self, t: float) -> None:
        if self._done or self.scheduler is None:
            return
        if self.scheduler.total_pending > 0 or self.in_transit > 0:
            return
        if any(c.busy or c.pending_rove_count for c in self.chips):
            return
        if self.completed_walks >= self.total_walks:
            self._done = True
            # Recurring durability events (and unfired power losses)
            # would otherwise keep the event loop alive forever.
            self._cancel_durability_events()
            return
        if self.foreign.total == 0:  # pragma: no cover - consistency guard
            raise SimulationError(
                "no pending work anywhere but "
                f"{self.total_walks - self.completed_walks} walks unfinished"
            )
        self._switch_partition(t)

    # -------------------------------------------------------------- inspection

    def describe(self) -> str:
        """Human-readable configuration/topology summary."""
        from ..common.units import fmt_bytes

        return (
            f"FlashWalker: |V|={self.graph.num_vertices} "
            f"|E|={self.graph.num_edges} blocks={self.part.num_blocks} "
            f"({fmt_bytes(self.cfg.subgraph_bytes)} each) "
            f"partitions={self.n_partitions} chips={len(self.chips)} "
            f"channels={len(self.channels)} "
            f"hot(board/chan)={len(self.board.hot_blocks)}/"
            f"{sum(len(c.hot_blocks) for c in self.channels)} "
            f"dense={self.part.num_dense_vertices}"
        )
