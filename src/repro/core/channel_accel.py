"""Channel-level accelerator state (Section III-C).

Sits at the flash channel controller.  Holds the K hottest subgraphs (by
in-degree) among the blocks stored on this channel's chips, updates
roving walks that land in them, performs the approximate walk search
(range query) for the rest, and forwards commands/data between the board
and chip accelerators.
"""

from __future__ import annotations

import numpy as np

from ..common.config import AcceleratorConfig
from ..common.errors import ReproError
from .advance import AdvanceResult
from .mapping import RangeTable

__all__ = ["ChannelAccelerator"]


class ChannelAccelerator:
    """State of one channel-level accelerator."""

    def __init__(self, channel_id: int, cfg: AcceleratorConfig, walk_bytes: int):
        self.channel_id = channel_id
        self.cfg = cfg
        self.walk_bytes = walk_bytes
        #: Hot (top in-degree) blocks resident here; set per run.
        self.hot_blocks: list[int] = []
        #: Sorted copy for binary-search membership on the collect path.
        self.hot_blocks_sorted = np.zeros(0, dtype=np.int64)
        #: The partition's subgraph-range table (set at partition start).
        self.range_table: RangeTable | None = None
        self.collect_scheduled = False
        #: Optional :class:`~repro.obs.Tracer`; None = no recording.
        self.tracer = None
        # statistics
        self.batches = 0
        self.hops = 0
        self.range_queries = 0

    def set_hot_blocks(self, blocks: list[int]) -> None:
        self.hot_blocks = list(blocks)
        self.hot_blocks_sorted = np.sort(np.asarray(self.hot_blocks, dtype=np.int64))

    def set_range_table(self, table: RangeTable | None) -> None:
        self.range_table = table

    # -- timing -----------------------------------------------------------------

    def batch_time(self, result: AdvanceResult) -> float:
        """Updater + guider time to advance walks in the hot subgraphs."""
        upd = (
            (result.hops * self.cfg.updater_ops_per_hop + result.bias_steps)
            * self.cfg.updater_cycle
            / self.cfg.n_updaters
        )
        gid = result.guide_ops * self.cfg.guider_cycle / self.cfg.n_guiders
        self.batches += 1
        self.hops += result.hops
        t = upd + gid
        tr = self.tracer
        if tr is not None:
            tr.latency("channel_batch", t)
        return t

    def range_query_time(self, n_walks: int) -> float:
        """Approximate walk search time for ``n_walks`` roving walks."""
        if n_walks < 0:
            raise ReproError(f"negative walk count {n_walks}")
        if self.range_table is None or n_walks == 0:
            return 0.0
        steps = self.range_table.search_steps()
        self.range_queries += n_walks
        t = n_walks * steps * self.cfg.guider_cycle / self.cfg.n_guiders
        tr = self.tracer
        if tr is not None:
            tr.latency("range_query", t)
        return t

    def guide_time(self, n_ops: int) -> float:
        """Plain guider operations (membership compares, moves)."""
        return n_ops * self.cfg.guider_cycle / self.cfg.n_guiders

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChannelAccelerator(ch={self.channel_id}, "
            f"hot={self.hot_blocks}, batches={self.batches})"
        )
