"""Walk query caches (Section III-D).

Small caches of hot subgraph-mapping entries shared by groups of board
guiders (the paper provisions 32 caches, one per 4 guiders, 4 KB each).
A hit resolves a walk query in one cache probe; a miss pays the full
binary search and installs the entry.  Two locality sources make this
work: upper-level binary-search-tree nodes recur, and power-law graphs
concentrate walks in few hot subgraphs.

The cache is modeled at *entry granularity with LRU replacement*: keys
are subgraph (block) IDs.  Batched queries are *exactly* equivalent to
probing each element in arrival order: hit/miss counts, evictions and
final recency all match the sequential :meth:`WalkQueryCache.probe`
oracle.  When the batch's unique blocks fit in the cache this is done
in O(unique) (no batch entry can be evicted mid-batch, so every repeat
is a hit); otherwise the batch is replayed element-by-element, since
interleaved installs may evict a block before its repeat arrives.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..common.errors import ReproError

__all__ = ["WalkQueryCache", "QueryCacheArray"]

#: Sentinel distinguishing "absent" from a stored None payload.
_MISSING = object()


class WalkQueryCache:
    """One LRU cache of subgraph mapping entries."""

    def __init__(self, n_entries: int):
        if n_entries < 1:
            raise ReproError(f"cache needs >= 1 entry, got {n_entries}")
        self.n_entries = n_entries
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def probe(self, block_id: int) -> bool:
        """Single query; returns True on hit.  Installs on miss."""
        if block_id in self._lru:
            self._lru.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        self._lru[block_id] = None
        if len(self._lru) > self.n_entries:
            self._lru.popitem(last=False)
        return False

    def probe_batch(self, block_ids: np.ndarray) -> tuple[int, int]:
        """Query a batch in arrival order; returns (hits, misses).

        Semantically identical to ``for b in block_ids: self.probe(b)``.
        The fast path processes unique blocks in first-appearance order:
        while the batch's distinct blocks fit in the cache, a batch entry
        is always more recently used than any pre-existing entry, so no
        batch block can be evicted mid-batch and every repeat is a hit.
        If the distinct blocks exceed capacity that invariant breaks (an
        install may evict a block before its repeat arrives), so the
        batch is replayed element-by-element instead.
        """
        block_ids = np.asarray(block_ids, dtype=np.int64)
        n = int(block_ids.size)
        if n == 0:
            return 0, 0
        uniq, first_idx = np.unique(block_ids, return_index=True)
        if uniq.size > self.n_entries:
            # Exact sequential replay; consecutive duplicates are
            # collapsed first (the entry was touched by the immediately
            # preceding probe, so they are guaranteed hits that change
            # neither membership nor recency).
            keep = np.empty(n, dtype=bool)
            keep[0] = True
            np.not_equal(block_ids[1:], block_ids[:-1], out=keep[1:])
            dup_hits = n - int(keep.sum())
            hits = dup_hits
            misses = 0
            self.hits += dup_hits
            for b in block_ids[keep].tolist():
                if self.probe(b):
                    hits += 1
                else:
                    misses += 1
            return hits, misses
        hits = 0
        misses = 0
        for b in uniq[np.argsort(first_idx, kind="stable")].tolist():
            if self.probe(b):  # probe() counts this first query
                hits += 1
            else:
                misses += 1
        n_repeats = n - int(uniq.size)
        if n_repeats:
            # Every repeat hits its (still resident) entry.
            self.hits += n_repeats
            hits += n_repeats
            # Recency must reflect each block's *last* appearance, as the
            # sequential oracle's repeat probes would have refreshed it.
            last_idx = (n - 1) - np.unique(block_ids[::-1], return_index=True)[1]
            for b in uniq[np.argsort(last_idx, kind="stable")].tolist():
                self._lru.move_to_end(b)
        return hits, misses

    def __contains__(self, block_id: int) -> bool:
        """Non-mutating residency check (no LRU refresh, no counters)."""
        return block_id in self._lru

    def entries(self) -> list[int]:
        """Resident block IDs in LRU-to-MRU order (for tests/debugging)."""
        return list(self._lru)

    def invalidate(self) -> None:
        self._lru.clear()

    def invalidate_blocks(self, block_ids) -> int:
        """Evict specific blocks (no counters); returns how many were
        resident.  Used on chip failover: a failed chip's remapped
        blocks must not serve stale mapping entries."""
        removed = 0
        for b in np.asarray(block_ids, dtype=np.int64).tolist():
            if self._lru.pop(b, _MISSING) is not _MISSING:
                removed += 1
        return removed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WalkQueryCache(entries={self.n_entries}, "
            f"hit_rate={self.hit_rate:.2%})"
        )


class QueryCacheArray:
    """The board's bank of walk query caches.

    Walks are distributed over caches by guider group (we shard on block
    ID, matching how guiders pull walks from the guide buffer).
    """

    def __init__(self, n_caches: int, entries_per_cache: int):
        if n_caches < 1:
            raise ReproError(f"need >= 1 cache, got {n_caches}")
        self.caches = [WalkQueryCache(entries_per_cache) for _ in range(n_caches)]

    def probe_batch(self, block_ids: np.ndarray) -> tuple[int, int]:
        """Shard a batch across the caches; returns (hits, misses).

        Each shard's sub-batch keeps the batch's arrival order (boolean
        selection is order-preserving), and the caches are independent,
        so the result is identical to probing every element sequentially
        against its cache.
        """
        block_ids = np.asarray(block_ids, dtype=np.int64)
        if block_ids.size == 0:
            return 0, 0
        shard = block_ids % len(self.caches)
        hits = 0
        misses = 0
        for i in np.unique(shard).tolist():
            h, m = self.caches[i].probe_batch(block_ids[shard == i])
            hits += h
            misses += m
        return hits, misses

    def invalidate(self) -> None:
        """Drop all entries (partition switch: table contents change)."""
        for cache in self.caches:
            cache.invalidate()

    def invalidate_blocks(self, block_ids) -> int:
        """Evict specific blocks from their owning shards; returns the
        number of entries actually removed."""
        block_ids = np.asarray(block_ids, dtype=np.int64)
        if block_ids.size == 0:
            return 0
        shard = block_ids % len(self.caches)
        removed = 0
        for i in np.unique(shard).tolist():
            removed += self.caches[i].invalidate_blocks(block_ids[shard == i])
        return removed

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.caches)

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.caches)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
