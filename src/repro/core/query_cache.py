"""Walk query caches (Section III-D).

Small caches of hot subgraph-mapping entries shared by groups of board
guiders (the paper provisions 32 caches, one per 4 guiders, 4 KB each).
A hit resolves a walk query in one cache probe; a miss pays the full
binary search and installs the entry.  Two locality sources make this
work: upper-level binary-search-tree nodes recur, and power-law graphs
concentrate walks in few hot subgraphs.

The cache is modeled at *entry granularity with LRU replacement*: keys
are subgraph (block) IDs.  Batched queries are processed in
first-appearance order over the unique blocks in the batch, which is
accurate for the engine's batch-arrival pattern while staying O(unique).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..common.errors import ReproError

__all__ = ["WalkQueryCache", "QueryCacheArray"]


class WalkQueryCache:
    """One LRU cache of subgraph mapping entries."""

    def __init__(self, n_entries: int):
        if n_entries < 1:
            raise ReproError(f"cache needs >= 1 entry, got {n_entries}")
        self.n_entries = n_entries
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def probe(self, block_id: int) -> bool:
        """Single query; returns True on hit.  Installs on miss."""
        if block_id in self._lru:
            self._lru.move_to_end(block_id)
            self.hits += 1
            return True
        self.misses += 1
        self._lru[block_id] = None
        if len(self._lru) > self.n_entries:
            self._lru.popitem(last=False)
        return False

    def probe_batch(self, block_ids: np.ndarray) -> tuple[int, int]:
        """Query a batch; returns (hits, misses).

        All repeats of a block within the batch after its first probe are
        hits (the entry was just installed or refreshed).
        """
        block_ids = np.asarray(block_ids, dtype=np.int64)
        if block_ids.size == 0:
            return 0, 0
        uniq, counts = np.unique(block_ids, return_counts=True)
        hits = 0
        misses = 0
        for b, c in zip(uniq.tolist(), counts.tolist()):
            if self.probe(b):  # probe() counts this first query
                hits += 1
            else:
                misses += 1
            if c > 1:  # repeats in the batch hit the fresh entry
                self.hits += c - 1
                hits += c - 1
        return hits, misses

    def invalidate(self) -> None:
        self._lru.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WalkQueryCache(entries={self.n_entries}, "
            f"hit_rate={self.hit_rate:.2%})"
        )


class QueryCacheArray:
    """The board's bank of walk query caches.

    Walks are distributed over caches by guider group (we shard on block
    ID, matching how guiders pull walks from the guide buffer).
    """

    def __init__(self, n_caches: int, entries_per_cache: int):
        if n_caches < 1:
            raise ReproError(f"need >= 1 cache, got {n_caches}")
        self.caches = [WalkQueryCache(entries_per_cache) for _ in range(n_caches)]

    def probe_batch(self, block_ids: np.ndarray) -> tuple[int, int]:
        """Shard a batch across the caches; returns (hits, misses)."""
        block_ids = np.asarray(block_ids, dtype=np.int64)
        if block_ids.size == 0:
            return 0, 0
        shard = block_ids % len(self.caches)
        hits = 0
        misses = 0
        for i, cache in enumerate(self.caches):
            sub = block_ids[shard == i]
            if sub.size:
                h, m = cache.probe_batch(sub)
                hits += h
                misses += m
        return hits, misses

    def invalidate(self) -> None:
        """Drop all entries (partition switch: table contents change)."""
        for cache in self.caches:
            cache.invalidate()

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.caches)

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.caches)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
