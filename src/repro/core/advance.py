"""Vectorized walk advancement within a set of loaded subgraphs.

The inner loop of every accelerator level (Section III-B steps 2-7):
fetch a walk, sample its next stop, decrement hops, then guide it — into
another loaded subgraph's queue (keep advancing), the completed buffer,
or the roving buffer.  We advance the *whole batch* per iteration with
NumPy and count hops / guide operations / ITS search steps so the caller
can charge accurate updater and guider time (DESIGN.md Section 4:
behaviorally exact trajectories, request-accurate timing).

Dense-vertex rules (Section III-D): a walk *landing on* a dense vertex
always exits as roving — it needs board-level pre-walking.  A walk
*arriving with* a pre-walked edge index resolves that edge directly when
its dense block is loaded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ReproError
from ..graph.csr import CSRGraph
from ..graph.partition import GraphPartitioning
from ..walks.sampling import its_search_steps
from ..walks.spec import WalkSpec
from ..walks.state import WalkSet
from .buffers import WalkBatch

__all__ = ["AdvanceContext", "AdvanceResult", "advance_batch", "in_sorted"]


def in_sorted(sorted_arr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership test against a *sorted* array via binary search.

    Equivalent to ``np.isin(values, sorted_arr)`` but O(n log m) with no
    per-call sort or broadcast temporaries — the guider membership check
    is on the advancement hot path.
    """
    if sorted_arr.size == 0:
        return np.zeros(np.shape(values), dtype=bool)
    idx = np.searchsorted(sorted_arr, values)
    np.minimum(idx, sorted_arr.size - 1, out=idx)
    return sorted_arr[idx] == values


@dataclass
class AdvanceContext:
    """Static inputs of the advancement kernel, shared by all levels."""

    graph: CSRGraph
    partitioning: GraphPartitioning
    spec: WalkSpec
    sampler: object  # (cur, rng) -> next vertices, -1 at dead ends
    is_dense_vertex: np.ndarray  # bool per vertex

    @classmethod
    def build(cls, graph, partitioning, spec, sampler) -> "AdvanceContext":
        dense = np.zeros(graph.num_vertices, dtype=bool)
        if partitioning.dense_meta:
            dense[np.fromiter(partitioning.dense_meta, dtype=np.int64)] = True
        return cls(graph, partitioning, spec, sampler, dense)


@dataclass
class AdvanceResult:
    """Outcome of draining one batch against a loaded subgraph set."""

    completed: WalkSet
    roving: WalkSet
    hops: int
    guide_ops: int
    bias_steps: int

    @property
    def n_completed(self) -> int:
        return len(self.completed)


def advance_batch(
    ctx: AdvanceContext,
    batch: WalkBatch,
    loaded_blocks: list[int] | np.ndarray,
    rng: np.random.Generator,
) -> AdvanceResult:
    """Advance walks until each terminates or leaves ``loaded_blocks``.

    ``batch.pre_edge`` entries >= 0 are resolved on the first iteration
    (their dense block must be in ``loaded_blocks``).  Returns completed
    and roving walk sets plus the operation counts for timing.
    """
    loaded = np.asarray(sorted(set(int(b) for b in loaded_blocks)), dtype=np.int64)
    walks = batch.walks
    n = len(walks)
    if n == 0:
        return AdvanceResult(WalkSet.empty(), WalkSet.empty(), 0, 0, 0)

    graph = ctx.graph
    part = ctx.partitioning
    offsets = graph.offsets
    edges = graph.edges

    src = walks.src.copy()
    cur = walks.cur.copy()
    hop = walks.hop.copy()
    pre = (
        batch.pre_edge.copy()
        if batch.pre_edge is not None
        else np.full(n, -1, dtype=np.int64)
    )

    completed_parts: list[WalkSet] = []
    roving_parts: list[WalkSet] = []
    hops = 0
    guide_ops = 0
    bias_steps = 0
    n_cmp = max(1, loaded.size)  # guider compares against each loaded range

    biased = ctx.spec.biased
    sampler = ctx.sampler
    active = np.arange(n, dtype=np.int64)
    first_iteration = True
    while active.size:
        acur = cur[active]
        # Pre-walked dense hops exist only on the first iteration; the
        # common later iterations sample directly with no mask/temporary
        # allocations (this loop dominates chip-batch host time).
        if first_iteration and (pre[active] >= 0).any():
            has_pre = pre[active] >= 0
            nxt = np.empty(active.size, dtype=np.int64)
            pa = active[has_pre]
            eidx = offsets[cur[pa]] + pre[pa]
            if (pre[pa] >= (offsets[cur[pa] + 1] - offsets[cur[pa]])).any():
                raise ReproError("pre-walked edge index beyond vertex degree")
            nxt[has_pre] = edges[eidx]
            plain = ~has_pre
            if plain.any():
                pcur = acur[plain]
                nxt[plain] = sampler(pcur, rng)
                if biased:
                    degs = offsets[pcur + 1] - offsets[pcur]
                    bias_steps += int(
                        np.sum(its_search_steps(np.maximum(degs, 1)))
                    )
        else:
            nxt = sampler(acur, rng)
            if biased:
                degs = offsets[acur + 1] - offsets[acur]
                bias_steps += int(np.sum(its_search_steps(np.maximum(degs, 1))))
        first_iteration = False

        dead = nxt < 0
        moved = ~dead
        hops += int(moved.sum())
        guide_ops += active.size * n_cmp

        # Apply the move.
        midx = active[moved]
        cur[midx] = nxt[moved]
        hop[midx] -= 1
        pre[midx] = -1

        done = dead.copy()
        done[moved] = hop[midx] == 0
        if ctx.spec.stop_probability > 0:
            still = moved & ~done
            if still.any():
                stop = ctx.spec.apply_stop_probability(
                    hop[active[still]], rng
                )
                tmp = np.zeros(active.size, dtype=bool)
                tmp[np.flatnonzero(still)[stop]] = True
                done |= tmp
        done_idx = active[done]
        if done_idx.size:
            completed_parts.append(
                WalkSet(src[done_idx], cur[done_idx], hop[done_idx])
            )
        cont = active[~done]
        if cont.size == 0:
            break
        # Guiding: stay if the new vertex's block is loaded here and the
        # vertex is not dense (dense landings need board pre-walking).
        v = cur[cont]
        blocks = part.block_of_vertex(v)
        stays = in_sorted(loaded, blocks) & ~ctx.is_dense_vertex[v]
        rove_idx = cont[~stays]
        if rove_idx.size:
            roving_parts.append(WalkSet(src[rove_idx], cur[rove_idx], hop[rove_idx]))
        active = cont[stays]

    return AdvanceResult(
        completed=WalkSet.concat(completed_parts),
        roving=WalkSet.concat(roving_parts),
        hops=hops,
        guide_ops=guide_ops,
        bias_steps=bias_steps,
    )
