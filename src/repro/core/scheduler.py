"""Subgraph scheduling (Section III-D, Eq. 1).

The scoreboard tracks, per subgraph of the current partition, how many
walks wait in the partition walk buffer (``pwb``) and how many were
spilled to flash (``fl``).  Eq. 1's critical degree::

    score_i = (pwb * alpha + fl) * beta    if subgraph i is non-dense
    score_i =  pwb * alpha + fl            if subgraph i is dense

``alpha`` weighs buffered walks (overflow-prone) over spilled ones;
``beta`` discounts dense subgraphs, whose walks pack denser (no ``cur``
stored) and so overflow later.

To avoid sorting all subgraphs, a per-chip **topN list** caches the N
highest-scoring subgraphs on that chip; it is refreshed from the dirty
set only every M walk-insertions per subgraph (Section III-D's
amortization).  With scheduling disabled (Fig. 9 baseline) the scheduler
degrades to most-buffered-walks order, GraphWalker's policy.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import SchedulingError
from ..obs.tracer import PID_BOARD as _PID_BOARD

__all__ = ["SubgraphScheduler"]


class SubgraphScheduler:
    """Scoreboard + per-chip topN lists over one graph partition."""

    def __init__(
        self,
        block_chip: np.ndarray,
        is_dense_block: np.ndarray,
        first_block: int,
        last_block: int,
        n_chips: int,
        alpha: float,
        beta: float,
        top_n: int,
        update_period_m: int,
        use_scores: bool = True,
    ):
        if not 0 <= first_block <= last_block:
            raise SchedulingError(f"bad block range [{first_block}, {last_block}]")
        if alpha <= 0 or beta <= 0:
            raise SchedulingError(f"alpha/beta must be positive ({alpha}, {beta})")
        if top_n < 1 or update_period_m < 1:
            raise SchedulingError("top_n and update_period_m must be >= 1")
        self.first_block = first_block
        self.last_block = last_block
        self.n_blocks = last_block - first_block + 1
        self.block_chip = np.asarray(
            block_chip[first_block : last_block + 1], dtype=np.int64
        )
        self.is_dense = np.asarray(
            is_dense_block[first_block : last_block + 1], dtype=bool
        )
        self.n_chips = n_chips
        self.alpha = alpha
        self.beta = beta
        self.top_n = top_n
        self.update_period_m = update_period_m
        self.use_scores = use_scores
        # Per-block state (local indices 0..n_blocks-1).
        self.pwb = np.zeros(self.n_blocks, dtype=np.int64)
        self.fl = np.zeros(self.n_blocks, dtype=np.int64)
        self._inserts_since_update = np.zeros(self.n_blocks, dtype=np.int64)
        # scores()/walk_counts() are recomputed only after a scoreboard
        # mutation; next_subgraph() and _refresh_top() otherwise share
        # the cached arrays (event-loop hotspot per the obs profiler).
        self._scores_cache: np.ndarray | None = None
        self._counts_cache: np.ndarray | None = None
        #: Times scores()/walk_counts() served the cached array.
        self.score_cache_hits = 0
        # Per-chip topN caches: local block indices, lazily refreshed.
        self._top: dict[int, list[int]] = {c: [] for c in range(n_chips)}
        self._dirty: set[int] = set(range(n_chips))
        self.topn_refreshes = 0
        self.topn_updates_deferred = 0
        #: Optional :class:`~repro.obs.Tracer` (with a bound clock, since
        #: the scheduler itself is timeless); None = no recording.
        self.tracer = None

    # -- index helpers ------------------------------------------------------------

    def _local(self, block_id: int) -> int:
        idx = block_id - self.first_block
        if not 0 <= idx < self.n_blocks:
            raise SchedulingError(
                f"block {block_id} outside partition "
                f"[{self.first_block}, {self.last_block}]"
            )
        return idx

    # -- scoreboard updates ---------------------------------------------------------

    def _touch(self) -> None:
        """Invalidate derived-array caches after a scoreboard mutation."""
        self._scores_cache = None
        self._counts_cache = None

    def add_buffered(self, block_id: int, count: int = 1) -> None:
        """Walks inserted into the partition walk buffer for ``block_id``."""
        if count < 0:
            raise SchedulingError(f"negative count {count}")
        idx = self._local(block_id)
        self._touch()
        self.pwb[idx] += count
        self._inserts_since_update[idx] += count
        # Amortized topN maintenance: only mark dirty every M insertions.
        if self._inserts_since_update[idx] >= self.update_period_m:
            self._inserts_since_update[idx] = 0
            self._dirty.add(int(self.block_chip[idx]))
        else:
            self.topn_updates_deferred += 1

    def add_spilled(self, block_id: int, count: int = 1) -> None:
        """Walks spilled from the buffer entry to flash."""
        if count < 0:
            raise SchedulingError(f"negative count {count}")
        idx = self._local(block_id)
        if count > self.pwb[idx]:
            raise SchedulingError(
                f"spilling {count} walks but only {self.pwb[idx]} buffered"
            )
        self._touch()
        self.pwb[idx] -= count
        self.fl[idx] += count
        self._dirty.add(int(self.block_chip[idx]))

    def take_walks(self, block_id: int) -> tuple[int, int]:
        """Claim all of a block's walks for loading; returns (pwb, fl)."""
        idx = self._local(block_id)
        pwb, fl = int(self.pwb[idx]), int(self.fl[idx])
        self._touch()
        self.pwb[idx] = 0
        self.fl[idx] = 0
        self._inserts_since_update[idx] = 0
        self._dirty.add(int(self.block_chip[idx]))
        return pwb, fl

    # -- scores ---------------------------------------------------------------------

    def scores(self) -> np.ndarray:
        """Eq. 1 over all blocks of the partition (vectorized).

        The returned array is cached until the next scoreboard mutation;
        callers must treat it as read-only.
        """
        if self._scores_cache is None:
            base = self.pwb * self.alpha + self.fl
            self._scores_cache = np.where(self.is_dense, base, base * self.beta)
        else:
            self.score_cache_hits += 1
        return self._scores_cache

    def walk_counts(self) -> np.ndarray:
        """Pending walks per block (cached; treat as read-only)."""
        if self._counts_cache is None:
            self._counts_cache = self.pwb + self.fl
        else:
            self.score_cache_hits += 1
        return self._counts_cache

    @property
    def total_pending(self) -> int:
        return int(self.pwb.sum() + self.fl.sum())

    # -- selection ----------------------------------------------------------------------

    def _refresh_top(self, chip: int) -> None:
        mask = self.block_chip == chip
        counts = self.walk_counts()
        candidates = np.flatnonzero(mask & (counts > 0))
        if candidates.size == 0:
            self._top[chip] = []
        else:
            key = self.scores() if self.use_scores else counts
            # Stable sort on the negated key: descending by score, ties
            # broken by *lowest* local block ID.  (A reversed ascending
            # stable sort would break ties by highest index, making topN
            # order depend on candidate layout rather than block ID.)
            order = np.argsort(-key[candidates], kind="stable")
            self._top[chip] = candidates[order][: self.top_n].tolist()
        self.topn_refreshes += 1
        self._dirty.discard(chip)
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "sched", _PID_BOARD, chip, "topn_refresh",
                args={"entries": len(self._top[chip])},
            )

    def next_subgraph(self, chip: int, exclude: set[int] | None = None) -> int | None:
        """Best block for ``chip`` to load next (global ID), or None.

        ``exclude`` holds block IDs currently loading elsewhere on the
        chip.  Entries with no walks left are skipped and the list is
        refreshed when it runs dry or the chip is dirty.
        """
        if not 0 <= chip < self.n_chips:
            raise SchedulingError(f"chip {chip} out of range [0, {self.n_chips})")
        exclude = exclude or set()
        counts = self.walk_counts()
        for _ in range(2):
            if chip in self._dirty or not self._top[chip]:
                self._refresh_top(chip)
            for idx in self._top[chip]:
                if counts[idx] > 0 and (idx + self.first_block) not in exclude:
                    return idx + self.first_block
            # topN stale (all consumed): force one refresh, then give up.
            if chip not in self._dirty:
                self._dirty.add(chip)
            else:
                break
        return None

    def reassign_blocks(self, block_ids, new_chips) -> None:
        """Move blocks to new owning chips (degraded mode).

        Used when a chip fails and its subgraphs are relocated onto the
        survivors: both the old and new owners' topN caches are marked
        dirty so future :meth:`next_subgraph` calls rebuild them.
        """
        for bid, chip in zip(block_ids, new_chips):
            if not 0 <= chip < self.n_chips:
                raise SchedulingError(
                    f"chip {chip} out of range [0, {self.n_chips})"
                )
            idx = self._local(int(bid))
            old = int(self.block_chip[idx])
            if old == chip:
                continue
            self.block_chip[idx] = chip
            self._dirty.add(old)
            self._dirty.add(int(chip))
            tr = self.tracer
            if tr is not None:
                tr.instant(
                    "sched", _PID_BOARD, int(chip), "block_reassigned",
                    args={"block": int(bid), "from_chip": old},
                )

    def chips_with_work(self) -> np.ndarray:
        """Chip indices that currently own blocks with pending walks."""
        counts = self.walk_counts()
        return np.unique(self.block_chip[counts > 0])

    def consistency_errors(self, pwb_buffer) -> list[str]:
        """Scoreboard-vs-buffer divergences, one message per bad block.

        The scoreboard's per-block (pwb, fl) counts must mirror the
        :class:`~repro.core.buffers.PartitionWalkBuffer` exactly at
        every event boundary (``_start_load`` enforces the same on the
        drain path).  Used by the service layer's invariant auditor.
        """
        errors = []
        if int(self.pwb.min(initial=0)) < 0 or int(self.fl.min(initial=0)) < 0:
            errors.append("scheduler scoreboard has negative counts")
        nonzero = np.flatnonzero((self.pwb != 0) | (self.fl != 0))
        blocks = set((nonzero + self.first_block).tolist())
        blocks.update(pwb_buffer.blocks_with_walks())
        for block in sorted(blocks):
            idx = block - self.first_block
            sb, sf = int(self.pwb[idx]), int(self.fl[idx])
            bb, bf = pwb_buffer.counts(block)
            if (sb, sf) != (bb, bf):
                errors.append(
                    f"block {block}: scheduler ({sb},{sf}) vs buffer ({bb},{bf})"
                )
        return errors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubgraphScheduler(blocks={self.n_blocks}, pending="
            f"{self.total_pending}, refreshes={self.topn_refreshes})"
        )
