"""FlashWalker core: accelerators, tables, scheduling, the engine."""

from .advance import AdvanceContext, AdvanceResult, advance_batch
from .bloom import BloomFilter
from .board_accel import BoardAccelerator
from .buffers import BlockEntry, ForeignerStore, PartitionWalkBuffer, WalkBatch
from .channel_accel import ChannelAccelerator
from .chip_accel import ChipAccelerator
from .dense import DenseVertexTable, PreWalkResult
from .energy import EnergyBreakdown, EnergyModel
from .flashwalker import FlashWalker
from .mapping import RangeTable, SubgraphMappingTable, binary_search_steps
from .metrics import RunMetrics, RunResult
from .query_cache import QueryCacheArray, WalkQueryCache
from .scheduler import SubgraphScheduler

__all__ = [
    "AdvanceContext",
    "AdvanceResult",
    "advance_batch",
    "BloomFilter",
    "BoardAccelerator",
    "BlockEntry",
    "ForeignerStore",
    "PartitionWalkBuffer",
    "WalkBatch",
    "ChannelAccelerator",
    "ChipAccelerator",
    "DenseVertexTable",
    "PreWalkResult",
    "EnergyBreakdown",
    "EnergyModel",
    "FlashWalker",
    "RangeTable",
    "SubgraphMappingTable",
    "binary_search_steps",
    "RunMetrics",
    "RunResult",
    "QueryCacheArray",
    "WalkQueryCache",
    "SubgraphScheduler",
]
