"""Subgraph mapping table, range table, and walk-query cost model.

Section III-D: the subgraph mapping table maps a vertex ID to its
subgraph via binary search over entries sorted by low-end vertex; each
entry holds the two end vertices, the flash address, and the subgraph's
summed out-degree.  Section III-C adds the *subgraph range mapping
table* in channel-level accelerators: an approximate search that only
returns which range of ``range_subgraphs`` consecutive subgraphs a walk
lands in, shrinking the board-level search scope by that factor.

Semantically both searches are a ``searchsorted``; what matters for the
simulation is the **step count** each query costs, which feeds the
guider timing model.  Lookups are vectorized over walk batches.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import ReproError
from ..graph.partition import GraphPartitioning

__all__ = ["SubgraphMappingTable", "RangeTable", "binary_search_steps"]


def binary_search_steps(n_entries: int) -> int:
    """Comparisons a binary search over ``n_entries`` performs (>= 1)."""
    if n_entries < 1:
        raise ReproError(f"binary search over {n_entries} entries")
    return max(1, math.ceil(math.log2(n_entries + 1)))


class SubgraphMappingTable:
    """Sorted subgraph mapping entries for one graph partition.

    Only the current partition's entries are resident (Section III-D:
    "only the required subgraph mapping entries are stored in the
    accelerator"); vertices outside the partition's vertex span are
    *foreigners*.
    """

    def __init__(self, partitioning: GraphPartitioning, first_block: int, last_block: int):
        if not 0 <= first_block <= last_block < partitioning.num_blocks:
            raise ReproError(
                f"bad block range [{first_block}, {last_block}] for "
                f"{partitioning.num_blocks} blocks"
            )
        self.partitioning = partitioning
        self.first_block = first_block
        self.last_block = last_block
        self.lo = partitioning.block_lo[first_block : last_block + 1]
        self.hi = partitioning.block_hi[first_block : last_block + 1]
        self.vertex_lo = int(self.lo[0])
        self.vertex_hi = int(self.hi[-1])
        self.lookups = 0
        self.search_steps_total = 0

    @property
    def n_entries(self) -> int:
        return int(self.lo.size)

    def full_search_steps(self) -> int:
        """Steps of an unrestricted binary search over this table."""
        return binary_search_steps(self.n_entries)

    def contains_vertices(self, v: np.ndarray) -> np.ndarray:
        """Mask: vertex inside this partition's span (False = foreigner)."""
        v = np.asarray(v, dtype=np.int64)
        return (v >= self.vertex_lo) & (v <= self.vertex_hi)

    def lookup(
        self, v: np.ndarray, scope_entries: int | None = None
    ) -> tuple[np.ndarray, int]:
        """Resolve vertices to *global* block IDs.

        ``scope_entries`` narrows the modeled search scope (the
        approximate walk search tags walks with a range, so the board
        guider only searches ``range_subgraphs`` entries).  Returns
        (block_ids, per-walk search step count).  Callers must ensure all
        ``v`` are within the partition (check :meth:`contains_vertices`).
        """
        v = np.asarray(v, dtype=np.int64)
        if v.size == 0:
            return np.zeros(0, dtype=np.int64), 0
        if (v < self.vertex_lo).any() or (v > self.vertex_hi).any():
            raise ReproError("lookup of vertex outside partition span")
        idx = np.searchsorted(self.lo, v, side="right") - 1
        blocks = idx + self.first_block
        first = self.partitioning._dense_first_block
        if first is not None:
            blocks = first[blocks]
        # Clamp the modeled scope to [1, n_entries]: a range tag can name
        # an empty scope (0 subgraphs beyond the first), but the guider
        # still performs at least one comparison to confirm the entry.
        scope = self.n_entries if scope_entries is None else max(
            1, min(scope_entries, self.n_entries)
        )
        steps = binary_search_steps(scope)
        self.lookups += v.size
        self.search_steps_total += steps * v.size
        return blocks, steps


class RangeTable:
    """Subgraph-range mapping table of a channel-level accelerator.

    One entry per ``range_subgraphs`` consecutive subgraphs, storing the
    range's low/high end vertices.  Also answers "is this walk in the
    current partition?" — walks outside are foreigners (Section III-C).
    """

    def __init__(
        self,
        partitioning: GraphPartitioning,
        first_block: int,
        last_block: int,
        range_subgraphs: int,
    ):
        if range_subgraphs < 1:
            raise ReproError(f"range_subgraphs must be >= 1, got {range_subgraphs}")
        self.range_subgraphs = range_subgraphs
        self.first_block = first_block
        n_blocks = last_block - first_block + 1
        self.n_ranges = -(-n_blocks // range_subgraphs)
        blo = partitioning.block_lo[first_block : last_block + 1]
        bhi = partitioning.block_hi[first_block : last_block + 1]
        self.range_lo = blo[::range_subgraphs][: self.n_ranges].copy()
        hi_idx = np.minimum(
            np.arange(1, self.n_ranges + 1) * range_subgraphs - 1, n_blocks - 1
        )
        self.range_hi = bhi[hi_idx].copy()
        self.vertex_lo = int(self.range_lo[0])
        self.vertex_hi = int(self.range_hi[-1])
        self.queries = 0

    def search_steps(self) -> int:
        return binary_search_steps(self.n_ranges)

    def query(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """Approximate walk search.

        Returns (range_id, in_partition mask, search steps per walk).
        Foreigners get range_id -1.
        """
        v = np.asarray(v, dtype=np.int64)
        if v.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool), 0
        inside = (v >= self.vertex_lo) & (v <= self.vertex_hi)
        rid = np.full(v.shape, -1, dtype=np.int64)
        if inside.any():
            rid[inside] = (
                np.searchsorted(self.range_lo, v[inside], side="right") - 1
            )
        self.queries += v.size
        return rid, inside, self.search_steps()

    def range_entry_scope(self) -> int:
        """Entries the board guider must search after a range tag."""
        return self.range_subgraphs
