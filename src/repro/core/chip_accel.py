"""Chip-level accelerator state (Section III-B, Fig. 3).

Each flash chip hosts one accelerator with a subgraph buffer (a few
slots), walk queues, one walk updater, one walk guider, and a roving
walk buffer.  The accelerator reads subgraphs from *this chip's planes*
directly — never over the channel bus — which is FlashWalker's central
data-path shortcut.

This class owns per-chip state and timing math; the engine drives it via
events.  Subgraph slots are managed LRU so a reloaded-but-resident block
skips the flash read.
"""

from __future__ import annotations

from ..common.config import AcceleratorConfig
from ..common.errors import ReproError
from ..walks.state import WalkSet
from .advance import AdvanceResult

__all__ = ["ChipAccelerator"]


class ChipAccelerator:
    """State of one chip-level accelerator."""

    def __init__(
        self,
        index: int,
        channel_id: int,
        chip_in_channel: int,
        cfg: AcceleratorConfig,
        slots: int,
        walk_bytes: int,
    ):
        if slots < 1:
            raise ReproError(f"chip {index}: need >= 1 subgraph slot")
        self.index = index
        self.channel_id = channel_id
        self.chip_in_channel = chip_in_channel
        self.cfg = cfg
        self.slots = slots
        self.walk_bytes = walk_bytes
        #: Blocks resident in the subgraph buffer, most recent last.
        self.loaded: list[int] = []
        self.busy = False
        #: Set when the underlying flash chip is declared dead: the
        #: scheduler stops targeting it and in-flight walks are rerouted.
        self.failed = False
        #: Roving walks awaiting the channel accelerator's collection.
        self.pending_rove: list[WalkSet] = []
        self.pending_rove_count = 0
        #: Completed walks awaiting write-back (count only: the record
        #: content no longer matters, just the flush traffic).
        self.pending_completed = 0
        #: Optional :class:`~repro.obs.Tracer`; None = no recording.
        self.tracer = None
        # statistics
        self.batches = 0
        self.hops = 0
        self.loads = 0
        self.reload_hits = 0

    # -- subgraph buffer -------------------------------------------------------

    def touch_block(self, block_id: int) -> bool:
        """LRU-load ``block_id``; True if a flash read is needed."""
        if block_id in self.loaded:
            self.loaded.remove(block_id)
            self.loaded.append(block_id)
            self.reload_hits += 1
            return False
        self.loaded.append(block_id)
        if len(self.loaded) > self.slots:
            self.loaded.pop(0)
        self.loads += 1
        return True

    # -- roving buffer ------------------------------------------------------------

    def push_roving(self, walks: WalkSet) -> None:
        if len(walks):
            self.pending_rove.append(walks)
            self.pending_rove_count += len(walks)
            tr = self.tracer
            if tr is not None:
                tr.highwater(
                    "buf.roving_bytes", self.pending_rove_count * self.walk_bytes
                )

    def take_roving(self) -> WalkSet:
        walks = WalkSet.concat(self.pending_rove)
        self.pending_rove = []
        self.pending_rove_count = 0
        return walks

    def take_completed(self) -> int:
        n = self.pending_completed
        self.pending_completed = 0
        return n

    @property
    def roving_capacity_walks(self) -> int:
        return max(1, self.cfg.roving_buffer_bytes // self.walk_bytes)

    def roving_overflow_stall(self, interval: float) -> float:
        """Stall time when a batch overfills the roving buffer.

        The channel accelerator drains the buffer every ``interval``;
        each extra buffer-full of walks waits one more period ("before
        stalling the chip-level accelerator's execution", Section III-B).
        """
        cap = self.roving_capacity_walks
        if self.pending_rove_count <= cap:
            return 0.0
        extra_fills = (self.pending_rove_count - 1) // cap
        return extra_fills * interval

    # -- timing ----------------------------------------------------------------------

    def batch_time(self, result: AdvanceResult) -> float:
        """Wall time the updater + guider pipeline needs for a batch."""
        upd = (
            (result.hops * self.cfg.updater_ops_per_hop + result.bias_steps)
            * self.cfg.updater_cycle
            / self.cfg.n_updaters
        )
        gid = result.guide_ops * self.cfg.guider_cycle / self.cfg.n_guiders
        self.batches += 1
        self.hops += result.hops
        t = upd + gid
        tr = self.tracer
        if tr is not None:
            tr.latency("chip_batch", t)
        return t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChipAccelerator(#{self.index}, loaded={self.loaded}, "
            f"busy={self.busy}, rove={self.pending_rove_count})"
        )
