"""Energy model for FlashWalker runs.

The paper reports circuit area (Table II) and argues the accelerator's
"low area/power overhead" (Section III-A); it does not publish an energy
evaluation.  This module provides the natural extension: an activity-
based energy estimate from the operation counts a run already collects,
using standard per-operation energy figures for NAND flash, ONFI I/O,
DDR4, and synthesized logic at 45 nm.

All constants are per-operation or per-byte energies (Joules); they can
be overridden to study different technology points.  The estimate is a
first-order activity model — leakage/idle power is charged for the run
duration against the synthesized area.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import ReproError
from .metrics import RunResult

__all__ = ["EnergyModel", "EnergyBreakdown"]


@dataclass
class EnergyModel:
    """Per-operation energy constants (defaults: typical 45 nm-era parts).

    Sources of magnitude: NAND page read ~50 uJ / program ~200 uJ per
    16 KB page class scaled to 4 KB; ONFI/DDR I/O ~10 pJ/bit; DDR4
    ~20 pJ/bit access energy; simple RISC-ish datapath op ~10 pJ at
    45 nm; SRAM access ~1 pJ/byte.  The *relative* composition is what
    the model is for.
    """

    flash_read_per_page: float = 15e-6
    flash_program_per_page: float = 60e-6
    channel_per_byte: float = 10e-12 * 8
    dram_per_byte: float = 20e-12 * 8
    pcie_per_byte: float = 15e-12 * 8
    accel_op: float = 10e-12
    table_search_step: float = 2e-12
    #: Static (leakage) power per mm^2 of synthesized logic at 45 nm.
    leakage_per_mm2_watt: float = 0.02
    page_bytes: int = 4096

    def validate(self) -> "EnergyModel":
        for name in (
            "flash_read_per_page",
            "flash_program_per_page",
            "channel_per_byte",
            "dram_per_byte",
            "pcie_per_byte",
            "accel_op",
            "table_search_step",
            "leakage_per_mm2_watt",
            "page_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ReproError(f"energy constant {name} must be positive")
        return self

    # -- estimation -----------------------------------------------------------

    def estimate(
        self, result: RunResult, accel_area_mm2: float = 0.0
    ) -> "EnergyBreakdown":
        """Activity-based energy estimate for one FlashWalker run."""
        self.validate()
        if accel_area_mm2 < 0:
            raise ReproError("negative accelerator area")
        c = result.counters
        read_pages = result.flash_read_bytes / self.page_bytes
        prog_pages = result.flash_write_bytes / self.page_bytes
        flash = (
            read_pages * self.flash_read_per_page
            + prog_pages * self.flash_program_per_page
        )
        channel = result.channel_bytes * self.channel_per_byte
        dram = result.dram_bytes * self.dram_per_byte
        # Accelerator dynamic energy: 5 updater ops per hop + guider and
        # table-search activity.
        hops = c.get("hops", result.hops)
        queries = c.get("walk_queries", 0.0)
        steps = c.get("query_search_steps", 0.0)
        accel = (
            hops * 5 * self.accel_op
            + queries * self.accel_op
            + steps * self.table_search_step
        )
        leakage = accel_area_mm2 * self.leakage_per_mm2_watt * result.elapsed
        return EnergyBreakdown(
            flash=flash,
            channel=channel,
            dram=dram,
            accelerator=accel,
            leakage=leakage,
            elapsed=result.elapsed,
            hops=int(hops),
        )

    def estimate_graphwalker(self, result) -> "EnergyBreakdown":
        """Host-side energy for a GraphWalker run (disk I/O + CPU).

        CPU energy uses a ~0.5 nJ/hop figure (a few hundred instructions
        per hop on a desktop core); disk I/O pays flash reads plus PCIe.
        """
        read_pages = result.disk_read_bytes / self.page_bytes
        prog_pages = result.disk_write_bytes / self.page_bytes
        flash = (
            read_pages * self.flash_read_per_page
            + prog_pages * self.flash_program_per_page
        )
        pcie = (
            (result.disk_read_bytes + result.disk_write_bytes)
            * self.pcie_per_byte
        )
        cpu = result.hops * 0.5e-9
        return EnergyBreakdown(
            flash=flash,
            channel=pcie,
            dram=0.0,
            accelerator=cpu,
            leakage=0.0,
            elapsed=result.elapsed,
            hops=result.hops,
        )


@dataclass
class EnergyBreakdown:
    """Energy (Joules) by component, plus per-walk-step figures."""

    flash: float
    channel: float
    dram: float
    accelerator: float
    leakage: float
    elapsed: float
    hops: int
    extra: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.flash + self.channel + self.dram + self.accelerator + self.leakage

    @property
    def mean_power_watt(self) -> float:
        return self.total / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def energy_per_hop(self) -> float:
        return self.total / self.hops if self.hops > 0 else 0.0

    def shares(self) -> dict[str, float]:
        """Fraction of total energy per component."""
        t = max(self.total, 1e-30)
        return {
            "flash": self.flash / t,
            "channel": self.channel / t,
            "dram": self.dram / t,
            "accelerator": self.accelerator / t,
            "leakage": self.leakage / t,
        }

    def summary(self) -> str:
        s = self.shares()
        return (
            f"E={self.total * 1e3:.3f}mJ P={self.mean_power_watt:.2f}W "
            f"({self.energy_per_hop * 1e9:.1f}nJ/hop) "
            f"[flash {s['flash']:.0%}, bus {s['channel']:.0%}, "
            f"dram {s['dram']:.0%}, accel {s['accelerator']:.0%}, "
            f"leak {s['leakage']:.0%}]"
        )
