"""Dense vertices mapping table and pre-walking (Section III-D).

A dense vertex's out-edges span several graph blocks, which can never be
co-resident under the accelerator buffer budget.  *Pre-walking* chooses
the graph block of the walk's next stop **before** sampling the stop:
for an unbiased walk, draw ``rnd`` in [0, outDegree) and route the walk
to block ``first + rnd // edges_per_block``; the in-block offset
``rnd % edges_per_block`` resolves later when that block is loaded.
The two-stage draw is distributionally identical to a single uniform
draw over all out-edges (tests verify this).

The table itself is a Bloom filter (membership) plus a hash map (the
metadata); the guider consults it *before* the subgraph mapping table,
and a false positive only costs a wasted hash probe.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ReproError
from ..graph.partition import DenseVertexMeta, GraphPartitioning
from .bloom import BloomFilter

__all__ = ["DenseVertexTable", "PreWalkResult"]


class PreWalkResult:
    """Outcome of pre-walking a batch: target block + in-block edge offset."""

    __slots__ = ("block", "edge_offset")

    def __init__(self, block: np.ndarray, edge_offset: np.ndarray):
        self.block = block
        self.edge_offset = edge_offset


class DenseVertexTable:
    """Bloom filter + hash table over dense vertices."""

    def __init__(self, partitioning: GraphPartitioning, bits_per_item: int = 10):
        self.partitioning = partitioning
        n = max(1, partitioning.num_dense_vertices)
        self.bloom = BloomFilter.for_capacity(n, bits_per_item)
        self.meta: dict[int, DenseVertexMeta] = dict(partitioning.dense_meta)
        if self.meta:
            self.bloom.add(np.fromiter(self.meta, dtype=np.int64, count=len(self.meta)))
        # Vectorized views of the metadata for batch pre-walking.
        if self.meta:
            verts = np.array(sorted(self.meta), dtype=np.int64)
            self._verts = verts
            self._first = np.array(
                [self.meta[int(v)].first_block for v in verts], dtype=np.int64
            )
            self._degree = np.array(
                [self.meta[int(v)].out_degree for v in verts], dtype=np.int64
            )
            self._per_block = np.array(
                [self.meta[int(v)].edges_per_block for v in verts], dtype=np.int64
            )
        else:
            self._verts = np.zeros(0, dtype=np.int64)
            self._first = np.zeros(0, dtype=np.int64)
            self._degree = np.zeros(0, dtype=np.int64)
            self._per_block = np.zeros(0, dtype=np.int64)
        self.bloom_queries = 0
        self.bloom_positives = 0
        self.false_positives = 0
        self.hash_probes = 0

    @property
    def num_dense(self) -> int:
        return len(self.meta)

    def classify(self, v: np.ndarray) -> np.ndarray:
        """Mask of vertices that are dense, via bloom + hash confirm.

        Bloom false positives are counted (they cost a hash probe) but
        corrected by the hash-table miss, so the result is exact.
        """
        v = np.asarray(v, dtype=np.int64)
        if v.size == 0:
            return np.zeros(0, dtype=bool)
        self.bloom_queries += v.size
        maybe = np.atleast_1d(self.bloom.contains(v))
        self.bloom_positives += int(maybe.sum())
        confirmed = np.zeros(v.shape, dtype=bool)
        if maybe.any():
            cand = v[maybe]
            self.hash_probes += cand.size
            if self._verts.size:
                pos = np.searchsorted(self._verts, cand)
                pos_ok = pos < self._verts.size
                real = np.zeros(cand.shape, dtype=bool)
                real[pos_ok] = self._verts[pos[pos_ok]] == cand[pos_ok]
            else:
                real = np.zeros(cand.shape, dtype=bool)
            self.false_positives += int((~real).sum())
            confirmed[np.flatnonzero(maybe)[real]] = True
        return confirmed

    def pre_walk(self, v: np.ndarray, rng: np.random.Generator) -> PreWalkResult:
        """Pre-walk a batch of dense walks sitting at dense vertices ``v``.

        Draws the uniform edge index now and splits it into (target
        block, in-block offset).  All ``v`` must be dense.
        """
        v = np.asarray(v, dtype=np.int64)
        if v.size == 0:
            return PreWalkResult(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
            )
        pos = np.searchsorted(self._verts, v)
        if (
            self._verts.size == 0
            or (pos >= self._verts.size).any()
            or (self._verts[np.minimum(pos, self._verts.size - 1)] != v).any()
        ):
            raise ReproError("pre_walk called with a non-dense vertex")
        deg = self._degree[pos]
        rnd = (rng.random(v.size) * deg).astype(np.int64)
        np.minimum(rnd, deg - 1, out=rnd)
        block = self._first[pos] + rnd // self._per_block[pos]
        return PreWalkResult(block, rnd % self._per_block[pos])

    @property
    def measured_fpr(self) -> float:
        neg = self.bloom_queries - (self.bloom_positives - self.false_positives)
        return self.false_positives / neg if neg else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DenseVertexTable(n={self.num_dense}, "
            f"queries={self.bloom_queries}, fpr={self.measured_fpr:.3%})"
        )
