"""Tests for the FTL: mapping, allocation, GC, wear, placement."""

import pytest

from repro.common import FlashAddressError, FlashError, SSDConfig
from repro.flash import FTL, FlashAddress


def tiny_cfg(**kw):
    """A small geometry so GC paths are exercised quickly."""
    defaults = dict(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=4,
        pages_per_block=4,
        max_concurrent_plane_ops_per_chip=2,
    )
    defaults.update(kw)
    return SSDConfig(**defaults)


class TestFlashAddress:
    def test_round_trip(self):
        cfg = SSDConfig()
        addr = FlashAddress(channel=3, chip=1, die=1, plane=2, block=100, page=7)
        assert FlashAddress.decode(addr.encode(cfg), cfg) == addr

    def test_round_trip_exhaustive_small(self):
        cfg = tiny_cfg()
        for channel in range(2):
            for chip in range(2):
                for plane in range(2):
                    for block in range(4):
                        for page in range(4):
                            a = FlashAddress(channel, chip, 0, plane, block, page)
                            assert FlashAddress.decode(a.encode(cfg), cfg) == a

    def test_decode_rejects_negative(self):
        with pytest.raises(FlashAddressError):
            FlashAddress.decode(-1, SSDConfig())

    def test_decode_rejects_beyond_capacity(self):
        cfg = tiny_cfg()
        total = cfg.total_planes * cfg.blocks_per_plane * cfg.pages_per_block
        with pytest.raises(FlashAddressError):
            FlashAddress.decode(total * 2, cfg)


class TestMapping:
    def test_write_then_lookup(self):
        ftl = FTL(tiny_cfg())
        addr = ftl.write(5)
        assert ftl.lookup(5) == addr
        assert ftl.is_mapped(5)

    def test_lookup_unmapped(self):
        ftl = FTL(tiny_cfg())
        with pytest.raises(FlashAddressError):
            ftl.lookup(5)

    def test_out_of_place_update(self):
        ftl = FTL(tiny_cfg())
        a1 = ftl.write(5)
        a2 = ftl.write(5)
        assert a1 != a2
        assert ftl.lookup(5) == a2

    def test_trim(self):
        ftl = FTL(tiny_cfg())
        ftl.write(5)
        ftl.trim(5)
        assert not ftl.is_mapped(5)
        ftl.trim(5)  # idempotent

    def test_lpn_bounds(self):
        ftl = FTL(tiny_cfg())
        with pytest.raises(FlashAddressError):
            ftl.write(-1)
        with pytest.raises(FlashAddressError):
            ftl.write(ftl.total_pages)

    def test_plane_hint_respected(self):
        cfg = tiny_cfg()
        ftl = FTL(cfg)
        addr = ftl.write(0, plane_hint=3)
        assert ftl.flat_plane(addr.channel, addr.chip, addr.die, addr.plane) == 3

    def test_bad_plane_hint(self):
        ftl = FTL(tiny_cfg())
        with pytest.raises(FlashAddressError):
            ftl.write(0, plane_hint=10_000)

    def test_round_robin_without_hint(self):
        ftl = FTL(tiny_cfg())
        a = ftl.write(0)
        b = ftl.write(1)
        fa = ftl.flat_plane(a.channel, a.chip, a.die, a.plane)
        fb = ftl.flat_plane(b.channel, b.chip, b.die, b.plane)
        assert fb == (fa + 1) % ftl.cfg.total_planes


class TestGarbageCollection:
    def test_gc_reclaims_invalidated_pages(self):
        cfg = tiny_cfg()
        ftl = FTL(cfg, gc_threshold=1)
        # Hammer one plane with overwrites of the same few LPNs: most
        # pages become invalid, so GC keeps the plane usable far beyond
        # its raw capacity.
        for i in range(cfg.blocks_per_plane * cfg.pages_per_block * 4):
            ftl.write(i % 3, plane_hint=0)
        assert ftl.gc_runs > 0
        stats = ftl.wear_stats()
        assert stats["total_erases"] > 0
        # All three logical pages still resolve.
        for lpn in range(3):
            ftl.lookup(lpn)

    def test_gc_moves_valid_pages(self):
        cfg = tiny_cfg()
        ftl = FTL(cfg, gc_threshold=1)
        # Interleave cold singletons with hot overwrites so every block
        # holds a mix of valid and invalid pages when GC picks a victim.
        cold = 100
        for i in range(cfg.blocks_per_plane * cfg.pages_per_block * 3):
            if i % 4 == 0:
                ftl.write(cold, plane_hint=0)
                cold = 100 + (cold - 99) % 4  # rotate 4 cold lpns
            else:
                ftl.write(i % 2, plane_hint=0)
        assert ftl.gc_runs > 0
        assert ftl.gc_moved_pages > 0
        for lpn in (100, 101, 102, 103):
            if ftl.is_mapped(lpn):
                ftl.lookup(lpn)

    def test_device_full_without_invalid_pages(self):
        cfg = tiny_cfg()
        ftl = FTL(cfg, gc_threshold=1)
        capacity = cfg.blocks_per_plane * cfg.pages_per_block
        with pytest.raises(FlashError):
            for lpn in range(capacity + 1):
                ftl.write(lpn, plane_hint=0)

    def test_gc_threshold_validation(self):
        with pytest.raises(FlashError):
            FTL(tiny_cfg(), gc_threshold=0)


class TestPlacement:
    def test_place_striped_one_unit_per_chip(self):
        cfg = SSDConfig()
        ftl = FTL(cfg)
        placement = ftl.place_striped(256, 2)
        assert placement.shape == (256, 2)
        # First 128 units land on 128 distinct chips.
        flat = placement[:128, 0] * cfg.chips_per_channel + placement[:128, 1]
        assert len(set(flat.tolist())) == 128
        # Unit 128 wraps to chip 0.
        assert tuple(placement[128]) == tuple(placement[0])

    def test_place_striped_maps_all_pages(self):
        ftl = FTL(SSDConfig())
        ftl.place_striped(10, 3)
        for lpn in range(30):
            assert ftl.is_mapped(lpn)

    def test_unit_stays_inside_chip(self):
        cfg = SSDConfig()
        ftl = FTL(cfg)
        ftl.place_striped(4, cfg.planes_per_chip + 2)
        # all pages of unit 0 are on chip (0, 0)
        for lpn in range(cfg.planes_per_chip + 2):
            addr = ftl.lookup(lpn)
            assert (addr.channel, addr.chip) == (0, 0)

    def test_rejects_bad_request(self):
        ftl = FTL(tiny_cfg())
        with pytest.raises(FlashError):
            ftl.place_striped(-1, 1)
        with pytest.raises(FlashError):
            ftl.place_striped(1, 0)
