"""Fault-injection layer: NAND retries, CRC retransmits, bad blocks,
chip failures, and checkpoint/resume."""

import numpy as np
import pytest

from repro.common import (
    ConfigError,
    FaultConfig,
    FaultExhaustedError,
    FlashWalkerConfig,
    RngRegistry,
    SimulationError,
)
from repro.common.config import SSDConfig
from repro.core import FlashWalker
from repro.faults import FaultModel
from repro.flash.channel import FlashChannel
from repro.flash.nand import FlashChip
from repro.flash.ssd import SSD
from repro.graph import rmat
from repro.walks import WalkSpec


@pytest.fixture(scope="module")
def graph():
    return rmat(10, 8, RngRegistry(55).fresh("g"))


def result_key(res):
    """Everything a RunResult asserts equality on, hashable."""
    return (
        res.elapsed,
        res.hops,
        res.flash_read_bytes,
        res.flash_write_bytes,
        res.channel_bytes,
        res.dram_bytes,
        tuple(sorted(res.counters.items())),
    )


class TestFaultConfig:
    def test_default_disabled(self):
        cfg = FlashWalkerConfig()
        assert cfg.faults.enabled is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(page_error_rate=1.5),
            dict(page_error_rate=-0.1),
            dict(retry_success_prob=0.0),
            dict(max_read_retries=0),
            dict(retry_backoff=0.0),
            dict(crc_error_rate=2.0),
            dict(max_crc_retries=0),
            dict(crc_retry_delay=-1.0),
            dict(rebuild_read_factor=0.5),
            dict(failover_latency=-1.0),
            dict(checkpoint_interval=-1.0),
            dict(chip_failures=((-1.0, 0),)),
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            FaultConfig(enabled=True, **kwargs).validate()

    def test_chip_failure_out_of_range_rejected(self):
        cfg = FlashWalkerConfig().replace(
            faults=FaultConfig(enabled=True, chip_failures=((1e-3, 10**6),))
        )
        with pytest.raises(ConfigError):
            cfg.validate()


class TestFaultModel:
    def make(self, seed=0, **kwargs):
        cfg = FaultConfig(enabled=True, **kwargs).validate()
        return FaultModel(cfg, np.random.default_rng(seed))

    def test_zero_rate_never_faults(self):
        fm = self.make(page_error_rate=0.0, crc_error_rate=0.0)
        assert all(fm.draw_read() == 0 for _ in range(200))
        assert all(fm.draw_transfer() == 0 for _ in range(200))
        assert fm.read_faults == 0 and fm.crc_errors == 0

    def test_certain_fault_certain_recovery(self):
        fm = self.make(page_error_rate=1.0, retry_success_prob=0.999999)
        assert fm.draw_read() == 1
        assert fm.read_faults == 1 and fm.read_retries == 1

    def test_exhaustion(self):
        fm = self.make(
            page_error_rate=1.0, retry_success_prob=1e-12, max_read_retries=3
        )
        assert fm.draw_read() == -1
        assert fm.read_retries == 3 and fm.reads_exhausted == 1

    def test_retry_latency_escalates(self):
        fm = self.make(retry_backoff=2.0)
        base = 35e-6
        assert fm.read_retry_latency(base, 1) == pytest.approx(base * 2)
        assert fm.read_retry_latency(base, 3) == pytest.approx(base * (2 + 4 + 8))

    def test_crc_delay_backoff(self):
        fm = self.make(crc_retry_delay=1e-6, crc_backoff=2.0)
        assert fm.crc_delay(1) == pytest.approx(1e-6)
        assert fm.crc_delay(3) == pytest.approx(4e-6)

    def test_determinism_same_seed(self):
        draws1 = [self.make(seed=7, page_error_rate=0.5).draw_read() for _ in [0]]
        draws2 = [self.make(seed=7, page_error_rate=0.5).draw_read() for _ in [0]]
        assert draws1 == draws2

    def test_fail_chip_idempotent(self):
        fm = self.make()
        assert fm.fail_chip(3) is True
        assert fm.fail_chip(3) is False
        assert fm.is_failed(3) and not fm.is_failed(4)
        assert fm.chip_failures == 1

    def test_stats_keys(self):
        s = self.make().stats()
        assert set(s) == {
            "fault_read_faults",
            "fault_read_retries",
            "fault_reads_exhausted",
            "fault_bad_block_remaps",
            "fault_crc_errors",
            "fault_crc_retries",
            "fault_crc_resets",
            "fault_chip_failures",
        }


class TestNandRetries:
    def chip(self, fault_cfg, seed=0):
        c = FlashChip(0, SSDConfig())
        c.fault_model = FaultModel(
            fault_cfg.validate(), np.random.default_rng(seed)
        )
        return c

    def test_retry_charges_extra_latency(self):
        clean = FlashChip(0, SSDConfig())
        t_clean = clean.read_page(0.0, 0, 0)
        faulty = self.chip(
            FaultConfig(
                enabled=True, page_error_rate=1.0, retry_success_prob=0.999999
            )
        )
        t_faulty = faulty.read_page(0.0, 0, 0)
        assert t_faulty > t_clean
        # one rung at backoff 1.5: extra = read_latency * 1.5
        assert t_faulty == pytest.approx(
            t_clean + SSDConfig().read_latency * 1.5
        )

    def test_exhaustion_raises_without_recovery(self):
        faulty = self.chip(
            FaultConfig(
                enabled=True,
                page_error_rate=1.0,
                retry_success_prob=1e-12,
                remap_on_exhaustion=False,
            )
        )
        with pytest.raises(FaultExhaustedError) as ei:
            faulty.read_page(0.0, 0, 0)
        assert ei.value.at > 0.0

    def test_exhaustion_remaps_and_notifies(self):
        faulty = self.chip(
            FaultConfig(
                enabled=True, page_error_rate=1.0, retry_success_prob=1e-12
            )
        )
        seen = []
        faulty.on_bad_block = lambda cid, die, pl: seen.append((cid, die, pl))
        t = faulty.read_page(0.0, 0, 0)
        assert seen == [(0, 0, 0)]
        assert faulty.fault_model.bad_block_remaps == 1
        # remap charges a heroic decode + a program on top of the ladder
        assert t > SSDConfig().read_latency * 2

    def test_retries_do_not_inflate_byte_counters(self):
        faulty = self.chip(
            FaultConfig(
                enabled=True, page_error_rate=1.0, retry_success_prob=0.999999
            )
        )
        faulty.read_page(0.0, 0, 0)
        assert faulty.reads == 1
        assert faulty.bytes_read == SSDConfig().page_bytes


class TestChannelCrc:
    def channel(self, fault_cfg, seed=0):
        ch = FlashChannel(0, SSDConfig())
        ch.fault_model = FaultModel(
            fault_cfg.validate(), np.random.default_rng(seed)
        )
        return ch

    def test_retransmit_charges_bus_twice(self):
        clean = FlashChannel(0, SSDConfig())
        t_clean = clean.transfer_data(0.0, 4096)
        faulty = self.channel(
            FaultConfig(
                enabled=True, crc_error_rate=1.0, crc_retry_success_prob=0.999999
            )
        )
        t_faulty = faulty.transfer_data(0.0, 4096)
        assert t_faulty > 2 * t_clean  # full retransmission + pause
        assert faulty.fault_model.crc_errors == 1
        assert faulty.fault_model.crc_retries == 1

    def test_exhaustion_resets_link(self):
        faulty = self.channel(
            FaultConfig(
                enabled=True,
                crc_error_rate=1.0,
                crc_retry_success_prob=1e-12,
                max_crc_retries=2,
            )
        )
        t = faulty.transfer_data(0.0, 4096)
        assert faulty.fault_model.crc_resets == 1
        assert t > FaultConfig().crc_reset_latency

    def test_exhaustion_raises_without_recovery(self):
        faulty = self.channel(
            FaultConfig(
                enabled=True, crc_error_rate=1.0, crc_retry_success_prob=1e-12
            )
        )
        with pytest.raises(FaultExhaustedError):
            faulty.transfer_data(0.0, 4096, recover=False)

    def test_commands_stay_clean(self):
        faulty = self.channel(
            FaultConfig(enabled=True, crc_error_rate=1.0)
        )
        faulty.send_command(0.0)
        assert faulty.fault_model.crc_errors == 0


class TestFtlBadBlocks:
    def test_retire_active_block(self):
        ssd = SSD(SSDConfig())
        ftl = ssd.ftl
        # Map some pages so the copy-forward path has work.
        ftl.place_striped(2, 4)
        free_before = len(ftl._free_list[0])
        victim = ftl.retire_active_block(0)
        stats = ftl.wear_stats()
        assert stats["bad_blocks"] == 1
        assert victim in ftl.bad_blocks_on(0)
        # The victim never returns: one block permanently gone.
        assert len(ftl._free_list[0]) <= free_before
        assert victim not in ftl._free_list[0]
        assert ftl.bad_block_count == 1

    def test_wear_stats_has_new_keys(self):
        ssd = SSD(SSDConfig())
        stats = ssd.ftl.wear_stats()
        assert stats["bad_blocks"] == 0
        assert stats["bad_block_moved_pages"] == 0


class TestEngineWithFaults:
    def test_page_errors_complete_and_slow_down(self, graph):
        base = FlashWalker(graph, seed=9).run(
            num_walks=600, spec=WalkSpec(length=5)
        )
        cfg = FlashWalkerConfig().replace(
            faults=FaultConfig(enabled=True, page_error_rate=0.5)
        )
        res = FlashWalker(graph, cfg, seed=9).run(
            num_walks=600, spec=WalkSpec(length=5)
        )
        assert int(res.counters["walks_completed"]) == 600
        assert res.counters["fault_read_faults"] > 0
        assert res.elapsed > base.elapsed

    def test_crc_errors_complete(self, graph):
        cfg = FlashWalkerConfig().replace(
            faults=FaultConfig(enabled=True, crc_error_rate=0.2)
        )
        res = FlashWalker(graph, cfg, seed=9).run(
            num_walks=600, spec=WalkSpec(length=5)
        )
        assert int(res.counters["walks_completed"]) == 600
        assert res.counters["fault_crc_errors"] > 0

    def test_chip_failure_migrates_blocks(self, graph):
        probe = FlashWalker(graph, seed=9)
        victim = int(probe.block_chip[0])
        cfg = FlashWalkerConfig().replace(
            faults=FaultConfig(enabled=True, chip_failures=((50e-6, victim),))
        )
        fw = FlashWalker(graph, cfg, seed=9)
        res = fw.run(num_walks=800, spec=WalkSpec(length=5))
        assert int(res.counters["walks_completed"]) == 800
        assert res.counters["chips_failed"] == 1
        assert res.counters["fault_chip_failures"] == 1
        # No block remains on the dead chip, and its accelerator is off.
        assert not np.any(fw.block_chip == victim)
        assert fw.chips[victim].failed

    def test_failure_run_deterministic(self, graph):
        probe = FlashWalker(graph, seed=9)
        victim = int(probe.block_chip[0])
        cfg = FlashWalkerConfig().replace(
            faults=FaultConfig(
                enabled=True,
                page_error_rate=0.2,
                chip_failures=((50e-6, victim),),
            )
        )
        r1 = FlashWalker(graph, cfg, seed=9).run(
            num_walks=600, spec=WalkSpec(length=5)
        )
        r2 = FlashWalker(graph, cfg, seed=9).run(
            num_walks=600, spec=WalkSpec(length=5)
        )
        assert result_key(r1) == result_key(r2)


class TestCheckpointResume:
    CFG = dict(page_error_rate=0.2, checkpoint_interval=50e-6)
    # Force walks through the chip path (and across partitions) so the
    # run spans many events — a board-hot-resident graph collapses into
    # one synchronous cascade that max_events cannot interrupt.
    ENGINE = dict(
        partition_subgraphs=4, board_hot_subgraphs=1, channel_hot_subgraphs=0
    )

    def run_full(self, graph, **spec_kw):
        cfg = FlashWalkerConfig().replace(
            **self.ENGINE, faults=FaultConfig(enabled=True, **self.CFG)
        )
        fw = FlashWalker(graph, cfg, seed=9)
        res = fw.run(num_walks=800, spec=WalkSpec(length=5), **spec_kw)
        assert res.counters["checkpoints_taken"] >= 1
        # Kill a replay a handful of events before the finish line, well
        # past the last checkpoint.
        return cfg, res, fw.sim.events_executed - 5

    def crash(self, graph, cfg, max_events, **spec_kw):
        fw = FlashWalker(graph, cfg, seed=9)
        with pytest.raises(SimulationError):
            fw.run(
                num_walks=800,
                spec=WalkSpec(length=5),
                max_events=max_events,
                **spec_kw,
            )
        assert fw.latest_checkpoint is not None
        return fw

    def test_checkpoints_taken(self, graph):
        _, res, _ = self.run_full(graph)
        assert res.counters["checkpoints_taken"] >= 1

    def test_resume_reproduces_uninterrupted_run(self, graph):
        cfg, full, cut = self.run_full(graph)
        fw = self.crash(graph, cfg, cut)
        resumed = fw.resume()
        assert result_key(resumed) == result_key(full)

    def test_resume_on_fresh_instance(self, graph):
        cfg, full, cut = self.run_full(graph)
        crashed = self.crash(graph, cfg, cut)
        fresh = FlashWalker(graph, cfg, seed=9)
        resumed = fresh.resume(checkpoint=crashed.latest_checkpoint)
        assert result_key(resumed) == result_key(full)

    def test_resume_preserves_finals(self, graph):
        cfg, full, cut = self.run_full(graph, record_finals=True)
        fw = self.crash(graph, cfg, cut, record_finals=True)
        resumed = fw.resume()
        np.testing.assert_array_equal(full.finals.src, resumed.finals.src)
        np.testing.assert_array_equal(full.finals.cur, resumed.finals.cur)
        np.testing.assert_array_equal(full.finals.hop, resumed.finals.hop)

    def test_resume_without_checkpoint_raises(self, graph):
        fw = FlashWalker(graph, seed=9)
        with pytest.raises(SimulationError):
            fw.resume()

    def test_checkpointing_off_by_default(self, graph):
        res = FlashWalker(graph, seed=9).run(
            num_walks=300, spec=WalkSpec(length=4)
        )
        assert res.counters["checkpoints_taken"] == 0


class TestCheckpointFingerprint:
    CFG = TestCheckpointResume.CFG
    ENGINE = TestCheckpointResume.ENGINE

    def crashed(self, graph, cfg):
        helper = TestCheckpointResume()
        _, _, cut = helper.run_full(graph)
        return helper.crash(graph, cfg, cut)

    def make_cfg(self, **overrides):
        return FlashWalkerConfig().replace(
            **self.ENGINE, **overrides, faults=FaultConfig(enabled=True, **self.CFG)
        )

    def test_checkpoint_records_fingerprint(self, graph):
        from repro.obs.report import config_fingerprint

        cfg = self.make_cfg()
        crashed = self.crashed(graph, cfg)
        ckpt = crashed.latest_checkpoint
        assert ckpt.data["config_fingerprint"] == config_fingerprint(cfg)

    def test_restore_rejects_config_mismatch(self, graph):
        cfg = self.make_cfg()
        crashed = self.crashed(graph, cfg)
        other = self.make_cfg(alpha=0.9)
        fresh = FlashWalker(graph, other, seed=9)
        with pytest.raises(ConfigError) as exc_info:
            fresh.resume(checkpoint=crashed.latest_checkpoint)
        # The error names both fingerprints so the operator can see
        # which side is stale.
        msg = str(exc_info.value)
        assert msg.count("sha256:") == 2

    def test_legacy_checkpoint_without_fingerprint_restores(self, graph):
        cfg = self.make_cfg()
        crashed = self.crashed(graph, cfg)
        crashed.latest_checkpoint.data.pop("config_fingerprint")
        fresh = FlashWalker(graph, cfg, seed=9)
        resumed = fresh.resume(checkpoint=crashed.latest_checkpoint)
        assert resumed.total_walks == 800


class TestFailoverCacheInvalidation:
    def test_failed_chip_blocks_dropped_from_query_caches(self, graph):
        cfg = FlashWalkerConfig().replace(faults=FaultConfig(enabled=True))
        fw = FlashWalker(graph, cfg, seed=9)
        victim = int(fw.block_chip[0])
        fw.start_session(expected_walks=100)
        mine = np.flatnonzero(fw.block_chip == victim)
        # Warm the board's walk query caches with the victim's blocks,
        # as served queries would.
        fw.board.caches.probe_batch(mine)
        cached = [
            b for b in mine.tolist()
            if any(b in c for c in fw.board.caches.caches)
        ]
        assert cached, "victim's blocks should be cache-resident before failover"
        fw._fail_chip(victim)
        # After failover the remapped blocks must not serve stale hits:
        # their cached mapping entries point at the dead chip.
        assert not any(
            b in c for b in mine.tolist() for c in fw.board.caches.caches
        )
        # Unrelated blocks keep their entries (no blanket invalidation).
        others = np.setdiff1d(
            np.arange(fw.part.num_blocks, dtype=np.int64), mine
        )[:4]
        if others.size:
            fw.board.caches.probe_batch(others)
            assert any(
                int(b) in c for b in others for c in fw.board.caches.caches
            )

    def test_invalidate_counts_removed_entries(self):
        from repro.core.query_cache import QueryCacheArray

        arr = QueryCacheArray(n_caches=4, entries_per_cache=8)
        arr.probe_batch(np.arange(12))
        assert arr.invalidate_blocks(np.array([0, 5, 11])) == 3
        assert arr.invalidate_blocks(np.array([0, 5])) == 0  # already gone


class TestErrorContext:
    def test_fault_exhausted_carries_location(self):
        exc = FaultExhaustedError(
            "read failed", at=1.5e-3, channel=2, chip=1, die=0, plane=3
        )
        assert str(exc) == "read failed"
        assert exc.at == 1.5e-3
        assert exc.location() == {
            "at": 1.5e-3, "channel": 2, "chip": 1, "die": 0, "plane": 3
        }

    def test_nand_exhaustion_names_chip_and_die(self):
        cfg = FaultConfig(
            enabled=True,
            page_error_rate=1.0,
            retry_success_prob=1e-12,
            remap_on_exhaustion=False,
        ).validate()
        chip = FlashChip(3, SSDConfig())
        chip.fault_model = FaultModel(cfg, np.random.default_rng(0))
        with pytest.raises(FaultExhaustedError) as exc_info:
            chip.read_page(0.0, 1, 0)
        exc = exc_info.value
        assert exc.chip == 3
        assert exc.die == 1
        assert exc.plane == 0
        assert str(exc).startswith("chip 3 die 1 plane 0")

    def test_buffer_overflow_carries_occupancy(self):
        from repro.common import BufferOverflowError

        exc = BufferOverflowError(
            "pwb overflow", block=7, capacity=16, occupancy=21, at=2e-6
        )
        assert str(exc) == "pwb overflow"
        assert (exc.block, exc.capacity, exc.occupancy, exc.at) == (7, 16, 21, 2e-6)
