"""Smoke tests: the experiment CLI and every example script run."""

import subprocess
import sys
from pathlib import Path


REPO = Path(__file__).resolve().parent.parent


def run_script(*args, timeout=240):
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_script(
            "examples/quickstart.py", "--dataset", "R2B", "--walks", "5000"
        )
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout

    def test_deepwalk_corpus(self):
        proc = run_script(
            "examples/deepwalk_embedding_corpus.py", "--walks-per-vertex", "1"
        )
        assert proc.returncode == 0, proc.stderr
        assert "corpus shape" in proc.stdout

    def test_ppr_ranking(self):
        proc = run_script("examples/ppr_ranking.py", "--walks", "3000")
        assert proc.returncode == 0, proc.stderr
        assert "top-10" in proc.stdout

    def test_ssd_exploration(self):
        proc = run_script("examples/ssd_exploration.py")
        assert proc.returncode == 0, proc.stderr
        assert "bandwidth asymmetry" in proc.stdout
        assert "GC runs" in proc.stdout


class TestRunnerCLI:
    def test_tables_via_cli(self):
        proc = run_script("-m", "repro.experiments.runner", "tables")
        assert proc.returncode == 0, proc.stderr
        assert "Table IV" in proc.stdout
        assert "55.80GB/s" in proc.stdout

    def test_unknown_experiment_rejected(self):
        proc = run_script("-m", "repro.experiments.runner", "fig99")
        assert proc.returncode != 0


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_subpackage_exports(self):
        import repro.common as c
        import repro.core as core
        import repro.flash as flash
        import repro.graph as graph
        import repro.sim as sim
        import repro.walks as walks

        for mod in (c, core, flash, graph, sim, walks):
            for name in mod.__all__:
                assert getattr(mod, name) is not None, f"{mod.__name__}.{name}"
