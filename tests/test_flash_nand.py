"""Tests for NAND plane/die/chip timing."""

import pytest

from repro.common import FlashAddressError, FlashError, SSDConfig
from repro.flash import FlashChip


@pytest.fixture
def cfg():
    return SSDConfig()


@pytest.fixture
def chip(cfg):
    return FlashChip(0, cfg)


class TestPlaneTiming:
    def test_single_read_latency(self, chip, cfg):
        assert chip.read_page(0.0, 0, 0) == pytest.approx(cfg.read_latency)

    def test_same_plane_serializes(self, chip, cfg):
        chip.read_page(0.0, 0, 0)
        assert chip.read_page(0.0, 0, 0) == pytest.approx(2 * cfg.read_latency)

    def test_different_planes_parallel(self, chip, cfg):
        a = chip.read_page(0.0, 0, 0)
        b = chip.read_page(0.0, 0, 1)
        assert a == b == pytest.approx(cfg.read_latency)

    def test_concurrency_cap(self, chip, cfg):
        # 5th concurrent read must wait: cap is 4 ops per chip.
        ends = [chip.read_page(0.0, d, p) for d in range(2) for p in range(4)]
        assert sum(1 for e in ends if e == pytest.approx(cfg.read_latency)) == 4
        assert max(ends) == pytest.approx(2 * cfg.read_latency)

    def test_program_latency(self, chip, cfg):
        assert chip.program_page(0.0, 0, 0) == pytest.approx(cfg.program_latency)

    def test_program_does_not_block_reads_on_other_planes(self, chip, cfg):
        # Program-suspend modeling: a long program on plane (0,0) does not
        # stall reads elsewhere through the dispatcher.
        chip.program_page(0.0, 0, 0)
        t = chip.read_page(0.0, 0, 1)
        assert t == pytest.approx(cfg.read_latency)

    def test_program_blocks_same_plane(self, chip, cfg):
        chip.program_page(0.0, 0, 0)
        t = chip.read_page(0.0, 0, 0)
        assert t == pytest.approx(cfg.program_latency + cfg.read_latency)

    def test_erase_latency(self, chip, cfg):
        assert chip.erase_block(0.0, 1, 2) == pytest.approx(cfg.erase_latency)


class TestStripedOps:
    def test_read_pages_striped_one_wave(self, chip, cfg):
        # 4 pages fit the concurrency cap: one read wave.
        assert chip.read_pages_striped(0.0, 4) == pytest.approx(cfg.read_latency)

    def test_read_pages_striped_two_waves(self, chip, cfg):
        assert chip.read_pages_striped(0.0, 8) == pytest.approx(
            2 * cfg.read_latency
        )

    def test_program_pages_striped_rotates(self, chip, cfg):
        # Sequential small programs land on different planes, so two
        # 1-page flushes issued together overlap.
        a = chip.program_pages_striped(0.0, 1)
        b = chip.program_pages_striped(0.0, 1)
        assert a == b == pytest.approx(cfg.program_latency)

    def test_rejects_zero_pages(self, chip):
        with pytest.raises(FlashError):
            chip.read_pages_striped(0.0, 0)
        with pytest.raises(FlashError):
            chip.program_pages_striped(0.0, 0)


class TestAccounting:
    def test_byte_counters(self, chip, cfg):
        chip.read_page(0.0, 0, 0)
        chip.read_page(0.0, 0, 1)
        chip.program_page(0.0, 1, 0)
        assert chip.bytes_read == 2 * cfg.page_bytes
        assert chip.bytes_programmed == cfg.page_bytes
        assert chip.reads == 2 and chip.programs == 1

    def test_plane_counters(self, chip, cfg):
        chip.read_page(0.0, 1, 2)
        pl = chip.plane(1, 2)
        assert pl.reads == 1
        assert pl.bytes_read == cfg.page_bytes

    def test_utilization(self, chip, cfg):
        chip.read_page(0.0, 0, 0)
        # one read over elapsed = read_latency, with 4 slots => 25%
        assert chip.utilization(cfg.read_latency) == pytest.approx(0.25)


class TestAddressValidation:
    def test_bad_die(self, chip):
        with pytest.raises(FlashAddressError):
            chip.read_page(0.0, 9, 0)

    def test_bad_plane(self, chip):
        with pytest.raises(FlashAddressError):
            chip.read_page(0.0, 0, 9)

    def test_check_page_addr(self, chip, cfg):
        chip.check_page_addr(0, 0, 0, 0)
        with pytest.raises(FlashAddressError):
            chip.check_page_addr(0, 0, cfg.blocks_per_plane, 0)
        with pytest.raises(FlashAddressError):
            chip.check_page_addr(0, 0, 0, cfg.pages_per_block)

    def test_negative_duration_rejected(self, chip):
        with pytest.raises(FlashError):
            chip.plane(0, 0).occupy(0.0, -1.0)
