"""Tests for the Eq. 1 subgraph scheduler and topN lists."""

import numpy as np
import pytest

from repro.common import SchedulingError
from repro.core import SubgraphScheduler


def make_scheduler(
    n_blocks=8,
    n_chips=2,
    dense=None,
    alpha=1.2,
    beta=1.5,
    top_n=4,
    m=4,
    use_scores=True,
):
    block_chip = np.arange(n_blocks) % n_chips
    is_dense = np.zeros(n_blocks, dtype=bool)
    if dense:
        is_dense[list(dense)] = True
    return SubgraphScheduler(
        block_chip=block_chip,
        is_dense_block=is_dense,
        first_block=0,
        last_block=n_blocks - 1,
        n_chips=n_chips,
        alpha=alpha,
        beta=beta,
        top_n=top_n,
        update_period_m=m,
        use_scores=use_scores,
    )


class TestScoreboard:
    def test_eq1_nondense(self):
        s = make_scheduler(alpha=1.2, beta=1.5)
        s.add_buffered(0, 10)
        s.add_spilled(0, 4)
        # score = (pwb * alpha + fl) * beta for non-dense
        assert s.scores()[0] == pytest.approx((6 * 1.2 + 4) * 1.5)

    def test_eq1_dense_no_beta(self):
        s = make_scheduler(dense={1}, alpha=1.2, beta=1.5)
        s.add_buffered(1, 10)
        assert s.scores()[1] == pytest.approx(10 * 1.2)

    def test_beta_prioritizes_nondense_at_equal_load(self):
        s = make_scheduler(dense={1})
        s.add_buffered(0, 10)
        s.add_buffered(1, 10)
        scores = s.scores()
        assert scores[0] > scores[1]

    def test_alpha_weighs_buffered_over_spilled(self):
        s = make_scheduler(alpha=2.0)
        s.add_buffered(0, 10)
        s.add_buffered(2, 10)
        s.add_spilled(2, 10)  # block 2: all spilled
        assert s.scores()[0] > s.scores()[2]

    def test_take_walks_resets(self):
        s = make_scheduler()
        s.add_buffered(0, 7)
        s.add_spilled(0, 3)
        assert s.take_walks(0) == (4, 3)
        assert s.take_walks(0) == (0, 0)
        assert s.total_pending == 0

    def test_spill_more_than_buffered_rejected(self):
        s = make_scheduler()
        s.add_buffered(0, 2)
        with pytest.raises(SchedulingError):
            s.add_spilled(0, 5)

    def test_out_of_partition_block_rejected(self):
        s = make_scheduler(n_blocks=4)
        with pytest.raises(SchedulingError):
            s.add_buffered(99, 1)

    def test_negative_count_rejected(self):
        s = make_scheduler()
        with pytest.raises(SchedulingError):
            s.add_buffered(0, -1)


class TestSelection:
    def test_picks_highest_score_on_chip(self):
        s = make_scheduler(n_blocks=8, n_chips=2)
        # chip 0 owns even blocks
        s.add_buffered(0, 5)
        s.add_buffered(2, 50)
        s.add_buffered(4, 10)
        assert s.next_subgraph(0) == 2

    def test_respects_chip_ownership(self):
        s = make_scheduler(n_blocks=8, n_chips=2)
        s.add_buffered(1, 100)  # chip 1's block
        assert s.next_subgraph(0) is None
        assert s.next_subgraph(1) == 1

    def test_exclude(self):
        s = make_scheduler(n_blocks=8, n_chips=2)
        s.add_buffered(0, 50)
        s.add_buffered(2, 10)
        assert s.next_subgraph(0, exclude={0}) == 2

    def test_empty_returns_none(self):
        s = make_scheduler()
        assert s.next_subgraph(0) is None

    def test_drained_blocks_skipped(self):
        s = make_scheduler(n_blocks=8, n_chips=2)
        s.add_buffered(0, 5)
        s.add_buffered(2, 3)
        s.take_walks(0)
        assert s.next_subgraph(0) == 2

    def test_chips_with_work(self):
        s = make_scheduler(n_blocks=8, n_chips=4)
        s.add_buffered(0, 1)  # chip 0
        s.add_buffered(5, 1)  # chip 1
        np.testing.assert_array_equal(s.chips_with_work(), [0, 1])

    def test_bad_chip_rejected(self):
        s = make_scheduler()
        with pytest.raises(SchedulingError):
            s.next_subgraph(99)

    def test_without_scores_uses_walk_counts(self):
        s = make_scheduler(dense={2}, use_scores=False, beta=100.0)
        s.add_buffered(0, 10)  # non-dense: huge beta would inflate score
        s.add_buffered(2, 11)  # dense, more walks
        # count-based scheduling picks the dense block (more walks),
        # score-based (beta=100) would pick block 0.
        assert s.next_subgraph(0) == 2

    def test_with_scores_beta_flips_choice(self):
        s = make_scheduler(dense={2}, use_scores=True, beta=100.0)
        s.add_buffered(0, 10)
        s.add_buffered(2, 11)
        assert s.next_subgraph(0) == 0


class TestTopNAmortization:
    def test_deferred_updates_counted(self):
        s = make_scheduler(m=10)
        for _ in range(9):
            s.add_buffered(0, 1)
        assert s.topn_updates_deferred == 9

    def test_m_insertions_trigger_dirty(self):
        s = make_scheduler(m=4, n_chips=2)
        s.next_subgraph(0)  # establishes a clean (empty) top list
        refreshes = s.topn_refreshes
        s.add_buffered(0, 4)  # exactly M -> chip 0 dirty
        s.next_subgraph(0)
        assert s.topn_refreshes > refreshes

    def test_topn_caps_list_length(self):
        s = make_scheduler(n_blocks=8, n_chips=1, top_n=2)
        for b in range(8):
            s.add_buffered(b, b + 1)
        s.next_subgraph(0)
        assert len(s._top[0]) <= 2

    def test_stale_list_recovers(self):
        # Fill beyond topN, drain the listed entries, ensure the
        # scheduler still finds the remaining work via refresh.
        s = make_scheduler(n_blocks=8, n_chips=1, top_n=2, m=1)
        for b in range(8):
            s.add_buffered(b, 10 - b)
        served = []
        while True:
            blk = s.next_subgraph(0)
            if blk is None:
                break
            served.append(blk)
            s.take_walks(blk)
        assert sorted(served) == list(range(8))

    def test_validation(self):
        with pytest.raises(SchedulingError):
            make_scheduler(top_n=0)
        with pytest.raises(SchedulingError):
            make_scheduler(alpha=0)

    def test_ties_break_to_lowest_block_id(self):
        """Regression: equal scores must rank the lowest block ID first.

        ``argsort(key)[::-1]`` reverses the stable order, putting the
        *highest* index first among ties; sorting on the negated key
        keeps ties in ascending-index order.
        """
        s = make_scheduler(n_blocks=8, n_chips=1, top_n=4)
        for b in (6, 2, 4):
            s.add_buffered(b, 5)  # identical scores
        assert s.next_subgraph(0) == 2
        assert s._top[0] == [2, 4, 6]

    def test_topn_order_deterministic_across_runs(self):
        """Same insertion history -> identical topN lists, repeatedly."""
        def build():
            s = make_scheduler(n_blocks=8, n_chips=1, top_n=8)
            for b in (7, 1, 3, 5):
                s.add_buffered(b, 4)
            s.add_buffered(0, 9)
            s.next_subgraph(0)
            return list(s._top[0])
        first = build()
        assert first[0] == 0  # highest score first
        assert first[1:] == [1, 3, 5, 7]  # ties ascending by block ID
        for _ in range(5):
            assert build() == first


class TestScoreCache:
    def test_scores_cached_between_mutations(self):
        s = make_scheduler()
        s.add_buffered(0, 3)
        a = s.scores()
        b = s.scores()
        assert a is b  # same array object until the scoreboard changes
        assert s.score_cache_hits >= 1

    def test_mutation_invalidates(self):
        s = make_scheduler()
        s.add_buffered(0, 4)
        a = s.scores()
        s.add_spilled(0, 2)
        b = s.scores()
        assert a is not b
        assert b[0] != a[0]

    def test_take_walks_invalidates(self):
        s = make_scheduler()
        s.add_buffered(0, 4)
        assert s.scores()[0] > 0
        s.take_walks(0)
        assert s.scores()[0] == 0
        assert s.walk_counts()[0] == 0
