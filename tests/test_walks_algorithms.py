"""Tests for the random-walk application layer."""

import numpy as np
import pytest

from repro.common import WalkError
from repro.graph import CSRGraph, complete_graph, ring_graph, star_graph
from repro.walks import (
    deepwalk_corpus,
    node2vec_corpus,
    personalized_pagerank,
    random_walk_sample,
    simrank_sampled,
)


class TestDeepWalk:
    def test_corpus_shape(self, small_graph, rng):
        corpus = deepwalk_corpus(small_graph, rng, walks_per_vertex=2, walk_length=4)
        assert corpus.shape == (2 * small_graph.num_vertices, 5)

    def test_every_vertex_is_a_start(self, rng):
        g = ring_graph(20)
        corpus = deepwalk_corpus(g, rng, walks_per_vertex=3, walk_length=2)
        starts = corpus[:, 0]
        assert np.bincount(starts, minlength=20).min() == 3

    def test_trajectories_follow_edges(self, rng):
        g = ring_graph(12)
        corpus = deepwalk_corpus(g, rng, walks_per_vertex=1, walk_length=3)
        for row in corpus:
            for a, b in zip(row[:-1], row[1:]):
                if b >= 0:
                    assert b == (a + 1) % 12

    def test_rejects_bad_args(self, small_graph, rng):
        with pytest.raises(WalkError):
            deepwalk_corpus(small_graph, rng, walks_per_vertex=0)


class TestPPR:
    def test_distribution_sums_to_one(self, small_graph, rng):
        ppr = personalized_pagerank(small_graph, 0, rng, num_walks=2000)
        assert ppr.sum() == pytest.approx(1.0)

    def test_source_weighting(self, rng):
        # On a star, walks from the hub restart there constantly.
        g = star_graph(20)
        ppr = personalized_pagerank(g, 0, rng, num_walks=4000, stop_probability=0.5)
        assert ppr[0] > ppr[1:].max()

    def test_locality(self, rng):
        # Far vertices on a long ring get negligible mass.
        g = ring_graph(200)
        ppr = personalized_pagerank(g, 0, rng, num_walks=3000, stop_probability=0.3)
        assert ppr[:10].sum() > 0.95

    def test_rejects_bad_source(self, small_graph, rng):
        with pytest.raises(WalkError):
            personalized_pagerank(small_graph, -1, rng)

    def test_rejects_zero_walks(self, small_graph, rng):
        with pytest.raises(WalkError):
            personalized_pagerank(small_graph, 0, rng, num_walks=0)


class TestNode2Vec:
    def test_shape_and_starts(self, rng):
        g = complete_graph(10)
        corpus = node2vec_corpus(g, rng, walks_per_vertex=2, walk_length=3)
        assert corpus.shape == (20, 4)
        assert (corpus[:, 0] == np.tile(np.arange(10), 2)).all()

    def test_low_p_returns_often(self, rngs):
        g = complete_graph(12)
        back = node2vec_corpus(
            g, rngs.fresh("a"), walks_per_vertex=8, walk_length=6, p=0.05, q=1.0
        )
        away = node2vec_corpus(
            g, rngs.fresh("b"), walks_per_vertex=8, walk_length=6, p=20.0, q=1.0
        )

        def return_rate(corpus):
            # fraction of steps that return to the vertex before last
            r = 0
            n = 0
            for row in corpus:
                for i in range(2, row.size):
                    if row[i] < 0:
                        break
                    n += 1
                    r += row[i] == row[i - 2]
            return r / max(n, 1)

        assert return_rate(back) > 2 * return_rate(away)

    def test_follows_edges(self, rng):
        g = ring_graph(10)
        corpus = node2vec_corpus(g, rng, walks_per_vertex=1, walk_length=4)
        for row in corpus:
            for a, b in zip(row[:-1], row[1:]):
                if b >= 0:
                    assert b == (a + 1) % 10

    def test_rejects_bad_pq(self, small_graph, rng):
        with pytest.raises(WalkError):
            node2vec_corpus(small_graph, rng, p=0.0)


class TestSimRank:
    def test_identity(self, small_graph, rng):
        assert simrank_sampled(small_graph, 3, 3, rng) == 1.0

    def test_symmetric_pair_similar(self, rng):
        # 2 and 3 both point only to 0 and 1: high SimRank.
        src = np.array([2, 2, 3, 3, 0, 1])
        dst = np.array([0, 1, 0, 1, 2, 3])
        g = CSRGraph.from_edge_list(src, dst, num_vertices=4)
        s_close = simrank_sampled(g, 2, 3, rng, num_pairs=3000)
        assert s_close > 0.3

    def test_disconnected_pair_zero(self, rng):
        # Two disjoint 2-cycles: reverse walks never meet.
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 0, 3, 2])
        g = CSRGraph.from_edge_list(src, dst, num_vertices=4)
        assert simrank_sampled(g, 0, 2, rng, num_pairs=500) == 0.0

    def test_rejects_bad_decay(self, small_graph, rng):
        with pytest.raises(WalkError):
            simrank_sampled(small_graph, 0, 1, rng, decay=1.5)

    def test_rejects_bad_vertices(self, small_graph, rng):
        with pytest.raises(WalkError):
            simrank_sampled(small_graph, -1, 0, rng)


class TestRandomWalkSample:
    def test_returns_requested_count_when_reachable(self, rng):
        g = complete_graph(50)
        sample = random_walk_sample(g, rng, target_vertices=20, num_walks=64)
        assert sample.size == 20
        assert len(set(sample.tolist())) == 20

    def test_ordered_by_first_visit(self, rng):
        g = ring_graph(100)
        sample = random_walk_sample(g, rng, target_vertices=5, num_walks=1)
        # a single ring walk visits consecutive vertices
        diffs = np.diff(sample) % 100
        assert (diffs == 1).all()

    def test_small_component_caps_sample(self, rng):
        src = np.array([0, 1])
        dst = np.array([1, 0])
        g = CSRGraph.from_edge_list(src, dst, num_vertices=2)
        sample = random_walk_sample(g, rng, target_vertices=10, num_walks=8)
        assert set(sample.tolist()) == {0, 1}

    def test_rejects_bad_target(self, small_graph, rng):
        with pytest.raises(WalkError):
            random_walk_sample(small_graph, rng, target_vertices=0)
