"""Tests for run metrics and result summaries."""

import numpy as np
import pytest

from repro.core.metrics import RunMetrics, RunResult


class TestRunMetrics:
    def test_traffic_totals(self):
        m = RunMetrics()
        m.record_flash_read(0.0, 4096)
        m.record_flash_read(1e-3, 4096)
        m.record_flash_write(0.0, 1024)
        m.record_channel(0.0, 512)
        m.record_dram(0.0, 256)
        res = m.finalize(elapsed=2e-3, total_walks=10)
        assert res.flash_read_bytes == 8192
        assert res.flash_write_bytes == 1024
        assert res.channel_bytes == 512
        assert res.dram_bytes == 256

    def test_spread_recording_conserves_bytes(self):
        m = RunMetrics()
        m.record_channel(0.0, 10_000, t_end=1e-3)
        assert m.channel.total == pytest.approx(10_000)

    def test_spread_limits_peak_rate(self):
        m = RunMetrics()
        # 1 MB over 1 ms = 1 GB/s; recorded at a point it would read as
        # 1 MB / 50 us = 20 GB/s.
        m.record_channel(0.0, 1 << 20, t_end=1e-3)
        m.record_completed(1e-3, 1)
        res = m.finalize(elapsed=1e-3, total_walks=1)
        _, rate = res.bandwidth_series(rebins=20)["channel"]
        assert rate.max() < 1.5e9

    def test_completion_progress(self):
        m = RunMetrics()
        m.record_completed(0.0, 5)
        m.record_completed(1e-3, 15)
        res = m.finalize(elapsed=2e-3, total_walks=20)
        t, frac = res.bandwidth_series(rebins=10)["progress"]
        assert frac[-1] == pytest.approx(1.0)
        assert (np.diff(frac) >= -1e-12).all()

    def test_counters_snapshot(self):
        m = RunMetrics()
        m.hops.add(100)
        m.queries.add(5)
        res = m.finalize(elapsed=1.0, total_walks=1)
        assert res.counters["hops"] == 100
        assert res.counters["walk_queries"] == 5


class TestBandwidthSeriesEdgeCases:
    """Degenerate and awkward inputs to RunResult.bandwidth_series."""

    def test_zero_elapsed_run(self):
        m = RunMetrics()
        res = m.finalize(elapsed=0.0, total_walks=0)
        series = res.bandwidth_series(rebins=10)
        for name, (t, v) in series.items():
            assert t.size == v.size >= 1
            assert np.isfinite(v).all(), name

    def test_zero_elapsed_with_instant_traffic(self):
        # Bytes recorded at t=0 of a zero-length run must not divide by
        # zero nor be silently dropped from the (single-bucket) series.
        m = RunMetrics()
        m.record_channel(0.0, 4096)
        res = m.finalize(elapsed=0.0, total_walks=0)
        t, rate = res.bandwidth_series(rebins=10)["channel"]
        assert np.isfinite(rate).all()
        width = t[1] - t[0] if t.size > 1 else m.channel.bucket
        assert (rate * width).sum() == pytest.approx(4096)

    def test_single_bucket_run(self):
        # Run shorter than one raw bucket: everything lands in bin 0.
        m = RunMetrics()
        raw = m.channel.bucket
        m.record_channel(raw / 4, 1000)
        res = m.finalize(elapsed=raw / 2, total_walks=1)
        t, rate = res.bandwidth_series(rebins=50)["channel"]
        assert rate[0] > 0
        assert (rate[1:] == 0).all()
        width = t[1] - t[0] if t.size > 1 else raw
        assert (rate * width).sum() == pytest.approx(1000)

    @pytest.mark.parametrize("rebins", [3, 7, 13, 50, 1000])
    def test_non_dividing_rebin_widths_conserve_bytes(self, rebins):
        # elapsed / rebins is generally not a multiple of the raw bucket;
        # the rebin must round up to a whole multiple and keep totals.
        m = RunMetrics()
        raw = m.flash_read.bucket
        rng = np.random.default_rng(7)
        total = 0
        for i in range(137):
            nbytes = int(rng.integers(1, 5000))
            m.record_flash_read(i * raw * 0.61803, nbytes)
            total += nbytes
        elapsed = 137 * raw * 0.61803
        res = m.finalize(elapsed=elapsed, total_walks=1)
        t, rate = res.bandwidth_series(rebins=rebins)["flash_read"]
        width = t[1] - t[0] if t.size > 1 else raw
        # Width is a whole multiple of the raw bucket.
        assert width / raw == pytest.approx(round(width / raw))
        assert (rate * width).sum() == pytest.approx(total)

    def test_rate_never_exceeds_bus_rate(self):
        # Saturate a 1 GB/s bus with back-to-back spread transfers; no
        # rebin granularity may report a rate above the physical rate.
        m = RunMetrics()
        bus = 1e9
        t = 0.0
        for _ in range(40):
            nbytes = 256 * 1024
            dur = nbytes / bus
            m.record_channel(t, nbytes, t_end=t + dur)
            t += dur
        res = m.finalize(elapsed=t, total_walks=1)
        for rebins in (1, 2, 5, 17, 100):
            _, rate = res.bandwidth_series(rebins=rebins)["channel"]
            assert rate.max() <= bus * (1 + 1e-9), rebins


class TestRunResult:
    def make(self, **kw):
        defaults = dict(
            elapsed=2.0,
            total_walks=100,
            flash_read_bytes=2_000_000,
            flash_write_bytes=0,
            channel_bytes=10,
            dram_bytes=5,
            hops=600,
        )
        defaults.update(kw)
        return RunResult(**defaults)

    def test_derived_rates(self):
        r = self.make()
        assert r.flash_read_bandwidth == pytest.approx(1_000_000)
        assert r.walks_per_sec == pytest.approx(50)
        assert r.hops_per_sec == pytest.approx(300)

    def test_zero_elapsed_safe(self):
        r = self.make(elapsed=0.0)
        assert r.flash_read_bandwidth == 0.0
        assert r.walks_per_sec == 0.0

    def test_series_requires_metrics(self):
        with pytest.raises(ValueError):
            self.make().bandwidth_series()

    def test_summary_renders(self):
        s = self.make().summary()
        assert "walks=100" in s
        assert "read=" in s
