"""Tests for run metrics and result summaries."""

import numpy as np
import pytest

from repro.core.metrics import RunMetrics, RunResult


class TestRunMetrics:
    def test_traffic_totals(self):
        m = RunMetrics()
        m.record_flash_read(0.0, 4096)
        m.record_flash_read(1e-3, 4096)
        m.record_flash_write(0.0, 1024)
        m.record_channel(0.0, 512)
        m.record_dram(0.0, 256)
        res = m.finalize(elapsed=2e-3, total_walks=10)
        assert res.flash_read_bytes == 8192
        assert res.flash_write_bytes == 1024
        assert res.channel_bytes == 512
        assert res.dram_bytes == 256

    def test_spread_recording_conserves_bytes(self):
        m = RunMetrics()
        m.record_channel(0.0, 10_000, t_end=1e-3)
        assert m.channel.total == pytest.approx(10_000)

    def test_spread_limits_peak_rate(self):
        m = RunMetrics()
        # 1 MB over 1 ms = 1 GB/s; recorded at a point it would read as
        # 1 MB / 50 us = 20 GB/s.
        m.record_channel(0.0, 1 << 20, t_end=1e-3)
        m.record_completed(1e-3, 1)
        res = m.finalize(elapsed=1e-3, total_walks=1)
        _, rate = res.bandwidth_series(rebins=20)["channel"]
        assert rate.max() < 1.5e9

    def test_completion_progress(self):
        m = RunMetrics()
        m.record_completed(0.0, 5)
        m.record_completed(1e-3, 15)
        res = m.finalize(elapsed=2e-3, total_walks=20)
        t, frac = res.bandwidth_series(rebins=10)["progress"]
        assert frac[-1] == pytest.approx(1.0)
        assert (np.diff(frac) >= -1e-12).all()

    def test_counters_snapshot(self):
        m = RunMetrics()
        m.hops.add(100)
        m.queries.add(5)
        res = m.finalize(elapsed=1.0, total_walks=1)
        assert res.counters["hops"] == 100
        assert res.counters["walk_queries"] == 5


class TestRunResult:
    def make(self, **kw):
        defaults = dict(
            elapsed=2.0,
            total_walks=100,
            flash_read_bytes=2_000_000,
            flash_write_bytes=0,
            channel_bytes=10,
            dram_bytes=5,
            hops=600,
        )
        defaults.update(kw)
        return RunResult(**defaults)

    def test_derived_rates(self):
        r = self.make()
        assert r.flash_read_bandwidth == pytest.approx(1_000_000)
        assert r.walks_per_sec == pytest.approx(50)
        assert r.hops_per_sec == pytest.approx(300)

    def test_zero_elapsed_safe(self):
        r = self.make(elapsed=0.0)
        assert r.flash_read_bandwidth == 0.0
        assert r.walks_per_sec == 0.0

    def test_series_requires_metrics(self):
        with pytest.raises(ValueError):
            self.make().bandwidth_series()

    def test_summary_renders(self):
        s = self.make().summary()
        assert "walks=100" in s
        assert "read=" in s
