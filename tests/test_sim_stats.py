"""Tests for counters, time series, and histograms."""

import numpy as np
import pytest

from repro.common import SimulationError
from repro.sim import Counter, Histogram, StatsRegistry, TimeSeries


class TestCounter:
    def test_accumulates(self):
        c = Counter("c")
        c.add(5)
        c.add(3)
        assert c.total == 8
        assert c.events == 2

    def test_default_increment(self):
        c = Counter("c")
        c.add()
        assert c.total == 1.0


class TestTimeSeries:
    def test_bucketing(self):
        ts = TimeSeries("t", bucket=1.0)
        ts.add(0.5, 10)
        ts.add(0.9, 5)
        ts.add(2.1, 7)
        starts, sums = ts.buckets()
        assert list(starts) == [0.0, 1.0, 2.0]
        assert list(sums) == [15.0, 0.0, 7.0]

    def test_rates(self):
        ts = TimeSeries("t", bucket=0.5)
        ts.add(0.1, 100)
        _, rates = ts.rates()
        assert rates[0] == pytest.approx(200.0)

    def test_cumulative(self):
        ts = TimeSeries("t", bucket=1.0)
        ts.add(0.5, 1)
        ts.add(1.5, 2)
        ends, cum = ts.cumulative()
        assert list(cum) == [1.0, 3.0]
        assert list(ends) == [1.0, 2.0]

    def test_total_and_events(self):
        ts = TimeSeries("t", bucket=1.0)
        ts.add(0.0, 3)
        ts.add(5.0, 4)
        assert ts.total == 7
        assert ts.events == 2
        assert ts.last_time == 5.0

    def test_add_spread_splits_across_buckets(self):
        ts = TimeSeries("t", bucket=1.0)
        ts.add_spread(0.5, 2.5, 20)
        starts, sums = ts.buckets()
        assert sums.sum() == pytest.approx(20)
        # middle bucket gets the largest share (full width)
        assert sums[1] == pytest.approx(10.0)

    def test_add_spread_point_interval(self):
        ts = TimeSeries("t", bucket=1.0)
        ts.add_spread(1.0, 1.0, 5)
        assert ts.total == 5

    def test_add_spread_rejects_reversed(self):
        ts = TimeSeries("t", bucket=1.0)
        with pytest.raises(SimulationError):
            ts.add_spread(2.0, 1.0, 5)

    def test_rejects_negative_time(self):
        ts = TimeSeries("t", bucket=1.0)
        with pytest.raises(SimulationError):
            ts.add(-0.1, 1)

    def test_rejects_bad_bucket(self):
        with pytest.raises(SimulationError):
            TimeSeries("t", bucket=0.0)

    def test_empty(self):
        ts = TimeSeries("t", bucket=1.0)
        starts, sums = ts.buckets()
        assert starts.size == 0 and sums.size == 0


class TestHistogram:
    def test_mean_min_max(self):
        h = Histogram("h", lo=1e-6, hi=10.0)
        h.add(1.0)
        h.add(2.0)
        h.add(3.0)
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0

    def test_add_many(self):
        h = Histogram("h", lo=1e-3, hi=1e3)
        h.add_many(np.array([1.0, 10.0, 100.0]))
        assert h.total == 3
        assert h.mean == pytest.approx(37.0)

    def test_add_many_empty(self):
        h = Histogram("h")
        h.add_many(np.array([]))
        assert h.total == 0

    def test_percentile_monotone(self):
        h = Histogram("h", lo=1e-3, hi=1e3)
        h.add_many(np.geomspace(0.01, 100, 500))
        p50 = h.percentile(50)
        p95 = h.percentile(95)
        assert p50 <= p95

    def test_percentile_bounds(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_percentile_empty(self):
        assert Histogram("h").percentile(50) == 0.0

    def test_overflow_underflow_counted(self):
        h = Histogram("h", lo=1.0, hi=10.0, bins=4)
        h.add(0.01)   # below lo
        h.add(100.0)  # above hi
        assert h.total == 2


class TestStatsRegistry:
    def test_counter_identity(self):
        s = StatsRegistry()
        assert s.counter("x") is s.counter("x")

    def test_timeseries_identity(self):
        s = StatsRegistry(bucket=0.5)
        assert s.timeseries("x") is s.timeseries("x")
        assert s.timeseries("x").bucket == 0.5

    def test_histogram_identity(self):
        s = StatsRegistry()
        assert s.histogram("h") is s.histogram("h")

    def test_snapshot(self):
        s = StatsRegistry()
        s.counter("a").add(2)
        s.timeseries("b").add(0.0, 3)
        snap = s.snapshot()
        assert snap == {"a": 2.0, "a.events": 1.0, "b": 3.0}

    def test_snapshot_counter_events_distinguish_granularity(self):
        # One 4 MB flush vs a thousand 4 KB ones: same total, different
        # event counts — snapshot() must preserve the distinction.
        coarse = StatsRegistry()
        coarse.counter("bytes").add(4_194_304)
        fine = StatsRegistry()
        for _ in range(1024):
            fine.counter("bytes").add(4096)
        assert coarse.snapshot()["bytes"] == fine.snapshot()["bytes"]
        assert coarse.snapshot()["bytes.events"] == 1.0
        assert fine.snapshot()["bytes.events"] == 1024.0
